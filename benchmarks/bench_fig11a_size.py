"""Fig. 11(a) — scalability with tensor size.

DPar2's running time must grow with the smallest slope across a geometric
size sweep (paper: up to 15.3x faster at the largest grid point).
"""

import pytest

from repro.data.synthetic import scalability_tensor
from repro.decomposition import dpar2, parafac2_als

SIZES = [(60, 60, 80), (90, 90, 120), (120, 120, 160)]


@pytest.mark.parametrize("shape", SIZES, ids=[f"{i}x{j}x{k}" for i, j, k in SIZES])
def test_dpar2_size_sweep(benchmark, bench_config, shape):
    tensor = scalability_tensor(*shape, random_state=0)
    result = benchmark(dpar2, tensor, bench_config)
    assert result.n_iterations == bench_config.max_iterations


@pytest.mark.parametrize("shape", SIZES, ids=[f"{i}x{j}x{k}" for i, j, k in SIZES])
def test_parafac2_als_size_sweep(benchmark, bench_config, shape):
    tensor = scalability_tensor(*shape, random_state=0)
    result = benchmark(parafac2_als, tensor, bench_config)
    assert result.n_iterations == bench_config.max_iterations
