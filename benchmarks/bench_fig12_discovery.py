"""Fig. 12 — cost of the feature-correlation discovery pipeline.

The discovery step must be cheap relative to the decomposition: the whole
point of Section IV-E is that once DPar2 has produced factors, analyses
are interactive.
"""

import pytest

from repro.analysis.correlation import model_feature_correlation
from repro.decomposition.dpar2 import dpar2


@pytest.fixture(scope="module")
def stock_result(stock_tensor):
    from repro.util.config import DecompositionConfig

    return dpar2(
        stock_tensor,
        DecompositionConfig(rank=10, max_iterations=5, tolerance=0.0,
                            random_state=0),
    )


def test_model_feature_correlation_all_features(benchmark, stock_result):
    corr = benchmark(
        model_feature_correlation, stock_result.V, stock_result.H,
        stock_result.S,
    )
    assert corr.shape == (88, 88)


def test_model_feature_correlation_selection(benchmark, stock_result):
    corr = benchmark(
        model_feature_correlation, stock_result.V, stock_result.H,
        stock_result.S, list(range(8)),
    )
    assert corr.shape == (8, 8)
