"""Substrate micro-benchmarks: the kernel-level facts the paper builds on.

* randomized SVD is O(I J R) vs full SVD's O(I J min(I, J)) — the gap that
  makes stage-1 compression cheap (Section II-B);
* slice-wise MTTKRP avoids materializing Khatri-Rao products — SPARTan's
  kernel (and the naive cost PARAFAC2-ALS pays);
* the batched R×R SVDs of DPar2's iteration are trivia next to slice-sized
  work.
"""

import numpy as np
import pytest

from repro.decomposition.cp_als import slice_mttkrp
from repro.linalg.randomized_svd import randomized_svd
from repro.linalg.truncated_svd import truncated_svd
from repro.tensor.dense import DenseTensor
from repro.tensor.products import khatri_rao

RANK = 10


@pytest.fixture(scope="module")
def tall_matrix():
    return np.random.default_rng(0).standard_normal((2000, 400))


def test_randomized_svd_tall(benchmark, tall_matrix):
    out = benchmark(randomized_svd, tall_matrix, RANK, random_state=0)
    assert out.rank == RANK


def test_full_svd_tall(benchmark, tall_matrix):
    out = benchmark(truncated_svd, tall_matrix, RANK)
    assert out.rank == RANK


def test_rsvd_accuracy_near_optimal(tall_matrix):
    """The speed gap must not be bought with meaningful accuracy loss."""
    exact = truncated_svd(tall_matrix, RANK)
    approx = randomized_svd(tall_matrix, RANK, power_iterations=2,
                            random_state=0)
    exact_err = np.linalg.norm(tall_matrix - exact.reconstruct())
    approx_err = np.linalg.norm(tall_matrix - approx.reconstruct())
    assert approx_err <= 1.02 * exact_err


@pytest.fixture(scope="module")
def mttkrp_inputs():
    rng = np.random.default_rng(1)
    R, J, K = 10, 300, 200
    slices = [rng.standard_normal((R, J)) for _ in range(K)]
    H = rng.standard_normal((R, R))
    V = rng.standard_normal((J, R))
    W = rng.standard_normal((K, R))
    return slices, H, V, W


def test_slice_mttkrp_mode1(benchmark, mttkrp_inputs):
    slices, H, V, W = mttkrp_inputs
    out = benchmark(slice_mttkrp, slices, H, V, W, 1)
    assert out.shape == (10, 10)


def test_naive_mttkrp_mode1(benchmark, mttkrp_inputs):
    """The PARAFAC2-ALS route: unfold Y and materialize the Khatri-Rao."""
    slices, H, V, W = mttkrp_inputs
    Y = DenseTensor.from_frontal_slices(slices)

    def naive():
        return Y.unfold(1) @ khatri_rao(W, V)

    out = benchmark(naive)
    assert out.shape == (10, 10)


def test_batched_small_svd(benchmark):
    """DPar2's per-sweep cost: K SVDs of R x R matrices, batched."""
    rng = np.random.default_rng(2)
    stack = rng.standard_normal((200, RANK, RANK))

    def batched():
        Z, _, Pt = np.linalg.svd(stack)
        return Z @ Pt

    out = benchmark(batched)
    assert out.shape == stack.shape
