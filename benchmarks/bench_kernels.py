"""Substrate micro-benchmarks: the kernel-level facts the paper builds on.

* randomized SVD is O(I J R) vs full SVD's O(I J min(I, J)) — the gap that
  makes stage-1 compression cheap (Section II-B);
* slice-wise MTTKRP avoids materializing Khatri-Rao products — SPARTan's
  kernel (and the naive cost PARAFAC2-ALS pays);
* the batched R×R SVDs of DPar2's iteration are trivia next to slice-sized
  work.

Run as a script for the perf-regression tracker::

    python benchmarks/bench_kernels.py --json BENCH_kernels.json \
        --check benchmarks/baselines/bench_kernels_baseline.json

The script times the two DPar2 hot paths on a many-small-slices synthetic
(K >= 200): stage-1 compression per-slice vs batched, and the compressed
ALS sweeps, at float64 and float32.  On the numpy backend it additionally
times the **sparse axis** (schema v3): batched stage-1 compression of a
~2%-density CSR tensor against the identical data densified, recording
sketch seconds and tracemalloc peak bytes for both — the sparse fast path
must stay ≥ 3x faster at that density, and its peak memory below the
dense run's.  ``--json`` records the measurements; ``--check`` exits
non-zero when iterate, preprocess, *or sparse stage-1* seconds regress
more than ``--max-regression`` (default 2x) against a checked-in baseline.
``--backend`` selects the compute backend (numpy/torch/torch-cuda/cupy) —
the record carries a ``compute_backend`` field so baselines from different
backends are never compared against each other (v1-v3 baselines without
the newer fields still check cleanly: absent metrics are skipped).

Schema v4 adds ``timing_stats``: per timed metric, the full
``{best, median, spread}`` distribution over the ``--repeats`` runs
(``spread = (max - min) / median``), so a recorded trajectory carries its
own noise estimate.  The flat ``*_seconds`` keys keep their best-of-N
meaning, which is what the regression gate compares — old baselines read
and check unchanged.

Schema v5 adds the ``sparse_backend`` axis, recorded on *every* compute
backend now that CSR stage 1 routes through the ``xp`` sparse surface:
sparse sketch seconds on the selected backend plus a small row-count sweep
recording where sparse overtakes dense sketching there.  Purely
informational — the gate math is unchanged (device timings are
machine-dependent, and the CUDA crossover point stays ungated), and v3/v4
baselines read and check exactly as before.

Schema v6 adds the observability axis: ``obs_overhead`` times the dpar2
sweeps with the metrics registry enabled vs disabled (same box, same
invocation) and the machine-independent ratio is gated at 1.05 — the
instrumentation must stay effectively free — plus ``metrics``, the
process-default registry snapshot the run produced.  Older baselines
read and check unchanged (the ratio is checked on the record alone).
"""

import argparse
import json
import platform
import sys
import time

import numpy as np
import pytest

from repro.decomposition.cp_als import slice_mttkrp
from repro.linalg.randomized_svd import randomized_svd
from repro.linalg.truncated_svd import truncated_svd
from repro.tensor.dense import DenseTensor
from repro.tensor.products import khatri_rao

RANK = 10


@pytest.fixture(scope="module")
def tall_matrix():
    return np.random.default_rng(0).standard_normal((2000, 400))


def test_randomized_svd_tall(benchmark, tall_matrix):
    out = benchmark(randomized_svd, tall_matrix, RANK, random_state=0)
    assert out.rank == RANK


def test_full_svd_tall(benchmark, tall_matrix):
    out = benchmark(truncated_svd, tall_matrix, RANK)
    assert out.rank == RANK


def test_rsvd_accuracy_near_optimal(tall_matrix):
    """The speed gap must not be bought with meaningful accuracy loss."""
    exact = truncated_svd(tall_matrix, RANK)
    approx = randomized_svd(tall_matrix, RANK, power_iterations=2,
                            random_state=0)
    exact_err = np.linalg.norm(tall_matrix - exact.reconstruct())
    approx_err = np.linalg.norm(tall_matrix - approx.reconstruct())
    assert approx_err <= 1.02 * exact_err


@pytest.fixture(scope="module")
def mttkrp_inputs():
    rng = np.random.default_rng(1)
    R, J, K = 10, 300, 200
    slices = [rng.standard_normal((R, J)) for _ in range(K)]
    H = rng.standard_normal((R, R))
    V = rng.standard_normal((J, R))
    W = rng.standard_normal((K, R))
    return slices, H, V, W


def test_slice_mttkrp_mode1(benchmark, mttkrp_inputs):
    slices, H, V, W = mttkrp_inputs
    out = benchmark(slice_mttkrp, slices, H, V, W, 1)
    assert out.shape == (10, 10)


def test_naive_mttkrp_mode1(benchmark, mttkrp_inputs):
    """The PARAFAC2-ALS route: unfold Y and materialize the Khatri-Rao."""
    slices, H, V, W = mttkrp_inputs
    Y = DenseTensor.from_frontal_slices(slices)

    def naive():
        return Y.unfold(1) @ khatri_rao(W, V)

    out = benchmark(naive)
    assert out.shape == (10, 10)


def test_batched_small_svd(benchmark):
    """DPar2's per-sweep cost: K SVDs of R x R matrices, batched."""
    rng = np.random.default_rng(2)
    stack = rng.standard_normal((200, RANK, RANK))

    def batched():
        Z, _, Pt = np.linalg.svd(stack)
        return Z @ Pt

    out = benchmark(batched)
    assert out.shape == stack.shape


# --------------------------------------------------------------------- #
# script mode: BENCH_kernels.json trajectory + CI regression gate
# --------------------------------------------------------------------- #


def _timing_stats(samples) -> dict:
    """Summarize repeat wall-clocks: best, median, and relative spread.

    ``spread`` is ``(max - min) / median`` — a scale-free noise indicator
    that lets a reader judge how trustworthy the best/median numbers are
    without rerunning the benchmark (schema v4).
    """
    ordered = sorted(samples)
    n = len(ordered)
    median = (
        ordered[n // 2]
        if n % 2
        else 0.5 * (ordered[n // 2 - 1] + ordered[n // 2])
    )
    return {
        "best": ordered[0],
        "median": median,
        "spread": (ordered[-1] - ordered[0]) / median if median > 0 else 0.0,
    }


def _best_of(repeats, fn):
    """Wall-clock stats over ``repeats`` runs: ``(stats dict, last value)``."""
    samples = []
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        samples.append(time.perf_counter() - start)
    return _timing_stats(samples), value


def _peak_tracemalloc(fn) -> tuple[int, object]:
    """Peak traced allocation in bytes while running ``fn`` once."""
    import tracemalloc

    tracemalloc.start()
    try:
        value = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, value


def run_sparse_axis(
    *,
    n_slices: int = 64,
    n_rows: int = 512,
    n_columns: int = 256,
    density: float = 0.02,
    rank: int = 8,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """The sparse axis: batched stage-1 on CSR slices vs the same densified.

    Equal-height slices (one row-count bucket) so both paths run exactly
    one stacked pipeline — the comparison isolates SpMM-vs-dense sketching
    at equal shapes, seeds, and bucket schedules.  Returns the
    ``sparse_*`` / ``stage1_sparse_*`` keys merged into the main record.
    """
    from repro.data.synthetic import sparse_irregular_tensor
    from repro.decomposition.dpar2 import compress_tensor
    from repro.sparse.stacked import spmm_backend

    sparse_tensor = sparse_irregular_tensor(
        n_rows, n_columns, n_slices,
        density=density, min_rows=n_rows, random_state=seed,
    )
    dense_tensor = sparse_tensor.densified()

    def run(tensor):
        return compress_tensor(
            tensor, rank, random_state=seed,
            backend="serial", stage1_batching="batched",
        )

    sparse_stats, _ = _best_of(repeats, lambda: run(sparse_tensor))
    dense_stats, _ = _best_of(repeats, lambda: run(dense_tensor))
    sparse_seconds = sparse_stats["best"]
    dense_seconds = dense_stats["best"]
    sparse_peak, _ = _peak_tracemalloc(lambda: run(sparse_tensor))
    dense_peak, _ = _peak_tracemalloc(lambda: run(dense_tensor))

    return {
        "timing_stats": {
            "stage1_sparse_seconds": sparse_stats,
            "stage1_sparse_dense_seconds": dense_stats,
        },
        "sparse_spmm": spmm_backend(),
        "sparse_n_slices": sparse_tensor.n_slices,
        "sparse_rows": n_rows,
        "sparse_columns": n_columns,
        "sparse_density": density,
        "sparse_nnz": sparse_tensor.n_entries,
        "sparse_rank": rank,
        "sparse_input_bytes": sparse_tensor.nbytes,
        "sparse_dense_input_bytes": dense_tensor.nbytes,
        "stage1_sparse_seconds": sparse_seconds,
        "stage1_sparse_dense_seconds": dense_seconds,
        "stage1_sparse_speedup": dense_seconds / sparse_seconds,
        "sparse_peak_bytes": sparse_peak,
        "sparse_dense_peak_bytes": dense_peak,
    }


def run_sparse_backend_axis(
    *,
    compute_backend: str = "numpy",
    n_slices: int = 32,
    n_columns: int = 256,
    density: float = 0.02,
    rank: int = 8,
    repeats: int = 3,
    seed: int = 0,
    crossover_rows: tuple = (128, 512),
) -> dict:
    """Schema v5 ``sparse_backend`` axis: sparse sketching per backend.

    Batched stage-1 compression of a CSR tensor with ``compute_backend``
    routing the SpMM sketch (device handles upload once, the panel QRs and
    the small SVDs stay resident), at each row count in
    ``crossover_rows`` — the sweep records where sparse sketching
    overtakes densify-and-sketch *on that backend*, which is the number an
    operator picking ``--density-threshold`` for a device run needs.
    Purely informational: the regression gate never reads these keys
    (wall-clocks on device backends are machine-dependent).
    """
    from repro.data.synthetic import sparse_irregular_tensor
    from repro.decomposition.dpar2 import compress_tensor

    def run(tensor):
        return compress_tensor(
            tensor, rank, random_state=seed,
            backend="serial", stage1_batching="batched",
            compute_backend=compute_backend,
        )

    crossover = []
    for n_rows in crossover_rows:
        sparse_tensor = sparse_irregular_tensor(
            n_rows, n_columns, n_slices,
            density=density, min_rows=n_rows, random_state=seed,
        )
        dense_tensor = sparse_tensor.densified()
        sparse_stats, _ = _best_of(repeats, lambda: run(sparse_tensor))
        dense_stats, _ = _best_of(repeats, lambda: run(dense_tensor))
        crossover.append({
            "rows": n_rows,
            "nnz": sparse_tensor.n_entries,
            "sparse_seconds": sparse_stats["best"],
            "dense_seconds": dense_stats["best"],
            "speedup": dense_stats["best"] / sparse_stats["best"],
            "timing_stats": {
                "sparse_seconds": sparse_stats,
                "dense_seconds": dense_stats,
            },
        })
    largest = crossover[-1]
    return {
        "compute_backend": compute_backend,
        "n_slices": n_slices,
        "n_columns": n_columns,
        "density": density,
        "rank": rank,
        "sketch_seconds": largest["sparse_seconds"],
        "dense_sketch_seconds": largest["dense_seconds"],
        "speedup": largest["speedup"],
        "crossover": crossover,
    }


def run_obs_overhead(*, rank: int, sweeps: int, repeats: int, seed: int) -> dict:
    """Measure the metrics-registry cost on the dpar2 sweep hot path.

    Runs the same compressed-sweep workload twice — once with an enabled
    registry installed, once with a disabled one (tracing off in both) —
    and reports best-of-N iterate seconds for each plus their ratio.  The
    ratio is machine-independent (both halves run on the same box within
    the same invocation) and CI-gated at 1.05: instrumentation that costs
    the hot path more than 5% is a regression in its own right.
    """
    from repro.data.synthetic import irregular_scalability_tensor
    from repro.decomposition.dpar2 import dpar2
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.util.config import DecompositionConfig

    tensor = irregular_scalability_tensor(48, 24, 120, min_rows=16, random_state=seed)
    config = DecompositionConfig(
        rank=rank, max_iterations=max(sweeps, 8), tolerance=0.0,
        random_state=seed, backend="serial",
    )

    def iterate_best(registry: MetricsRegistry) -> float:
        samples = []
        with use_registry(registry):
            for _ in range(max(repeats, 3)):
                samples.append(dpar2(tensor, config).iterate_seconds)
        return min(samples)

    # Warm caches once so neither half pays first-touch costs.
    dpar2(tensor, config)
    enabled = iterate_best(MetricsRegistry(enabled=True))
    disabled = iterate_best(MetricsRegistry(enabled=False))
    return {
        "enabled_seconds": enabled,
        "disabled_seconds": disabled,
        "overhead_ratio": enabled / disabled if disabled > 0 else 1.0,
    }


def run_kernel_bench(
    *,
    n_slices: int = 240,
    n_columns: int = 30,
    rank: int = 8,
    sweeps: int = 8,
    repeats: int = 3,
    seed: int = 0,
    compute_backend: str = "numpy",
) -> dict:
    """Time the two hot paths on a many-small-slices synthetic tensor.

    Returns the record written to ``BENCH_kernels.json``: stage-1 seconds
    per dispatch strategy, preprocess/iterate seconds and bytes for a full
    ``dpar2`` run, the float32 pipeline's timings for comparison, the
    per-backend ``sparse_backend`` axis of :func:`run_sparse_backend_axis`,
    and (on the numpy backend) the gated sparse axis of
    :func:`run_sparse_axis` — the host sparse-vs-dense comparison the
    regression gate reads; its floors are host facts, so device records
    skip it and stay ungated.
    ``compute_backend`` re-runs the whole matrix through the ``xp`` layer
    (the per-slice reference dispatch is host-only, so on a non-numpy
    backend the stage-1 comparison is host-per-slice vs device-batched —
    exactly the routing a real run would take).
    """
    from repro.data.synthetic import irregular_scalability_tensor
    from repro.decomposition.dpar2 import compress_tensor, dpar2
    from repro.util.config import DecompositionConfig

    tensor = irregular_scalability_tensor(
        48, n_columns, n_slices, min_rows=16, random_state=seed
    )

    per_slice_stats, _ = _best_of(
        repeats,
        lambda: compress_tensor(
            tensor, rank, random_state=seed,
            backend="serial", stage1_batching="per-slice",
        ),
    )
    batched_stats, _ = _best_of(
        repeats,
        lambda: compress_tensor(
            tensor, rank, random_state=seed,
            backend="serial", stage1_batching="batched",
            compute_backend=compute_backend,
        ),
    )
    per_slice_seconds = per_slice_stats["best"]
    batched_seconds = batched_stats["best"]

    # Schema v4: every flat ``*_seconds`` key keeps its best-of-N meaning
    # (so v1-v3 baselines compare unchanged), and ``timing_stats`` carries
    # the per-metric {best, median, spread} distribution alongside.
    record = {
        "schema_version": 6,
        "timing_stats": {
            "stage1_per_slice_seconds": per_slice_stats,
            "stage1_batched_seconds": batched_stats,
        },
        "compute_backend": compute_backend,
        "platform": platform.platform(),
        "n_slices": tensor.n_slices,
        "n_columns": tensor.n_columns,
        "rank": rank,
        "sweeps": sweeps,
        "repeats": repeats,
        "input_bytes": tensor.nbytes,
        "stage1_per_slice_seconds": per_slice_seconds,
        "stage1_batched_seconds": batched_seconds,
        "stage1_batched_speedup": per_slice_seconds / batched_seconds,
    }
    for dtype in ("float64", "float32"):
        config = DecompositionConfig(
            rank=rank, max_iterations=sweeps, tolerance=0.0,
            random_state=seed, backend="serial", dtype=dtype,
            compute_backend=compute_backend,
        )
        # Best-of-N on each phase independently: the CI gate compares these
        # numbers across machines, so a single noisy sample must not decide.
        results = [dpar2(tensor, config) for _ in range(repeats)]
        key = "" if dtype == "float64" else "_float32"
        preprocess = _timing_stats([r.preprocess_seconds for r in results])
        iterate = _timing_stats([r.iterate_seconds for r in results])
        record[f"preprocess_seconds{key}"] = preprocess["best"]
        record[f"iterate_seconds{key}"] = iterate["best"]
        record[f"preprocessed_bytes{key}"] = results[0].preprocessed_bytes
        record["timing_stats"][f"preprocess_seconds{key}"] = preprocess
        record["timing_stats"][f"iterate_seconds{key}"] = iterate
    if compute_backend == "numpy":
        sparse = run_sparse_axis(rank=rank, repeats=repeats, seed=seed)
        record["timing_stats"].update(sparse.pop("timing_stats"))
        record.update(sparse)
    # Schema v5: sparse sketching on the *selected* backend (every
    # backend, numpy included) — informational only, never gated.
    record["sparse_backend"] = run_sparse_backend_axis(
        compute_backend=compute_backend, rank=rank, repeats=repeats, seed=seed
    )
    # Schema v6: the observability axis — registry-on vs registry-off
    # sweep cost (ratio gated at 1.05) plus the process-default registry's
    # snapshot, so a recorded run carries the counters it produced.
    from repro.obs.metrics import get_registry

    record["obs_overhead"] = run_obs_overhead(
        rank=rank, sweeps=sweeps, repeats=repeats, seed=seed
    )
    record["metrics"] = get_registry().snapshot()
    return record


def check_against_baseline(
    record: dict, baseline: dict, max_regression: float
) -> list[str]:
    """Return failure messages for metrics regressing beyond the factor.

    Schema-tolerant both ways: a v1 baseline (no ``compute_backend`` /
    preprocess history) simply skips the checks it has no data for, and a
    baseline recorded on a different compute backend refuses the
    comparison outright rather than misreading a backend change as a
    regression.
    """
    failures = []
    # v1 baselines predate the backend axis; they were all numpy records.
    # v3 adds the sparse_* workload keys — older baselines (and non-numpy
    # records, which skip the sparse axis) simply have nothing to compare.
    for key in (
        "n_slices", "n_columns", "rank", "sweeps", "compute_backend",
        "sparse_n_slices", "sparse_rows", "sparse_columns", "sparse_density",
        "sparse_rank",
    ):
        base = baseline.get(key, "numpy" if key == "compute_backend" else None)
        current = record.get(key)
        if base is not None and current is not None and base != current:
            failures.append(
                f"workload mismatch on {key}: ran {current} but baseline "
                f"recorded {base} — timings are not comparable"
            )
    if failures:
        return failures
    for metric in (
        "iterate_seconds",
        "iterate_seconds_float32",
        "preprocess_seconds",
        "preprocess_seconds_float32",
        "stage1_sparse_seconds",
    ):
        base = baseline.get(metric)
        current = record.get(metric)
        if base is None or base <= 0 or current is None:
            continue
        if current > base * max_regression:
            failures.append(
                f"{metric} regressed {current / base:.2f}x "
                f"({current:.4f}s vs baseline {base:.4f}s, "
                f"allowed {max_regression:.1f}x)"
            )
    # Machine-independent guards: absolute seconds vary with the runner,
    # but batched stage 1 dropping below the per-slice path — or the
    # sparse fast path losing its advantage over dense sketching at 2%
    # density — is a genuine kernel regression wherever it happens.
    speedup = record.get("stage1_batched_speedup")
    if speedup is not None and speedup < 0.9:
        failures.append(
            f"batched stage 1 slower than per-slice dispatch "
            f"(speedup {speedup:.2f}x < 0.9x)"
        )
    sparse_speedup = record.get("stage1_sparse_speedup")
    if sparse_speedup is not None:
        # The ≥3x bar holds for the compiled (scipy) SpMM; the numpy-only
        # fallback is expansion-bound and only required not to *lose* to
        # the dense path.
        floor = 3.0 if record.get("sparse_spmm") == "scipy" else 1.0
        if sparse_speedup < floor:
            failures.append(
                f"sparse stage 1 under {floor:.1f}x the dense batched path "
                f"at {record.get('sparse_density', '?')} density on the "
                f"{record.get('sparse_spmm', '?')} spmm kernel "
                f"(speedup {sparse_speedup:.2f}x)"
            )
    sparse_peak = record.get("sparse_peak_bytes")
    dense_peak = record.get("sparse_dense_peak_bytes")
    if sparse_peak is not None and dense_peak is not None and sparse_peak >= dense_peak:
        failures.append(
            f"sparse stage 1 peak memory not below the dense run "
            f"({sparse_peak} >= {dense_peak} bytes)"
        )
    # Schema v6: the metrics registry must stay effectively free on the
    # sweep hot path.  Best-of-N against best-of-N on the same box within
    # one invocation, so the 5% budget is headroom, not noise tolerance.
    obs = record.get("obs_overhead")
    if obs is not None and obs["overhead_ratio"] > 1.05:
        failures.append(
            f"metrics registry costs {100 * (obs['overhead_ratio'] - 1):.1f}% "
            f"on the sweep hot path (enabled {obs['enabled_seconds']:.4f}s vs "
            f"disabled {obs['disabled_seconds']:.4f}s, allowed 5%)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="DPar2 hot-path benchmark: batched stage-1 + sweeps"
    )
    parser.add_argument("--json", metavar="PATH",
                        help="write the measurement record to this file")
    parser.add_argument("--check", metavar="BASELINE",
                        help="baseline JSON to compare iterate seconds against")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="failure threshold as a factor over the baseline "
                        "(default: 2.0)")
    parser.add_argument("--slices", type=int, default=240)
    parser.add_argument("--columns", type=int, default=30)
    parser.add_argument("--rank", type=int, default=8)
    parser.add_argument("--sweeps", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--backend", default="numpy", metavar="COMPUTE",
                        help="compute backend for the batched kernels: "
                        "numpy (default), torch, torch-cuda, or cupy")
    args = parser.parse_args(argv)

    record = run_kernel_bench(
        n_slices=args.slices, n_columns=args.columns, rank=args.rank,
        sweeps=args.sweeps, repeats=args.repeats,
        compute_backend=args.backend,
    )
    print(f"stage 1 (K={record['n_slices']} small slices,"
          f" {record['compute_backend']}):"
          f" per-slice {record['stage1_per_slice_seconds']:.4f}s"
          f" batched {record['stage1_batched_seconds']:.4f}s"
          f" -> {record['stage1_batched_speedup']:.2f}x")
    print(f"dpar2   : preprocess {record['preprocess_seconds']:.4f}s"
          f" iterate {record['iterate_seconds']:.4f}s"
          f" ({record['sweeps']} sweeps,"
          f" {record['preprocessed_bytes']} bytes compressed)")
    print(f"float32 : preprocess {record['preprocess_seconds_float32']:.4f}s"
          f" iterate {record['iterate_seconds_float32']:.4f}s"
          f" ({record['preprocessed_bytes_float32']} bytes compressed)")
    if "stage1_sparse_seconds" in record:
        print(f"sparse  : stage 1 on {record['sparse_n_slices']} slices of "
              f"{record['sparse_rows']}x{record['sparse_columns']} at "
              f"{record['sparse_density']:.0%} density:"
              f" csr {record['stage1_sparse_seconds']:.4f}s"
              f" dense {record['stage1_sparse_dense_seconds']:.4f}s"
              f" -> {record['stage1_sparse_speedup']:.2f}x,"
              f" peak {record['sparse_peak_bytes']} vs"
              f" {record['sparse_dense_peak_bytes']} bytes")
    obs = record["obs_overhead"]
    print(f"obs     : iterate with registry enabled {obs['enabled_seconds']:.4f}s"
          f" vs disabled {obs['disabled_seconds']:.4f}s"
          f" -> {obs['overhead_ratio']:.3f}x (gate: <= 1.05x)")
    axis = record["sparse_backend"]
    for point in axis["crossover"]:
        print(f"sparse/{axis['compute_backend']}: "
              f"{point['rows']}x{axis['n_columns']}x{axis['n_slices']} at "
              f"{axis['density']:.0%}: csr {point['sparse_seconds']:.4f}s"
              f" dense {point['dense_seconds']:.4f}s"
              f" -> {point['speedup']:.2f}x")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(record, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_against_baseline(record, baseline, args.max_regression)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"regression gate ok (<= {args.max_regression:.1f}x baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
