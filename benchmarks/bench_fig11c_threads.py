"""Fig. 11(c) — multi-core behaviour of the compression stage.

On a multi-core machine the per-slice randomized SVDs scale near-linearly
(paper: 5.5x at 10 threads).  These benchmarks measure the worker sweep for
each execution backend; on a single-core container they document that the
dispatch adds no meaningful overhead (the modeled curve lives in
``repro.experiments.fig11_scalability.run_threads``).

The backend comparison pins one worker count and swaps the substrate:
``serial`` is the no-dispatch floor, ``thread`` relies on BLAS releasing
the GIL, and ``process`` pays fork + shared-memory shipping to escape the
GIL entirely — the trade DPar2's compression stage amortizes because each
slice is SVD-heavy.
"""

import pytest

from repro.data.synthetic import irregular_scalability_tensor
from repro.decomposition.dpar2 import compress_tensor
from repro.parallel.backends import BACKEND_NAMES, get_backend

THREADS = [1, 2, 4]
WORKERS_FOR_BACKEND_SWEEP = 2


@pytest.fixture(scope="module")
def skewed_tensor():
    """Skewed slice heights: the regime Algorithm 4 is designed for."""
    return irregular_scalability_tensor(400, 60, 40, random_state=0)


@pytest.mark.parametrize("n_threads", THREADS)
def test_compression_thread_sweep(benchmark, skewed_tensor, n_threads):
    compressed = benchmark(
        compress_tensor,
        skewed_tensor,
        10,
        n_threads=n_threads,
        random_state=0,
    )
    assert compressed.n_slices == skewed_tensor.n_slices


@pytest.mark.parametrize("backend_name", list(BACKEND_NAMES))
def test_compression_backend_sweep(benchmark, skewed_tensor, backend_name):
    """Same compression, same worker count, different execution substrate.

    The backend instance is created outside the timed region and reused
    across rounds — matching how ``dpar2`` holds one backend per call — so
    the process rows time shipping + compute, not pool forking.
    """
    with get_backend(backend_name, WORKERS_FOR_BACKEND_SWEEP) as engine:
        compressed = benchmark.pedantic(
            compress_tensor,
            args=(skewed_tensor, 10),
            kwargs={"random_state": 0, "backend": engine},
            rounds=3,
            iterations=1,
            warmup_rounds=1,
        )
    assert compressed.n_slices == skewed_tensor.n_slices
