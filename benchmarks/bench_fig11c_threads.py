"""Fig. 11(c) — multi-core behaviour of the compression stage.

On a multi-core machine the per-slice randomized SVDs scale near-linearly
(paper: 5.5x at 10 threads).  These benchmarks measure the thread sweep;
on a single-core container they document that the thread pool adds no
meaningful overhead (the modeled curve lives in
``repro.experiments.fig11_scalability.run_threads``).
"""

import pytest

from repro.data.synthetic import irregular_scalability_tensor
from repro.decomposition.dpar2 import compress_tensor

THREADS = [1, 2, 4]


@pytest.fixture(scope="module")
def skewed_tensor():
    """Skewed slice heights: the regime Algorithm 4 is designed for."""
    return irregular_scalability_tensor(400, 60, 40, random_state=0)


@pytest.mark.parametrize("n_threads", THREADS)
def test_compression_thread_sweep(benchmark, skewed_tensor, n_threads):
    compressed = benchmark(
        compress_tensor,
        skewed_tensor,
        10,
        n_threads=n_threads,
        random_state=0,
    )
    assert compressed.n_slices == skewed_tensor.n_slices
