"""Fig. 10 — compression: preprocessed size must shrink by ~J/R, and the
compression step itself must be cheap (it is what buys the ratio).
"""

from repro.decomposition.dpar2 import compress_tensor

RANK = 10


def test_compression_ratio_wide_j(benchmark, audio_tensor):
    """Wide-J spectrogram data: the paper's largest ratios (up to 201x)."""
    compressed = benchmark(compress_tensor, audio_tensor, RANK, random_state=0)
    ratio = compressed.compression_ratio(audio_tensor)
    assert ratio > 10.0  # J=513, R=10 -> tens of x at bench scale


def test_compression_ratio_narrow_j(benchmark, stock_tensor):
    """Narrow-J stock data: the paper's smallest ratios (~8.8x)."""
    compressed = benchmark(compress_tensor, stock_tensor, RANK, random_state=0)
    ratio = compressed.compression_ratio(stock_tensor)
    assert 2.0 < ratio < 50.0


def test_wide_j_compresses_better_than_narrow_j(audio_tensor, stock_tensor):
    """The paper's Section IV-B analysis: ratio grows with J/R."""
    wide = compress_tensor(audio_tensor, RANK, random_state=0)
    narrow = compress_tensor(stock_tensor, RANK, random_state=0)
    assert wide.compression_ratio(audio_tensor) > narrow.compression_ratio(
        stock_tensor
    )
