"""Benchmarks for the beyond-the-paper extensions.

* Streaming DPar2 (the paper's future work): per-slice absorb cost must be
  independent of already-absorbed history.
* Constrained DPar2 (COPA-style): constraints must not change the sweep's
  asymptotics.
* Model persistence: save/load must be I/O-bound, not compute-bound.
"""

import numpy as np
import pytest

from repro.decomposition.constrained import constrained_dpar2
from repro.decomposition.dpar2 import compress_tensor, dpar2
from repro.decomposition.streaming import StreamingDpar2
from repro.io import load_result, save_result
from repro.util.config import DecompositionConfig


def test_streaming_absorb(benchmark, structured_tensor):
    config = DecompositionConfig(rank=10, random_state=0)

    def absorb_one():
        stream = StreamingDpar2(config)
        for Xk in structured_tensor:
            stream.absorb(Xk, refresh=False)
        return stream

    stream = benchmark(absorb_one)
    assert stream.n_slices == structured_tensor.n_slices


def test_streaming_absorb_cost_flat_in_history(structured_tensor):
    """Absorbing slice 50 must cost about the same as absorbing slice 5 —
    the defining property of the streaming variant."""
    import time

    from repro.tensor.random import random_irregular_tensor

    tensor = random_irregular_tensor([60] * 50, 40, random_state=0)
    stream = StreamingDpar2(DecompositionConfig(rank=8, random_state=0))
    times = []
    for Xk in tensor:
        t0 = time.perf_counter()
        stream.absorb(Xk, refresh=False)
        times.append(time.perf_counter() - t0)
    early = float(np.median(times[2:10]))
    late = float(np.median(times[-8:]))
    assert late < 8.0 * early  # flat up to noise, never linear growth


@pytest.mark.parametrize(
    "variant", ["unconstrained", "nonnegative", "smooth"]
)
def test_constrained_sweep_cost(benchmark, structured_tensor, bench_config,
                                variant):
    compressed = compress_tensor(structured_tensor, bench_config.rank,
                                 random_state=0)
    kwargs = {}
    if variant == "nonnegative":
        kwargs["nonnegative_weights"] = True
    elif variant == "smooth":
        kwargs["smooth_v"] = 0.1
    result = benchmark(
        constrained_dpar2, structured_tensor, bench_config,
        compressed=compressed, **kwargs,
    )
    assert result.n_iterations == bench_config.max_iterations


def test_model_save_load(benchmark, structured_tensor, bench_config,
                         tmp_path):
    result = dpar2(structured_tensor, bench_config)
    path = tmp_path / "model.npz"

    def roundtrip():
        save_result(path, result)
        return load_result(path)

    loaded = benchmark(roundtrip)
    assert loaded.rank == result.rank
