"""Shared fixtures for the benchmark suite.

Each ``bench_*.py`` file regenerates the timing content of one table or
figure from the paper (see DESIGN.md §2).  Sizes are scaled so the whole
suite runs in minutes on one core; the *ratios between methods* are the
reproduced quantity, not absolute seconds.
"""

import pytest

from repro.data.registry import load_dataset
from repro.data.synthetic import scalability_tensor
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig

RANK = 10
SEED = 0


@pytest.fixture(scope="session")
def audio_tensor():
    """FMA-like spectrogram tensor (the wide-J workload)."""
    return load_dataset("fma", random_state=SEED)


@pytest.fixture(scope="session")
def stock_tensor():
    """US-stock-like tensor (the long-Ik workload)."""
    return load_dataset("us_stock", random_state=SEED)


@pytest.fixture(scope="session")
def video_tensor():
    return load_dataset("activity", random_state=SEED)


@pytest.fixture(scope="session")
def synthetic_tensor():
    """The Fig. 11 style tenrand tensor at bench scale."""
    return scalability_tensor(120, 120, 160, random_state=SEED)


@pytest.fixture(scope="session")
def structured_tensor():
    return low_rank_irregular_tensor(
        [80, 120, 60, 100, 90], 60, rank=RANK, noise=0.05, random_state=SEED
    )


@pytest.fixture
def bench_config():
    return DecompositionConfig(
        rank=RANK, max_iterations=5, tolerance=0.0, random_state=SEED
    )
