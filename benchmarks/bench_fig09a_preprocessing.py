"""Fig. 9(a) — preprocessing time: DPar2's two-stage randomized compression
vs RD-ALS's SVD of the concatenated slices (paper: DPar2 up to 10x faster).
"""

from repro.decomposition.dpar2 import compress_tensor
from repro.linalg.truncated_svd import truncated_svd

RANK = 10


def test_dpar2_compression_audio(benchmark, audio_tensor):
    compressed = benchmark(
        compress_tensor, audio_tensor, RANK, random_state=0
    )
    assert compressed.rank == RANK


def test_rd_als_preprocessing_audio(benchmark, audio_tensor):
    def rd_preprocess():
        concatenated = audio_tensor.transpose_concatenation()
        V_hat = truncated_svd(concatenated, RANK).U
        return [Xk @ V_hat for Xk in audio_tensor]

    projected = benchmark(rd_preprocess)
    assert projected[0].shape[1] == RANK


def test_dpar2_compression_stock(benchmark, stock_tensor):
    compressed = benchmark(
        compress_tensor, stock_tensor, RANK, random_state=0
    )
    assert compressed.n_slices == stock_tensor.n_slices


def test_rd_als_preprocessing_stock(benchmark, stock_tensor):
    def rd_preprocess():
        concatenated = stock_tensor.transpose_concatenation()
        return truncated_svd(concatenated, RANK).U

    V_hat = benchmark(rd_preprocess)
    assert V_hat.shape == (stock_tensor.n_columns, RANK)
