"""Ablation — Algorithm 4's greedy partitioning vs naive allocation.

On a multi-core machine greedy partitioning cuts the completion time of
the compression stage by the measured imbalance ratio; on any machine the
scheduling itself must be (and is) negligible next to the SVD work.
"""

import pytest

from repro.data.synthetic import irregular_scalability_tensor
from repro.decomposition.dpar2 import compress_tensor
from repro.parallel.partition import (
    greedy_partition,
    partition_imbalance,
    round_robin_partition,
)


@pytest.fixture(scope="module")
def skewed_tensor():
    return irregular_scalability_tensor(400, 60, 48, random_state=0)


@pytest.mark.parametrize("greedy", [True, False], ids=["greedy", "naive"])
def test_compression_with_partitioner(benchmark, skewed_tensor, greedy):
    compressed = benchmark(
        compress_tensor, skewed_tensor, 10,
        n_threads=2, use_greedy_partition=greedy, random_state=0,
    )
    assert compressed.n_slices == skewed_tensor.n_slices


def test_partitioning_overhead_is_negligible(benchmark, skewed_tensor):
    weights = skewed_tensor.row_counts
    parts = benchmark(greedy_partition, weights, 6)
    assert sum(len(g) for g in parts) == len(weights)


def test_greedy_improves_predicted_completion(skewed_tensor):
    """The quantity Fig. 11(c)'s model uses: max-load imbalance."""
    weights = skewed_tensor.row_counts
    greedy = partition_imbalance(weights, greedy_partition(weights, 6))
    naive = partition_imbalance(
        weights, round_robin_partition(len(weights), 6)
    )
    assert greedy <= naive
