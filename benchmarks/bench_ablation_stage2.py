"""Ablation — the second compression stage (Section III-B).

Stage 2 compresses the J x KR concatenation of the stage-1 right factors.
Skipping it leaves K separate (J x R) right factors, inflating both the
preprocessed size and the per-iteration cost of the H/V/W updates.  The
paper keeps stage 2; this ablation measures what it buys.
"""

import numpy as np

from repro.decomposition.dpar2 import compress_tensor
from repro.linalg.randomized_svd import randomized_svd

RANK = 10


def stage1_only(tensor, rank, random_state=0):
    """Per-slice rSVD without the second stage (the ablated variant)."""
    rng = np.random.default_rng(random_state)
    return [
        randomized_svd(Xk, rank, random_state=rng) for Xk in tensor
    ]


def test_stage1_only_cost(benchmark, audio_tensor):
    results = benchmark(stage1_only, audio_tensor, RANK)
    assert len(results) == audio_tensor.n_slices


def test_two_stage_cost(benchmark, audio_tensor):
    compressed = benchmark(compress_tensor, audio_tensor, RANK, random_state=0)
    assert compressed.rank == RANK


def test_stage2_shrinks_storage(audio_tensor):
    """The size claim behind Fig. 10: two-stage < stage-1-only storage."""
    stage1 = stage1_only(audio_tensor, RANK)
    stage1_bytes = sum(
        r.U.nbytes + r.singular_values.nbytes + r.V.nbytes for r in stage1
    )
    two_stage = compress_tensor(audio_tensor, RANK, random_state=0)
    assert two_stage.nbytes < stage1_bytes

    # And stage 2 must cost little accuracy: the slice reconstructions of
    # the two variants agree closely on this strongly low-rank data.
    for k in (0, 1):
        via_stage1 = (stage1[k].U * stage1[k].singular_values) @ stage1[k].V.T
        via_two_stage = two_stage.reconstruct_slice(k)
        denom = np.linalg.norm(via_stage1)
        assert np.linalg.norm(via_stage1 - via_two_stage) < 0.35 * denom
