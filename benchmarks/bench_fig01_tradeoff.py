"""Fig. 1 — end-to-end running time of every method (the trade-off's x-axis).

The paper's headline: DPar2 completes full PARAFAC2 runs 1.5-6.0x faster
than RD-ALS / PARAFAC2-ALS / SPARTan at comparable fitness.
"""

import pytest

from repro.decomposition import dpar2, parafac2_als, rd_als, spartan

SOLVERS = {
    "dpar2": dpar2,
    "rd_als": rd_als,
    "parafac2_als": parafac2_als,
    "spartan": spartan,
}


@pytest.mark.parametrize("method", list(SOLVERS))
def test_end_to_end_audio(benchmark, audio_tensor, bench_config, method):
    result = benchmark(SOLVERS[method], audio_tensor, bench_config)
    assert result.n_iterations == bench_config.max_iterations


@pytest.mark.parametrize("method", list(SOLVERS))
def test_end_to_end_stock(benchmark, stock_tensor, bench_config, method):
    result = benchmark(SOLVERS[method], stock_tensor, bench_config)
    assert result.n_iterations == bench_config.max_iterations


@pytest.mark.parametrize("rank", [10, 15, 20])
def test_dpar2_across_paper_ranks(benchmark, video_tensor, bench_config, rank):
    result = benchmark(dpar2, video_tensor, bench_config.with_(rank=rank))
    assert result.rank == rank
