"""Ablation — randomized-SVD power iterations (q in Algorithm 1).

q trades compression time against accuracy: q=0 is the cheapest sketch,
each extra power iteration adds two passes over every slice.  DESIGN.md §6
calls this knob out; the benchmark quantifies the cost side, and the
assertion quantifies the accuracy side (fitness must not *degrade* as q
grows).
"""

import pytest

from repro.decomposition.dpar2 import compress_tensor, dpar2
from repro.util.config import DecompositionConfig

QS = [0, 1, 2]


@pytest.mark.parametrize("q", QS)
def test_compression_cost_vs_power_iterations(benchmark, audio_tensor, q):
    compressed = benchmark(
        compress_tensor, audio_tensor, 10,
        power_iterations=q, random_state=0,
    )
    assert compressed.rank == 10


def test_fitness_monotone_in_power_iterations(structured_tensor):
    fits = []
    for q in QS:
        config = DecompositionConfig(
            rank=10, max_iterations=10, power_iterations=q, random_state=0
        )
        fits.append(dpar2(structured_tensor, config).fitness(structured_tensor))
    assert fits[-1] >= fits[0] - 0.02
