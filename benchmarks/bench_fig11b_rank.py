"""Fig. 11(b) — scalability with target rank.

DPar2 stays ahead across ranks 10-50 (paper: 7.0-15.9x), with the gap
narrowing at high ranks because randomized SVD targets low rank.
"""

import pytest

from repro.decomposition import dpar2, parafac2_als

RANKS = [10, 30, 50]


@pytest.mark.parametrize("rank", RANKS)
def test_dpar2_rank_sweep(benchmark, synthetic_tensor, bench_config, rank):
    result = benchmark(dpar2, synthetic_tensor, bench_config.with_(rank=rank))
    assert result.rank == rank


@pytest.mark.parametrize("rank", RANKS)
def test_parafac2_als_rank_sweep(benchmark, synthetic_tensor, bench_config, rank):
    result = benchmark(
        parafac2_als, synthetic_tensor, bench_config.with_(rank=rank)
    )
    assert result.rank == rank
