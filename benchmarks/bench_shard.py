"""Sharded-DPar2 benchmark: invariance gate + allreduce accounting.

Measures the shard coordinator (:mod:`repro.decomposition.sharded`) on a
skewed-row-count synthetic tensor and writes ``BENCH_shard.json``:

* **Invariance** — sha256 of the final factors for every combination of
  {dense, CSR} x {float64, float32} x shards in {1, 2, 4}.  The digests
  must be *equal across shard counts* within each combination: that is the
  sharded path's correctness contract, machine-independent, and gated in
  CI (``--check``).
* **Overhead** — ``shards=1`` on the in-process ``serial`` shard backend
  against the classic unsharded solver, best-of-N total seconds.  The
  coordinator restructures the sweeps into per-cell kernels, so this ratio
  is its pure bookkeeping cost; gated at ``--max-overhead`` (default
  1.10x).
* **Allreduce payload** — bytes crossing shard boundaries per sweep,
  measured by the shard runner.  Gated against an explicit O(R·Rc) bound
  that does not contain K or the row counts: the whole point of the
  design is that sweep traffic is independent of the data size.
* **Speedup** — iterate seconds for shards in {1, 2, 4} on the process
  backend, recorded *ungated* (CI machines make no throughput promises).
* **Fault matrix** (``--inject``) — a deterministic fault at every
  ``shard.call.*`` site x {crash, hang} plus corrupt replies, on a
  2-shard process fixture with a short call deadline.  Each case is
  gated (``--check``) on the recovered factors being sha256-identical
  to the no-fault baseline with at least one worker restart recorded —
  the respawn-and-replay contract of
  :class:`~repro.parallel.sharding.ProcessShardRunner`.

Run::

    python benchmarks/bench_shard.py --json BENCH_shard.json --check
    python benchmarks/bench_shard.py --inject --inject-only --check
"""

import argparse
import hashlib
import json
import os
import platform
import sys
import time

import numpy as np


def factor_sha256(result) -> str:
    """Digest of the final factors, invariant to everything but their bytes."""
    digest = hashlib.sha256()
    for array in (result.H, result.V, result.S, *result.Q):
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _best_total(fn, repeats):
    """Best-of-N ``(total_seconds, iterate_seconds, result)`` for a solve."""
    best_total = float("inf")
    best_iterate = float("inf")
    result = None
    for _ in range(repeats):
        out = fn()
        best_total = min(best_total, out.total_seconds)
        best_iterate = min(best_iterate, out.iterate_seconds)
        result = out
    return best_total, best_iterate, result


def run_shard_bench(
    *,
    max_rows: int = 4000,
    n_columns: int = 128,
    n_slices: int = 64,
    rank: int = 24,
    sweeps: int = 10,
    repeats: int = 3,
    seed: int = 0,
    shard_counts=(1, 2, 4),
) -> dict:
    """Measure the shard coordinator; returns the ``BENCH_shard.json`` record.

    The fixture is the skewed-height synthetic of the partitioning
    ablation (log-uniform ``Ik``), large enough that BLAS work — not
    Python dispatch — dominates the timed paths.  Invariance digests run
    on the serial shard backend (transport cannot change the bytes;
    the test suite separately pins thread/process equality), timing runs
    on the backends named in the record.
    """
    from repro.data.synthetic import (
        irregular_scalability_tensor,
        sparse_irregular_tensor,
    )
    from repro.decomposition.dpar2 import dpar2
    from repro.util.config import DecompositionConfig

    dense = irregular_scalability_tensor(
        max_rows, n_columns, n_slices, min_rows=max_rows // 20,
        random_state=seed,
    )
    sparse = sparse_irregular_tensor(
        max_rows, n_columns, n_slices, density=0.05,
        min_rows=max_rows // 20, random_state=seed,
    )

    def config(shards=None, backend="serial", dtype="float64"):
        return DecompositionConfig(
            rank=rank, max_iterations=sweeps, tolerance=0.0,
            random_state=seed, backend="serial", dtype=dtype,
            shards=shards, shard_backend=backend,
        )

    try:
        usable_cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        usable_cores = os.cpu_count() or 1
    record = {
        "schema_version": 1,
        "platform": platform.platform(),
        # Process-shard speedup is bounded by this; a 1-core runner can
        # only record overhead, which is why the speedup is ungated.
        "usable_cores": usable_cores,
        "max_rows": max_rows,
        "n_columns": n_columns,
        "n_slices": n_slices,
        "rank": rank,
        "sweeps": sweeps,
        "repeats": repeats,
        "shard_counts": list(shard_counts),
        "input_bytes": dense.nbytes,
        "combos": {},
    }

    # --- invariance digests: every data/dtype combo, all shard counts --- #
    for data_name, tensor in (("dense", dense), ("csr", sparse)):
        for dtype in ("float64", "float32"):
            combo: dict = {"factor_sha256": {}}
            for shards in shard_counts:
                result = dpar2(tensor, config(shards, "serial", dtype))
                combo["factor_sha256"][str(shards)] = factor_sha256(result)
            sharding = result.stats["sharding"]
            combo["imbalance"] = sharding["imbalance"]
            combo["cells"] = sharding["cells"]
            combo["allreduce_bytes_per_sweep"] = sharding[
                "allreduce_bytes_per_sweep"
            ]
            record["combos"][f"{data_name}_{dtype}"] = combo

    # --- overhead: shards=1 serial vs the classic unsharded solver ------ #
    # Interleaved A/B pairs so slow machine drift (thermal, noisy
    # neighbours) hits both sides equally instead of biasing the ratio.
    unsharded_total = unsharded_iterate = float("inf")
    one_total = one_iterate = float("inf")
    for _ in range(repeats + 2):
        out = dpar2(dense, config())
        unsharded_total = min(unsharded_total, out.total_seconds)
        unsharded_iterate = min(unsharded_iterate, out.iterate_seconds)
        out = dpar2(dense, config(1, "serial"))
        one_total = min(one_total, out.total_seconds)
        one_iterate = min(one_iterate, out.iterate_seconds)
    record["unsharded_total_seconds"] = unsharded_total
    record["unsharded_iterate_seconds"] = unsharded_iterate
    record["shards1_serial_total_seconds"] = one_total
    record["shards1_serial_iterate_seconds"] = one_iterate
    record["shards1_overhead_ratio"] = one_total / unsharded_total

    # --- scaling: process backend across shard counts (ungated) -------- #
    scaling = {}
    for shards in shard_counts:
        total, iterate, result = _best_total(
            lambda: dpar2(dense, config(shards, "process")), repeats
        )
        sharding = result.stats["sharding"]
        scaling[str(shards)] = {
            "total_seconds": total,
            "iterate_seconds": iterate,
            "allreduce_bytes_per_sweep": sharding["allreduce_bytes_per_sweep"],
            "allreduce_bytes_per_sweep_per_shard": sharding[
                "allreduce_bytes_per_sweep_per_shard"
            ],
            "imbalance": sharding["imbalance"],
        }
    record["process_scaling"] = scaling
    base = scaling[str(shard_counts[0])]["iterate_seconds"]
    record["iterate_speedup_4_shards"] = (
        base / scaling["4"]["iterate_seconds"] if "4" in scaling else None
    )
    return record


_CALL_SITES = (
    "startup", "bind", "sweep_phase1", "sweep_phase2", "sweep_phase3", "finalize",
)
_REPLY_SITES = ("sweep_phase2", "finalize")
_INJECT_CALL_TIMEOUT = "2.0"  # seconds; turns injected hangs into fast respawns


def run_inject_bench(
    *,
    max_rows: int = 300,
    n_columns: int = 24,
    n_slices: int = 8,
    rank: int = 6,
    sweeps: int = 3,
    seed: int = 0,
) -> dict:
    """Run the fault-injection matrix; returns the ``fault_injection`` record.

    A small 2-shard process-backend fixture is solved once clean for a
    baseline digest, then once per fault case: {crash, hang} at every
    shard call site and a corrupted reply blob at representative reply
    sites, always on shard 1, first occurrence, first generation.  Every
    case must recover (respawn + replay) to the bitwise-identical
    factors.  ``REPRO_SHARD_CALL_TIMEOUT`` is pinned low for the run so
    hang detection fires in seconds rather than the production default.
    """
    from repro.data.synthetic import irregular_scalability_tensor
    from repro.decomposition.dpar2 import dpar2
    from repro.util import faults
    from repro.util.config import DecompositionConfig

    tensor = irregular_scalability_tensor(
        max_rows, n_columns, n_slices, min_rows=max_rows // 10,
        random_state=seed,
    )
    config = DecompositionConfig(
        rank=rank, max_iterations=sweeps, tolerance=0.0, random_state=seed,
        shards=2, shard_backend="process",
    )

    cases = [
        (f"shard.call.{site}", kind)
        for site in _CALL_SITES
        for kind in ("crash", "hang")
    ]
    cases += [(f"shard.reply.{site}", "corrupt") for site in _REPLY_SITES]

    record: dict = {
        "fixture": {
            "max_rows": max_rows, "n_columns": n_columns,
            "n_slices": n_slices, "rank": rank, "sweeps": sweeps,
            "shards": 2, "call_timeout": float(_INJECT_CALL_TIMEOUT),
        },
        "cases": {},
    }
    previous_timeout = os.environ.get("REPRO_SHARD_CALL_TIMEOUT")
    os.environ["REPRO_SHARD_CALL_TIMEOUT"] = _INJECT_CALL_TIMEOUT
    try:
        baseline = factor_sha256(dpar2(tensor, config))
        record["baseline_sha256"] = baseline
        for site, kind in cases:
            plan = faults.FaultPlan(
                specs=(faults.FaultSpec(site=site, kind=kind, shard=1),)
            )
            started = time.perf_counter()
            with faults.injected(plan):
                result = dpar2(tensor, config)
            sharding = result.stats["sharding"]
            record["cases"][f"{site}:{kind}"] = {
                "sha_matches_baseline": factor_sha256(result) == baseline,
                "worker_restarts": sharding["worker_restarts"],
                "seconds": time.perf_counter() - started,
            }
    finally:
        if previous_timeout is None:
            os.environ.pop("REPRO_SHARD_CALL_TIMEOUT", None)
        else:
            os.environ["REPRO_SHARD_CALL_TIMEOUT"] = previous_timeout
    return record


def check_inject_record(record: dict) -> list[str]:
    """Gates for the fault matrix; returns failure messages."""
    failures = []
    for case_name, case in record["cases"].items():
        if not case["sha_matches_baseline"]:
            failures.append(
                f"{case_name}: recovered factors differ from the no-fault "
                f"baseline — respawn-and-replay is not bitwise"
            )
        if case["worker_restarts"] < 1:
            failures.append(
                f"{case_name}: no worker restart recorded — the fault was "
                f"not detected (or not injected)"
            )
    return failures


def allreduce_bound_bytes(rank: int, shards: int, cells: int) -> float:
    """Explicit per-sweep traffic ceiling — no K, no row counts.

    Per sweep the coordinator broadcasts a handful of ``R x Rc`` / ``R x R``
    matrices to each shard and receives a few per cell; with ``Rc = R + 5``
    (stage-2 keeps the target rank, so ``Rc = R`` here, but the bound
    allows the oversampled worst case) a slack factor of 4 covers pickling
    framing and the scalar criterion partials.
    """
    rc = rank + 5
    per_shard_send = 8 * (3 * rc * rank + 4 * rank * rank)
    per_cell_recv = 8 * (2 * rank * rank + rc * rank)
    return 4.0 * (shards * per_shard_send + cells * per_cell_recv)


def check_record(record: dict, max_overhead: float) -> list[str]:
    """Machine-independent gates; returns failure messages."""
    failures = []
    for combo_name, combo in record["combos"].items():
        digests = set(combo["factor_sha256"].values())
        if len(digests) != 1:
            failures.append(
                f"{combo_name}: factors differ across shard counts "
                f"{sorted(combo['factor_sha256'])} — the shard-count "
                f"invariance contract is broken"
            )
        bound = allreduce_bound_bytes(
            record["rank"], max(record["shard_counts"]), combo["cells"]
        )
        if combo["allreduce_bytes_per_sweep"] > bound:
            failures.append(
                f"{combo_name}: allreduce {combo['allreduce_bytes_per_sweep']:.0f} "
                f"B/sweep exceeds the O(R·Rc) bound {bound:.0f} — sweep "
                f"traffic must not scale with the data"
            )
    ratio = record["shards1_overhead_ratio"]
    if ratio > max_overhead:
        failures.append(
            f"shards=1 serial total {ratio:.3f}x the unsharded solver "
            f"(allowed {max_overhead:.2f}x) — coordinator bookkeeping "
            f"regressed"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Sharded DPar2: invariance gate + allreduce accounting"
    )
    parser.add_argument("--json", metavar="PATH",
                        help="write the measurement record to this file")
    parser.add_argument("--check", action="store_true",
                        help="enforce the machine-independent gates")
    parser.add_argument("--max-overhead", type=float, default=1.10,
                        help="allowed shards=1 total-seconds ratio over the "
                        "unsharded solver (default: 1.10)")
    parser.add_argument("--inject", action="store_true",
                        help="also run the fault-injection matrix (crash/hang "
                        "at every shard call site + corrupt replies) and "
                        "record bitwise recovery")
    parser.add_argument("--inject-only", action="store_true",
                        help="run only the fault-injection matrix (implies "
                        "--inject; skips the timing/invariance bench)")
    parser.add_argument("--max-rows", type=int, default=4000)
    parser.add_argument("--columns", type=int, default=128)
    parser.add_argument("--slices", type=int, default=64)
    parser.add_argument("--rank", type=int, default=24)
    parser.add_argument("--sweeps", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)

    start = time.perf_counter()
    if args.inject_only:
        record = {"schema_version": 1, "platform": platform.platform()}
    else:
        record = run_shard_bench(
            max_rows=args.max_rows, n_columns=args.columns,
            n_slices=args.slices, rank=args.rank, sweeps=args.sweeps,
            repeats=args.repeats,
        )
        print(f"fixture : K={record['n_slices']} skewed slices "
              f"(<= {record['max_rows']} rows), J={record['n_columns']}, "
              f"rank {record['rank']}, {record['sweeps']} sweeps, "
              f"{record['usable_cores']} usable cores")
        for combo_name, combo in record["combos"].items():
            invariant = len(set(combo["factor_sha256"].values())) == 1
            print(f"{combo_name:>15}: shards {record['shard_counts']} "
                  f"{'invariant' if invariant else 'DIVERGED'}, "
                  f"allreduce {combo['allreduce_bytes_per_sweep']:.0f} B/sweep, "
                  f"imbalance {combo['imbalance']:.2f}")
        print(f"overhead: shards=1 serial "
              f"{record['shards1_overhead_ratio']:.3f}x unsharded "
              f"({record['shards1_serial_total_seconds']:.3f}s vs "
              f"{record['unsharded_total_seconds']:.3f}s)")
        for shards, row in record["process_scaling"].items():
            print(f"process x{shards}: iterate {row['iterate_seconds']:.4f}s "
                  f"total {row['total_seconds']:.3f}s "
                  f"({row['allreduce_bytes_per_sweep_per_shard']:.0f} "
                  f"B/sweep/shard)")
        if record["iterate_speedup_4_shards"] is not None:
            print(f"speedup : 4-shard iterate "
                  f"{record['iterate_speedup_4_shards']:.2f}x (ungated)")

    if args.inject or args.inject_only:
        inject = run_inject_bench()
        record["fault_injection"] = inject
        for case_name, case in inject["cases"].items():
            verdict = "recovered" if case["sha_matches_baseline"] else "DIVERGED"
            print(f"inject {case_name:>35}: {verdict} bitwise, "
                  f"{case['worker_restarts']} restart(s), "
                  f"{case['seconds']:.2f}s")
    print(f"bench wall-clock {time.perf_counter() - start:.1f}s")

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(record, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if args.check:
        failures = []
        if "combos" in record:
            failures += check_record(record, args.max_overhead)
        if "fault_injection" in record:
            failures += check_inject_record(record["fault_injection"])
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        if failures:
            return 1
        gates = []
        if "combos" in record:
            gates.append(f"invariance + allreduce bound + "
                         f"<= {args.max_overhead:.2f}x overhead")
        if "fault_injection" in record:
            gates.append("bitwise fault recovery")
        print(f"shard gate ok ({', '.join(gates)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
