"""Ablation — compressed convergence criterion vs exact reconstruction error.

Section III-E replaces the O(sum Ik J R) exact error with an O(JR^2 + KR^3)
surrogate.  The exact-criterion variant (``exact_convergence=True``) is the
ablation: same factors, much slower sweeps — RD-ALS's handicap, grafted
onto DPar2.
"""

import pytest

from repro.decomposition.dpar2 import compress_tensor, dpar2


@pytest.fixture(scope="module")
def compressed_audio(audio_tensor):
    return compress_tensor(audio_tensor, 10, random_state=0)


@pytest.mark.parametrize("exact", [False, True],
                         ids=["compressed_criterion", "exact_criterion"])
def test_iteration_cost_by_criterion(benchmark, audio_tensor, bench_config,
                                     compressed_audio, exact):
    result = benchmark(
        dpar2, audio_tensor, bench_config,
        compressed=compressed_audio, exact_convergence=exact,
    )
    assert result.n_iterations == bench_config.max_iterations


def test_criteria_agree_on_low_rank_data(structured_tensor, bench_config):
    """On well-compressed data the two criteria track each other closely."""
    compressed = compress_tensor(structured_tensor, 10, random_state=0)
    fast = dpar2(structured_tensor, bench_config, compressed=compressed)
    exact = dpar2(structured_tensor, bench_config, compressed=compressed,
                  exact_convergence=True)
    assert fast.history[-1].criterion == pytest.approx(
        exact.history[-1].criterion, rel=0.2
    )
