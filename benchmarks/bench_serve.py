"""Serving benchmark: query latency and micro-batching throughput.

Trains a small model, publishes it to a throwaway registry, starts the
asyncio service in a thread, and measures:

* **engine-level** batched vs unbatched similar-query throughput (the
  kernel-side win: one contraction for B queries vs B contractions);
* **HTTP p50/p99** latency of sequential similar queries;
* **HTTP throughput** under concurrent load with micro-batching enabled vs
  disabled (window 0) — the service-side win.

Every response is asserted against direct QueryEngine answers along the
way, so this script doubles as the end-to-end serving smoke: train →
publish → serve → similar/reconstruct/fold-in/anomaly → hot-swap reload.

Usage::

    python benchmarks/bench_serve.py --json BENCH_serve.json

The record is informational for now (no CI gate yet — first PR of the
subsystem; gate once runner variance is known).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.decomposition.dpar2 import dpar2  # noqa: E402
from repro.serve.queries import QueryEngine  # noqa: E402
from repro.serve.service import start_server_in_thread  # noqa: E402
from repro.serve.store import FactorStore  # noqa: E402
from repro.tensor.random import low_rank_irregular_tensor  # noqa: E402
from repro.util.config import DecompositionConfig  # noqa: E402

SCHEMA_VERSION = 1


def _http(base_url: str, method: str, path: str, body=None, timeout=30):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(base_url + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _assert(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(f"serving smoke failed: {message}")


def build_registry(root: str, *, n_slices: int, n_columns: int, rank: int,
                   seed: int) -> tuple[FactorStore, QueryEngine, object]:
    rng = np.random.default_rng(seed)
    row_counts = rng.integers(40, 90, size=n_slices).tolist()
    tensor = low_rank_irregular_tensor(
        row_counts, n_columns=n_columns, rank=rank, noise=0.05,
        random_state=seed,
    )
    config = DecompositionConfig(rank=rank, max_iterations=12, random_state=seed)
    result = dpar2(tensor, config)
    store = FactorStore(root)
    store.publish(result, config=config, extra={"dataset": "bench_serve"})
    artifact = store.latest()
    engine = QueryEngine(artifact.result, config=artifact.config,
                         version=artifact.version)
    return store, engine, tensor


def bench_engine(engine: QueryEngine, *, batch: int, repeats: int) -> dict:
    """Kernel-side batched vs unbatched similar-query throughput."""
    indices = [i % engine.n_slices for i in range(batch)]
    unbatched_best = batched_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        singles = [engine.similar([i], k=10) for i in indices]
        unbatched_best = min(unbatched_best, time.perf_counter() - start)
        start = time.perf_counter()
        neighbors, scores = engine.similar(indices, k=10)
        batched_best = min(batched_best, time.perf_counter() - start)
    for row, (n1, s1) in enumerate(singles):
        _assert(np.array_equal(neighbors[row], n1[0]), "batched != single neighbors")
        _assert(np.array_equal(scores[row], s1[0]), "batched != single scores")
    return {
        "batch": batch,
        "unbatched_qps": batch / unbatched_best,
        "batched_qps": batch / batched_best,
        "kernel_speedup": unbatched_best / batched_best,
    }


def bench_http_latency(base_url: str, engine: QueryEngine, *, requests: int) -> dict:
    latencies = []
    for i in range(requests):
        index = i % engine.n_slices
        start = time.perf_counter()
        body = _http(base_url, "POST", "/v1/similar", {"index": index, "k": 10})
        latencies.append((time.perf_counter() - start) * 1000.0)
        if i < engine.n_slices:  # correctness spot-check, first pass only
            n1, s1 = engine.similar([index], k=10)
            _assert(
                [n["index"] for n in body["neighbors"]] == n1[0].tolist()
                and [n["score"] for n in body["neighbors"]] == s1[0].tolist(),
                f"HTTP similar({index}) != engine answer",
            )
    latencies.sort()
    return {
        "requests": requests,
        "p50_ms": statistics.median(latencies),
        "p99_ms": latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))],
    }


def bench_http_concurrent(store: FactorStore, *, window: float, requests: int,
                          threads: int) -> dict:
    with start_server_in_thread(store, batch_window=window, max_batch=64) as handle:
        errors: list[Exception] = []

        def worker(count: int) -> None:
            try:
                for i in range(count):
                    _http(handle.base_url, "POST", "/v1/similar",
                          {"index": i % 7, "k": 10})
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        per_thread = requests // threads
        pool = [threading.Thread(target=worker, args=(per_thread,))
                for _ in range(threads)]
        start = time.perf_counter()
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        elapsed = time.perf_counter() - start
        _assert(not errors, f"concurrent requests failed: {errors[:1]}")
        health = _http(handle.base_url, "GET", "/healthz")
    served = per_thread * threads
    return {
        "window_ms": window * 1000.0,
        "threads": threads,
        "requests": served,
        "rps": served / elapsed,
        "kernel_batches": health["batches"],
        "batched_requests": health["batched_requests"],
    }


def smoke_endpoints(store: FactorStore, engine: QueryEngine, tensor) -> None:
    """similar / reconstruct / fold-in / anomaly / hot-swap, asserted."""
    with start_server_in_thread(store, poll_interval=0.0) as handle:
        model = _http(handle.base_url, "GET", "/v1/model")
        _assert(model["rank"] == engine.rank, "model card rank mismatch")

        rec = _http(handle.base_url, "POST", "/v1/reconstruct",
                    {"slice": 0, "rows": [0, 1]})
        _assert(
            np.allclose(rec["values"], engine.reconstruct(0, rows=[0, 1])),
            "reconstruct mismatch",
        )

        X = np.asarray(tensor[1], dtype=np.float64)
        fold = _http(handle.base_url, "POST", "/v1/fold-in",
                     {"slice": X.tolist(), "seed": 2, "neighbors": 3})
        offline = engine.fold_in(X, seed=2)
        _assert(fold["weights"] == offline.weights.tolist(), "fold-in mismatch")
        _assert(fold["neighbors"][0]["index"] == 1,
                "fold-in of a training slice should rank itself first")

        anomaly = _http(handle.base_url, "POST", "/v1/anomaly",
                        {"slice": X.tolist(), "seed": 2})
        _assert(anomaly["score"] == offline.relative_residual, "anomaly mismatch")

        # Publish v2 mid-flight and hot-swap via the admin endpoint.
        v2 = store.publish(engine.result, config=engine.config)
        reload_reply = _http(handle.base_url, "POST", "/admin/reload", {})
        _assert(reload_reply == {"version": v2, "swapped": True}, "hot swap failed")
        pinned = _http(handle.base_url, "POST", "/v1/similar",
                       {"index": 0, "k": 2, "version": 1})
        _assert(pinned["version"] == 1, "pinned v1 query failed after swap")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the benchmark record here")
    parser.add_argument("--requests", type=int, default=200,
                        help="sequential HTTP requests for the latency axis")
    parser.add_argument("--concurrent-requests", type=int, default=240)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--batch", type=int, default=64,
                        help="engine-level batch size")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as root:
        store, engine, tensor = build_registry(
            root, n_slices=60, n_columns=32, rank=8, seed=args.seed
        )
        print(f"registry: {store}")

        smoke_endpoints(store, engine, tensor)
        print("smoke   : similar/reconstruct/fold-in/anomaly/hot-swap OK")

        kernel = bench_engine(engine, batch=args.batch, repeats=args.repeats)
        print(f"engine  : {kernel['unbatched_qps']:,.0f} q/s unbatched -> "
              f"{kernel['batched_qps']:,.0f} q/s batched "
              f"({kernel['kernel_speedup']:.1f}x)")

        # window=0: sequential latency measures the per-request floor, not
        # the batching window a lone request would otherwise sit out.
        with start_server_in_thread(store, batch_window=0.0) as handle:
            latency = bench_http_latency(
                handle.base_url, engine, requests=args.requests
            )
        print(f"latency : p50 {latency['p50_ms']:.2f} ms, "
              f"p99 {latency['p99_ms']:.2f} ms over {latency['requests']} requests")

        unbatched = bench_http_concurrent(
            store, window=0.0, requests=args.concurrent_requests,
            threads=args.threads,
        )
        batched = bench_http_concurrent(
            store, window=0.002, requests=args.concurrent_requests,
            threads=args.threads,
        )
        _assert(
            batched["kernel_batches"] < batched["batched_requests"],
            "micro-batching never coalesced anything under concurrent load",
        )
        print(f"http    : {unbatched['rps']:,.0f} req/s window=0 vs "
              f"{batched['rps']:,.0f} req/s window=2ms "
              f"({batched['kernel_batches']} kernel calls for "
              f"{batched['batched_requests']} requests)")

    if args.json:
        record = {
            "schema_version": SCHEMA_VERSION,
            "params": {
                "n_slices": 60, "n_columns": 32, "rank": 8,
                "requests": args.requests,
                "concurrent_requests": args.concurrent_requests,
                "threads": args.threads, "batch": args.batch,
                "repeats": args.repeats, "seed": args.seed,
            },
            "engine": kernel,
            "latency": latency,
            "http_unbatched": unbatched,
            "http_batched": batched,
        }
        Path(args.json).write_text(json.dumps(record, indent=1) + "\n")
        print(f"record  : {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
