"""Serving benchmark: query latency and adaptive micro-batching throughput.

Trains a small model, publishes it to a throwaway registry, starts the
asyncio service in a thread, and measures over keep-alive connections:

* **engine-level** batched vs unbatched similar-query throughput (the
  kernel-side win: one contraction for B queries vs B contractions);
* **HTTP p50/p99** latency of sequential similar queries, against both a
  coalescing-free server (``max_batch=1``) and the default adaptive
  transport — a quiet adaptive server must cost ~nothing extra;
* **HTTP throughput** under concurrent load with micro-batching enabled
  (adaptive window) vs disabled (``max_batch=1``) — the service-side win.

Every response is asserted against direct QueryEngine answers along the
way, so this script doubles as the end-to-end serving smoke: train →
publish → serve → similar/reconstruct/fold-in/anomaly → hot-swap reload.

Usage::

    python benchmarks/bench_serve.py --json BENCH_serve.json \\
        --check benchmarks/baselines/bench_serve_baseline.json

``--check`` exits non-zero when the record regresses against the committed
baseline (p99 latency above ``--max-regression`` times the baseline, rps
below baseline divided by it) or when a machine-independent invariant
breaks: batched throughput must be at least unbatched throughput, the
idle-path adaptive p50 must stay within 10% of the coalescing-free p50,
and concurrent load must actually coalesce kernel calls.  Schema v2
(schema v1 records predate keep-alive and the adaptive window; the
workload check refuses them).  See docs/benchmarks.md for the field
reference and baseline re-record procedure.
"""

from __future__ import annotations

import argparse
import http.client
import json
import platform
import statistics
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.decomposition.dpar2 import dpar2  # noqa: E402
from repro.serve.queries import QueryEngine  # noqa: E402
from repro.serve.service import start_server_in_thread  # noqa: E402
from repro.serve.store import FactorStore  # noqa: E402
from repro.tensor.random import low_rank_irregular_tensor  # noqa: E402
from repro.util.config import DecompositionConfig  # noqa: E402

#: v3 adds the ``metrics`` registry snapshot of the adaptive server; the
#: gate math is unchanged, so v2 baselines still check cleanly.
SCHEMA_VERSION = 3

_JSON_HEADERS = {"Content-Type": "application/json"}


def _http(base_url: str, method: str, path: str, body=None, timeout=30):
    """One-shot request (urllib sends ``Connection: close``) for smokes."""
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(base_url + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


class _Client:
    """A persistent keep-alive connection to the served port."""

    def __init__(self, port: int, timeout: float = 30.0) -> None:
        self._conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)

    def request(self, method: str, path: str, body: "bytes | None" = None) -> dict:
        self._conn.request(
            method, path, body=body, headers=_JSON_HEADERS if body else {}
        )
        response = self._conn.getresponse()
        payload = response.read()
        if response.status != 200:
            raise AssertionError(
                f"{method} {path} -> HTTP {response.status}: {payload[:200]!r}"
            )
        return json.loads(payload)

    def close(self) -> None:
        self._conn.close()


def _assert(condition: bool, message: str) -> None:
    if not condition:
        raise AssertionError(f"serving smoke failed: {message}")


def build_registry(root: str, *, n_slices: int, n_columns: int, rank: int,
                   seed: int) -> tuple[FactorStore, QueryEngine, object]:
    rng = np.random.default_rng(seed)
    row_counts = rng.integers(40, 90, size=n_slices).tolist()
    tensor = low_rank_irregular_tensor(
        row_counts, n_columns=n_columns, rank=rank, noise=0.05,
        random_state=seed,
    )
    config = DecompositionConfig(rank=rank, max_iterations=12, random_state=seed)
    result = dpar2(tensor, config)
    store = FactorStore(root)
    store.publish(result, config=config, extra={"dataset": "bench_serve"})
    artifact = store.latest()
    engine = QueryEngine(artifact.result, config=artifact.config,
                         version=artifact.version)
    return store, engine, tensor


def bench_engine(engine: QueryEngine, *, batch: int, repeats: int) -> dict:
    """Kernel-side batched vs unbatched similar-query throughput."""
    indices = [i % engine.n_slices for i in range(batch)]
    unbatched_best = batched_best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        singles = [engine.similar([i], k=10) for i in indices]
        unbatched_best = min(unbatched_best, time.perf_counter() - start)
        start = time.perf_counter()
        neighbors, scores = engine.similar(indices, k=10)
        batched_best = min(batched_best, time.perf_counter() - start)
    for row, (n1, s1) in enumerate(singles):
        _assert(np.array_equal(neighbors[row], n1[0]), "batched != single neighbors")
        _assert(np.array_equal(scores[row], s1[0]), "batched != single scores")
    return {
        "batch": batch,
        "unbatched_qps": batch / unbatched_best,
        "batched_qps": batch / batched_best,
        "kernel_speedup": unbatched_best / batched_best,
    }


def _percentiles(latencies: list[float], requests: int) -> dict:
    latencies = sorted(latencies)
    return {
        "requests": requests,
        "p50_ms": statistics.median(latencies),
        "p99_ms": latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))],
    }


def bench_http_latency(store: FactorStore, engine: QueryEngine, *,
                       requests: int) -> tuple[dict, dict]:
    """Sequential p50/p99 over keep-alive connections (+ answer checks).

    Returns ``(unbatched, adaptive)``; as with the throughput axis, both
    servers run for the whole measurement and requests alternate between
    them so noise cannot bias one side.  The gate compares their p50s —
    the adaptive window must cost a quiet server ~nothing.
    """
    with start_server_in_thread(store, batch_window=0.0, max_batch=1) as plain:
        with start_server_in_thread(store) as adaptive:  # default transport
            clients = {
                "unbatched": _Client(plain.port),
                "adaptive": _Client(adaptive.port),
            }
            latencies: dict[str, list[float]] = {"unbatched": [], "adaptive": []}
            try:
                for i in range(requests):
                    index = i % engine.n_slices
                    payload = json.dumps({"index": index, "k": 10}).encode()
                    for label, client in clients.items():
                        start = time.perf_counter()
                        body = client.request("POST", "/v1/similar", payload)
                        latencies[label].append(
                            (time.perf_counter() - start) * 1000.0
                        )
                    if i < engine.n_slices:  # correctness check, first pass
                        n1, s1 = engine.similar([index], k=10)
                        _assert(
                            [n["index"] for n in body["neighbors"]]
                            == n1[0].tolist()
                            and [n["score"] for n in body["neighbors"]]
                            == s1[0].tolist(),
                            f"HTTP similar({index}) != engine answer",
                        )
            finally:
                for client in clients.values():
                    client.close()
    return (
        _percentiles(latencies["unbatched"], requests),
        _percentiles(latencies["adaptive"], requests),
    )


def _concurrent_round(port: int, bodies: list[bytes], *, per_thread: int,
                      threads: int) -> float:
    """One load round: `threads` keep-alive clients, wall-clock seconds."""
    errors: list[Exception] = []

    def worker(count: int) -> None:
        client = _Client(port)
        try:
            for i in range(count):
                client.request("POST", "/v1/similar", bodies[i % len(bodies)])
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)
        finally:
            client.close()

    pool = [threading.Thread(target=worker, args=(per_thread,))
            for _ in range(threads)]
    start = time.perf_counter()
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    elapsed = time.perf_counter() - start
    _assert(not errors, f"concurrent requests failed: {errors[:1]}")
    return elapsed


def bench_http_concurrent(store: FactorStore, *, requests: int,
                          threads: int, repeats: int) -> tuple[dict, dict, dict]:
    """Throughput of `threads` keep-alive clients hammering ``/v1/similar``.

    Returns ``(unbatched, batched, metrics)``, where ``metrics`` is the
    adaptive server's registry snapshot taken after the measurement (the
    ``repro_serve_*`` counter state the run produced).
    The unbatched server runs with
    ``max_batch=1`` — every request its own kernel call, the true
    coalescing-free reference — the batched one with the default adaptive
    transport.  Both servers are up for the whole measurement and the
    rounds interleave (unbatched, batched, unbatched, ...), so machine
    noise lands on both configurations instead of biasing whichever
    happened to run during the quiet minute.  Best-of-``repeats`` each.
    """
    bodies = [json.dumps({"index": i, "k": 10}).encode() for i in range(7)]
    per_thread = requests // threads
    served = per_thread * threads
    best = {"unbatched": float("inf"), "batched": float("inf")}
    with start_server_in_thread(store, batch_window=0.0, max_batch=1) as plain:
        with start_server_in_thread(store) as adaptive:  # default transport
            for _ in range(repeats):
                for label, handle in (("unbatched", plain),
                                      ("batched", adaptive)):
                    elapsed = _concurrent_round(
                        handle.port, bodies,
                        per_thread=per_thread, threads=threads,
                    )
                    best[label] = min(best[label], elapsed)
            stats = {
                label: _http(handle.base_url, "GET", "/healthz")
                for label, handle in (("unbatched", plain),
                                      ("batched", adaptive))
            }
            metrics_snapshot = adaptive.app.metrics.snapshot()

    def record(label: str, window_ms: float, max_batch: int) -> dict:
        return {
            "batching": label == "batched",
            "window_ms": window_ms,
            "max_batch": max_batch,
            "threads": threads,
            "requests": served,
            "repeats": repeats,
            "rps": served / best[label],
            "kernel_batches": stats[label]["batches"],
            "batched_requests": stats[label]["batched_requests"],
        }

    return record("unbatched", 0.0, 1), record("batched", 2.0, 64), metrics_snapshot


def smoke_endpoints(store: FactorStore, engine: QueryEngine, tensor) -> None:
    """similar / reconstruct / fold-in / anomaly / hot-swap, asserted."""
    with start_server_in_thread(store, poll_interval=0.0) as handle:
        model = _http(handle.base_url, "GET", "/v1/model")
        _assert(model["rank"] == engine.rank, "model card rank mismatch")

        rec = _http(handle.base_url, "POST", "/v1/reconstruct",
                    {"slice": 0, "rows": [0, 1]})
        _assert(
            np.allclose(rec["values"], engine.reconstruct(0, rows=[0, 1])),
            "reconstruct mismatch",
        )

        X = np.asarray(tensor[1], dtype=np.float64)
        fold = _http(handle.base_url, "POST", "/v1/fold-in",
                     {"slice": X.tolist(), "seed": 2, "neighbors": 3})
        offline = engine.fold_in(X, seed=2)
        _assert(fold["weights"] == offline.weights.tolist(), "fold-in mismatch")
        _assert(fold["neighbors"][0]["index"] == 1,
                "fold-in of a training slice should rank itself first")

        anomaly = _http(handle.base_url, "POST", "/v1/anomaly",
                        {"slice": X.tolist(), "seed": 2})
        _assert(anomaly["score"] == offline.relative_residual, "anomaly mismatch")

        health = _http(handle.base_url, "GET", "/healthz")
        _assert(health["batching"]["fold_in"]["requests"] == 2,
                "fold-in/anomaly did not route through the fold batcher")

        with urllib.request.urlopen(handle.base_url + "/metrics",
                                    timeout=30) as response:
            _assert(response.headers["Content-Type"].startswith("text/plain"),
                    "/metrics served the wrong content type")
            exposition = response.read().decode()
        _assert('repro_serve_batched_requests_total{batcher="fold_in"} 2'
                in exposition, "/metrics disagrees with /healthz counters")
        _assert("repro_serve_request_seconds_bucket" in exposition,
                "/metrics is missing histogram buckets")

        # Publish v2 mid-flight and hot-swap via the admin endpoint.
        v2 = store.publish(engine.result, config=engine.config)
        reload_reply = _http(handle.base_url, "POST", "/admin/reload", {})
        _assert(reload_reply["version"] == v2 and reload_reply["swapped"],
                "hot swap failed")
        _assert(reload_reply["quarantined"] == {}, "unexpected quarantine")
        pinned = _http(handle.base_url, "POST", "/v1/similar",
                       {"index": 0, "k": 2, "version": 1})
        _assert(pinned["version"] == 1, "pinned v1 query failed after swap")


def check_against_baseline(
    record: dict, baseline: dict, max_regression: float
) -> list[str]:
    """Return failure messages for the serving gates.

    Two layers, mirroring bench_kernels: machine-independent invariants
    checked on the record alone (batched rps at least unbatched rps; idle
    adaptive p50 within 10% of the coalescing-free p50; concurrent load
    actually coalescing), and relative regressions against the committed
    baseline (p99 latency up, or rps down, beyond ``max_regression``).
    A baseline recorded for a different workload (or the pre-keep-alive
    schema v1) refuses the comparison instead of misreading it.
    """
    failures = []
    base_schema = baseline.get("schema_version") or 0
    # Older-but-compatible baselines (v2, pre-metrics-snapshot) still
    # compare — the gate only reads fields both schemas carry.  v1
    # predates keep-alive, and a baseline *newer* than the record means
    # the checkout is older than the baseline; both refuse.
    if base_schema < 2 or base_schema > record.get("schema_version", 0):
        failures.append(
            f"baseline schema v{baseline.get('schema_version')} not comparable "
            f"with record schema v{record.get('schema_version')} — re-record "
            "the baseline (see docs/benchmarks.md)"
        )
        return failures
    base_params = baseline.get("params", {})
    params = record.get("params", {})
    for key in ("n_slices", "n_columns", "rank", "requests",
                "concurrent_requests", "threads", "batch"):
        if key in base_params and base_params[key] != params.get(key):
            failures.append(
                f"workload mismatch on {key}: ran {params.get(key)} but "
                f"baseline recorded {base_params[key]} — not comparable"
            )
    if failures:
        return failures

    # Machine-independent invariants: these hold on any runner, or the
    # transport has regressed in kind, not just in degree.
    batched = record["http_batched"]
    unbatched = record["http_unbatched"]
    if batched["rps"] < unbatched["rps"]:
        failures.append(
            f"batched throughput below unbatched "
            f"({batched['rps']:.0f} < {unbatched['rps']:.0f} rps): "
            "micro-batching is a net loss again"
        )
    if batched["kernel_batches"] >= batched["batched_requests"]:
        failures.append(
            f"micro-batching never coalesced under concurrent load "
            f"({batched['kernel_batches']} kernel calls for "
            f"{batched['batched_requests']} requests)"
        )
    idle = record["latency_adaptive"]["p50_ms"]
    floor = record["latency_unbatched"]["p50_ms"]
    if idle > 1.10 * floor:
        failures.append(
            f"idle-path p50 {idle:.3f} ms exceeds 110% of the coalescing-free "
            f"p50 {floor:.3f} ms: the adaptive window is taxing quiet traffic"
        )
    speedup = record["engine"]["kernel_speedup"]
    if speedup < 2.0:
        failures.append(
            f"kernel-side batching speedup {speedup:.2f}x below 2x — "
            "batched similar lost its advantage"
        )

    # Relative gates against the committed baseline.
    for section, metric, direction in (
        ("latency_unbatched", "p99_ms", "up"),
        ("latency_adaptive", "p99_ms", "up"),
        ("http_unbatched", "rps", "down"),
        ("http_batched", "rps", "down"),
    ):
        base = baseline.get(section, {}).get(metric)
        current = record.get(section, {}).get(metric)
        if base is None or base <= 0 or current is None:
            continue
        if direction == "up" and current > base * max_regression:
            failures.append(
                f"{section}.{metric} regressed {current / base:.2f}x "
                f"({current:.3f} vs baseline {base:.3f}, "
                f"allowed {max_regression:.1f}x)"
            )
        if direction == "down" and current < base / max_regression:
            failures.append(
                f"{section}.{metric} dropped to {current / base:.2f}x of "
                f"baseline ({current:.0f} vs {base:.0f}, "
                f"allowed 1/{max_regression:.1f})"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the benchmark record here")
    parser.add_argument("--check", metavar="BASELINE", default=None,
                        help="baseline JSON to gate the record against")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="failure threshold as a factor over/under the "
                        "baseline (default: 2.0)")
    parser.add_argument("--requests", type=int, default=200,
                        help="sequential HTTP requests for the latency axis")
    parser.add_argument("--concurrent-requests", type=int, default=240)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--batch", type=int, default=64,
                        help="engine-level batch size")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as root:
        store, engine, tensor = build_registry(
            root, n_slices=60, n_columns=32, rank=8, seed=args.seed
        )
        print(f"registry: {store}")

        smoke_endpoints(store, engine, tensor)
        print("smoke   : similar/reconstruct/fold-in/anomaly/hot-swap OK")

        kernel = bench_engine(engine, batch=args.batch, repeats=args.repeats)
        print(f"engine  : {kernel['unbatched_qps']:,.0f} q/s unbatched -> "
              f"{kernel['batched_qps']:,.0f} q/s batched "
              f"({kernel['kernel_speedup']:.1f}x)")

        # Sequential latency over keep-alive connections: max_batch=1 is
        # the coalescing-free floor; the adaptive default must stay within
        # 10% of it at p50, because its window is ~0 on a quiet server.
        latency_unbatched, latency_adaptive = bench_http_latency(
            store, engine, requests=args.requests
        )
        print(f"latency : p50 {latency_unbatched['p50_ms']:.2f} ms / "
              f"p99 {latency_unbatched['p99_ms']:.2f} ms coalescing-free; "
              f"p50 {latency_adaptive['p50_ms']:.2f} ms / "
              f"p99 {latency_adaptive['p99_ms']:.2f} ms adaptive "
              f"({latency_unbatched['requests']} sequential requests)")

        unbatched, batched, metrics_snapshot = bench_http_concurrent(
            store, requests=args.concurrent_requests,
            threads=args.threads, repeats=args.repeats,
        )
        _assert(
            batched["kernel_batches"] < batched["batched_requests"],
            "micro-batching never coalesced anything under concurrent load",
        )
        print(f"http    : {unbatched['rps']:,.0f} req/s unbatched vs "
              f"{batched['rps']:,.0f} req/s adaptive-batched "
              f"({batched['rps'] / unbatched['rps']:.2f}x; "
              f"{batched['kernel_batches']} kernel calls for "
              f"{batched['batched_requests']} requests)")

    record = {
        "schema_version": SCHEMA_VERSION,
        "platform": platform.platform(),
        "params": {
            "n_slices": 60, "n_columns": 32, "rank": 8,
            "requests": args.requests,
            "concurrent_requests": args.concurrent_requests,
            "threads": args.threads, "batch": args.batch,
            "repeats": args.repeats, "seed": args.seed,
        },
        "engine": kernel,
        "latency_unbatched": latency_unbatched,
        "latency_adaptive": latency_adaptive,
        "http_unbatched": unbatched,
        "http_batched": batched,
        "metrics": metrics_snapshot,
    }
    if args.json:
        Path(args.json).write_text(json.dumps(record, indent=1) + "\n")
        print(f"record  : {args.json}")

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        failures = check_against_baseline(record, baseline, args.max_regression)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"gate    : ok (<= {args.max_regression:.1f}x baseline; "
              "batched >= unbatched rps; idle p50 within 10%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
