"""Fig. 9(b) — per-iteration cost of every method.

DPar2 iterates on O(KR^2) compressed factors; the competitors touch
slice-sized data every sweep (paper: DPar2 up to 10.3x faster/iteration).
Preprocessing is excluded by precomputing it outside the benchmark loop.
"""

import pytest

from repro.decomposition import dpar2, parafac2_als, rd_als, spartan
from repro.decomposition.dpar2 import compress_tensor

OTHERS = {
    "rd_als": rd_als,
    "parafac2_als": parafac2_als,
    "spartan": spartan,
}


def test_dpar2_iterations_only(benchmark, audio_tensor, bench_config):
    compressed = compress_tensor(
        audio_tensor,
        bench_config.rank,
        random_state=bench_config.random_state,
    )
    result = benchmark(
        dpar2, audio_tensor, bench_config, compressed=compressed
    )
    assert result.n_iterations == bench_config.max_iterations


@pytest.mark.parametrize("method", list(OTHERS))
def test_competitor_iterations(benchmark, audio_tensor, bench_config, method):
    # RD-ALS's preprocessing is part of its run; per-iteration dominance
    # still shows because max_iterations spreads it over 5 sweeps.
    result = benchmark(OTHERS[method], audio_tensor, bench_config)
    assert result.n_iterations == bench_config.max_iterations
