"""Table III — cost of the stock-similarity pipeline (kNN and RWR).

Builds the Eq.-(10) similarity matrix over the temporal factors and ranks
stocks both ways; both must be interactive-speed post-processing.
"""

import pytest

from repro.analysis.knn import top_k_neighbors
from repro.analysis.rwr import rwr_ranking
from repro.analysis.similarity import similarity_graph, similarity_matrix
from repro.data.stock import generate_market, standardize_features
from repro.decomposition.dpar2 import dpar2
from repro.util.config import DecompositionConfig


@pytest.fixture(scope="module")
def factors():
    market = generate_market(n_stocks=30, max_days=120, min_days=120,
                             random_state=0)
    tensor = standardize_features(market.tensor)
    result = dpar2(
        tensor,
        DecompositionConfig(rank=10, max_iterations=5, tolerance=0.0,
                            random_state=0),
    )
    return [result.U(k) for k in range(result.n_slices)]


def test_similarity_matrix(benchmark, factors):
    sims = benchmark(similarity_matrix, factors, 0.01)
    assert sims.shape == (30, 30)


def test_knn_ranking(benchmark, factors):
    sims = similarity_matrix(factors, gamma=0.01)
    out = benchmark(top_k_neighbors, sims, 0, 10)
    assert len(out) == 10


def test_rwr_ranking(benchmark, factors):
    adjacency = similarity_graph(factors, gamma=0.01)
    out = benchmark(rwr_ranking, adjacency, 0, 10)
    assert len(out) == 10
