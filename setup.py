"""Legacy setup shim: keeps ``pip install -e .`` working on environments
without the ``wheel`` package (offline PEP 660 builds need it)."""

from setuptools import setup

setup()
