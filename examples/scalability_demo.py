"""Scalability demo — miniature of the paper's Fig. 11 study.

Sweeps synthetic tensor sizes and target ranks, timing DPar2 against the
strongest baseline at each point, and prints the scaling table.

Run with:  python examples/scalability_demo.py
"""

from repro import DecompositionConfig
from repro.data.synthetic import scalability_tensor
from repro.experiments.harness import sweep_methods


def main() -> None:
    print("=== size sweep (rank 10) ===")
    print(f"{'shape':>14s} {'DPar2':>9s} {'best other':>11s} {'speedup':>8s}")
    for I, J, K in ((60, 60, 80), (90, 90, 120), (120, 120, 160), (150, 150, 220)):
        tensor = scalability_tensor(I, J, K, random_state=1)
        config = DecompositionConfig(
            rank=10, max_iterations=6, tolerance=0.0, random_state=1
        )
        measurements = sweep_methods(tensor, config)
        by_method = {m.method: m.total_seconds for m in measurements}
        ours = by_method.pop("dpar2")
        best_other = min(by_method.values())
        print(f"{I:>4d}x{J}x{K:<5d} {ours:9.3f} {best_other:11.3f} "
              f"{best_other / ours:7.1f}x")

    print("\n=== rank sweep (120x120x160) ===")
    tensor = scalability_tensor(120, 120, 160, random_state=1)
    print(f"{'rank':>5s} {'DPar2':>9s} {'best other':>11s} {'speedup':>8s}")
    for rank in (5, 10, 20, 30):
        config = DecompositionConfig(
            rank=rank, max_iterations=6, tolerance=0.0, random_state=1
        )
        measurements = sweep_methods(tensor, config)
        by_method = {m.method: m.total_seconds for m in measurements}
        ours = by_method.pop("dpar2")
        best_other = min(by_method.values())
        print(f"{rank:5d} {ours:9.3f} {best_other:11.3f} "
              f"{best_other / ours:7.1f}x")


if __name__ == "__main__":
    main()
