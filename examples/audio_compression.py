"""Audio-spectrogram compression — the FMA/Urban workload of the paper.

Synthesizes a corpus of harmonic clips, converts each to a log-power
spectrogram with the library's from-scratch STFT, and shows what DPar2's
two-stage compression does: storage shrinks by roughly J/R while the
decomposition's fitness stays close to the uncompressed baseline.

Run with:  python examples/audio_compression.py
"""

from repro import DecompositionConfig, compress_tensor, dpar2, parafac2_als
from repro.data.audio import generate_audio_tensor, log_power_spectrogram, synthesize_clip


def main() -> None:
    # One clip end to end, to show the preprocessing pipeline.
    clip = synthesize_clip(duration_samples=16_384, random_state=11)
    spectrogram = log_power_spectrogram(clip, n_fft=256, hop=128)
    print(f"one synthesized clip -> spectrogram {spectrogram.shape} "
          "(frames x frequency bins)")

    # A corpus of clips with different durations: the irregular tensor.
    tensor = generate_audio_tensor(
        n_clips=40, min_frames=30, max_frames=90, n_fft=512, random_state=11
    )
    print(f"corpus: {tensor}")

    rank = 10
    compressed = compress_tensor(tensor, rank, random_state=11)
    print(f"\ntwo-stage compression at rank {rank}:")
    print(f"  input size        : {tensor.nbytes / 1e6:8.2f} MB")
    print(f"  preprocessed size : {compressed.nbytes / 1e6:8.2f} MB "
          f"({compressed.compression_ratio(tensor):.1f}x smaller)")
    print(f"  compression time  : {compressed.seconds:.3f}s")

    config = DecompositionConfig(rank=rank, max_iterations=20, random_state=11)
    fast = dpar2(tensor, config, compressed=compressed)
    exact = parafac2_als(tensor, config)
    print(f"\nfitness: DPar2 {fast.fitness(tensor):.4f} vs "
          f"PARAFAC2-ALS {exact.fitness(tensor):.4f}")
    print(f"total time: DPar2 {fast.total_seconds:.2f}s vs "
          f"PARAFAC2-ALS {exact.total_seconds:.2f}s")
    print("\nthe common right factor V spans the corpus's shared spectral "
          f"templates: V {fast.V.shape} (frequency bins x rank)")


if __name__ == "__main__":
    main()
