"""Quickstart: decompose an irregular dense tensor with DPar2.

Builds a small irregular tensor with planted PARAFAC2 structure, fits all
four solvers, and compares running time and fitness — a miniature of the
paper's Fig. 1.

Run with:  python examples/quickstart.py
"""

from repro import DecompositionConfig, dpar2, parafac2_als, rd_als, spartan
from repro.tensor.random import low_rank_irregular_tensor


def main() -> None:
    # An irregular tensor: 30 slices, 50-250 rows each, 60 shared columns,
    # exact rank-8 PARAFAC2 structure plus 5% Gaussian noise.
    rng_seed = 7
    row_counts = [50 + 7 * (k % 30) for k in range(30)]
    tensor = low_rank_irregular_tensor(
        row_counts, n_columns=60, rank=8, noise=0.05, random_state=rng_seed
    )
    print(f"input: {tensor}")

    config = DecompositionConfig(rank=8, max_iterations=25, random_state=rng_seed)

    print(f"\n{'method':15s} {'fitness':>8s} {'total_s':>8s} {'iters':>6s}")
    for solver in (dpar2, rd_als, parafac2_als, spartan):
        result = solver(tensor, config)
        print(
            f"{result.method:15s} {result.fitness(tensor):8.4f} "
            f"{result.total_seconds:8.3f} {result.n_iterations:6d}"
        )

    # Inspect the DPar2 model: Uk = Qk H is the temporal factor of slice k.
    result = dpar2(tensor, config)
    U0 = result.U(0)
    print(f"\nDPar2 factors: U(0) {U0.shape}, V {result.V.shape}, "
          f"S {result.S.shape} (diagonal entries per slice)")
    print(f"slice 0 reconstruction error: "
          f"{abs(tensor[0] - result.reconstruct_slice(0)).mean():.4f} (mean abs)")
    print(f"preprocessed data is {tensor.nbytes / result.preprocessed_bytes:.1f}x "
          "smaller than the input")


if __name__ == "__main__":
    main()
