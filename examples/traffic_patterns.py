"""Traffic-pattern analysis — the PEMS-SF workload of the paper.

PARAFAC2 on a (station x timestamp x day) occupancy tensor separates the
latent daily profiles; the per-day weights ``diag(Sk)`` then cluster days
into weekday/weekend regimes without supervision — the kind of pattern
discovery the paper's Section IV-E demonstrates on stocks.

Run with:  python examples/traffic_patterns.py
"""

import numpy as np

from repro import DecompositionConfig, dpar2
from repro.data.traffic import generate_traffic_tensor


def main() -> None:
    n_days = 28
    tensor = generate_traffic_tensor(
        n_stations=60, n_timestamps=48, n_days=n_days, noise=0.03,
        random_state=2,
    )
    print(f"tensor: {tensor} (days as slices)")

    result = dpar2(
        tensor, DecompositionConfig(rank=4, max_iterations=20, random_state=2)
    )
    print(f"DPar2 fitness: {result.fitness(tensor):.4f}\n")

    # The weight rows diag(Sk) characterize each day's mixture of the
    # latent daily profiles.  Normalize and cluster by simple 2-means.
    weights = result.S / np.linalg.norm(result.S, axis=1, keepdims=True)
    labels = two_means(weights, random_state=2)

    weekend_truth = np.array([day % 7 in (5, 6) for day in range(n_days)])
    # Align cluster labels with the truth (clusters are unordered).
    agreement = np.mean(labels == weekend_truth)
    agreement = max(agreement, 1.0 - agreement)

    print("day  profile-weights (rounded)   cluster  actual")
    for day in range(n_days):
        kind = "weekend" if weekend_truth[day] else "weekday"
        rounded = np.round(weights[day], 2)
        print(f"{day:3d}  {str(rounded):28s} {labels[day]:^7d}  {kind}")
    print(f"\nunsupervised weekday/weekend agreement: {agreement:.0%}")


def two_means(points: np.ndarray, random_state=0, n_iterations: int = 50):
    """Minimal 2-means over rows (enough for a 2-regime day clustering)."""
    rng = np.random.default_rng(random_state)
    centers = points[rng.choice(len(points), size=2, replace=False)]
    labels = np.zeros(len(points), dtype=int)
    for _ in range(n_iterations):
        distances = np.stack(
            [np.linalg.norm(points - c, axis=1) for c in centers]
        )
        new_labels = np.argmin(distances, axis=0)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for c in range(2):
            members = points[labels == c]
            if len(members):
                centers[c] = members.mean(axis=0)
    return labels


if __name__ == "__main__":
    main()
