"""Stock-market analysis with DPar2 — the paper's Section IV-E workflow.

1. Generate a synthetic market (OHLCV + 83 technical indicators per stock,
   long-tailed listing periods).
2. Decompose the standardized irregular tensor with DPar2.
3. Feature similarity: which indicators co-move with prices? (Fig. 12)
4. Stock similarity: which stocks resemble a target, by k-NN and by
   Random Walk with Restart? (Table III)

Run with:  python examples/stock_analysis.py
"""

import numpy as np

from repro import DecompositionConfig, dpar2
from repro.analysis.correlation import model_feature_correlation
from repro.analysis.knn import top_k_neighbors
from repro.analysis.rwr import rwr_ranking
from repro.analysis.similarity import similarity_graph, similarity_matrix
from repro.data.indicators import feature_names
from repro.data.stock import generate_market, standardize_features


def main() -> None:
    market = generate_market(
        n_stocks=40, max_days=300, min_days=300,  # equal ranges: all comparable
        volume_coupled=True, random_state=3,
    )
    tensor = standardize_features(market.tensor)
    print(f"market tensor: {tensor} ({len(feature_names())} features)")

    result = dpar2(
        tensor, DecompositionConfig(rank=10, max_iterations=20, random_state=3)
    )
    print(f"DPar2 fitness: {result.fitness(tensor):.3f} "
          f"in {result.total_seconds:.2f}s\n")

    # ----- feature similarity (Fig. 12) ------------------------------- #
    names = feature_names()
    picked = ["close", "open", "atr_14", "stoch_14", "obv", "macd_12_26"]
    corr = model_feature_correlation(
        result.V, result.H, result.S, [names.index(f) for f in picked]
    )
    print("model-implied feature correlation:")
    print("            " + " ".join(f"{f[:10]:>10s}" for f in picked))
    for i, f in enumerate(picked):
        print(f"{f[:10]:>10s}  " + " ".join(f"{corr[i, j]:10.2f}" for j in range(len(picked))))

    # ----- stock similarity (Table III) -------------------------------- #
    factors = [result.U(k) for k in range(result.n_slices)]
    target = 0
    sims = similarity_matrix(factors, gamma=0.01)
    knn = top_k_neighbors(sims, target, k=5)
    rwr = rwr_ranking(similarity_graph(factors, gamma=0.01), target, k=5)

    print(f"\nstocks most similar to {market.tickers[target]} "
          f"({market.sectors[target]}):")
    print(f"{'rank':>4s} {'kNN':>8s} {'sector':>22s}   {'RWR':>8s} {'sector':>22s}")
    for pos in range(5):
        ki, _ = knn[pos]
        ri, _ = rwr[pos]
        print(
            f"{pos + 1:4d} {market.tickers[ki]:>8s} {market.sectors[ki]:>22s}  "
            f" {market.tickers[ri]:>8s} {market.sectors[ri]:>22s}"
        )

    same_sector = np.mean(
        [market.sectors[i] == market.sectors[target] for i, _ in knn]
    )
    print(f"\nfraction of kNN neighbours sharing the target's sector: "
          f"{same_sector:.0%}")


if __name__ == "__main__":
    main()
