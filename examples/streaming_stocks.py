"""Streaming PARAFAC2 — the paper's future-work extension in action.

Simulates a market data feed: stocks arrive one at a time (new listings),
each is compressed once on arrival, and the PARAFAC2 model is kept fresh
without ever revisiting raw history.  Compares the streaming model's
fitness against a from-scratch batch refit at several checkpoints, and
publishes each checkpoint to a versioned model registry — the snapshots a
`repro serve` process would hot-swap between (no pickles: the registry is
schema-versioned manifests plus `.npy` segments).

Run with:  python examples/streaming_stocks.py
"""

import tempfile

from repro import DecompositionConfig, dpar2
from repro.data.stock import generate_market, standardize_features
from repro.decomposition.streaming import StreamingDpar2
from repro.serve import FactorStore, QueryEngine
from repro.tensor.irregular import IrregularTensor


def main() -> None:
    market = generate_market(
        n_stocks=24, max_days=200, min_days=80, random_state=5
    )
    tensor = standardize_features(market.tensor)
    print(f"feed: {tensor.n_slices} stocks arriving one by one "
          f"({tensor.n_columns} features each)\n")

    config = DecompositionConfig(rank=8, random_state=5)
    stream = StreamingDpar2(config, refresh_iterations=6)
    registry = FactorStore(tempfile.mkdtemp(prefix="stream-registry-"))

    print(f"{'arrived':>8s} {'stream_fit':>11s} {'batch_fit':>10s} {'version':>8s}")
    checkpoints = {6, 12, 18, 24}
    for k in range(tensor.n_slices):
        stream.absorb(tensor[k], refresh=False)
        arrived = k + 1
        if arrived in checkpoints:
            so_far = IrregularTensor([tensor[i] for i in range(arrived)])
            stream_fit = stream.fitness(so_far)
            batch = dpar2(so_far, config.with_(max_iterations=6))
            version = stream.publish_to(registry, extra={"arrived": arrived})
            print(f"{arrived:8d} {stream_fit:11.4f} "
                  f"{batch.fitness(so_far):10.4f} {version:8d}")

    result = stream.result()
    print(f"\nfinal model: rank {result.rank}, {result.n_slices} slices, "
          f"V {result.V.shape}")
    print("each arrival cost one randomized SVD of that slice only — "
          "no raw history was revisited.")

    # The registry now holds one immutable snapshot per checkpoint; a
    # `repro serve --registry ...` process polling it would have hot-swapped
    # through all four.  Query the latest one directly:
    artifact = registry.latest()
    engine = QueryEngine(artifact.result, config=artifact.config,
                         version=artifact.version)
    neighbors, scores = engine.similar([0], k=3)
    print(f"\nregistry: {registry}")
    print(f"stocks most similar to stock 0 (v{artifact.version}): "
          + ", ".join(f"{n} ({s:.3f})"
                      for n, s in zip(neighbors[0], scores[0])))


if __name__ == "__main__":
    main()
