"""Fault detection with PARAFAC2 — the Wise et al. application the paper cites.

PARAFAC2 was originally applied to semiconductor-etch fault detection
(reference [14] of the paper): fit the decomposition to process batches,
then flag batches the shared latent structure cannot explain.  This example
builds a fleet of sensor-trace "batches" (video-style smooth feature
matrices), corrupts two of them, and shows the anomaly scores calling both
out — plus row-level scores localizing *when* the fault occurred.

Run with:  python examples/fault_detection.py
"""

import numpy as np

from repro import DecompositionConfig, dpar2
from repro.analysis.anomaly import (
    anomaly_threshold,
    row_anomaly_scores,
    slice_anomaly_scores,
)
from repro.data.video import generate_video_tensor
from repro.tensor.irregular import IrregularTensor


def main() -> None:
    rng = np.random.default_rng(13)
    tensor = generate_video_tensor(
        n_videos=20, n_features=32, min_frames=60, max_frames=60,
        n_classes=1, n_latent=4, noise=0.02, random_state=13,
    )

    # Inject two faults: dead sensors (half the channels of batch 7
    # flatline) and a mid-run burst (batch 13).  A slow drift, by contrast,
    # is *representable* by PARAFAC2's slice-specific Qk and correctly not
    # flagged — anomaly means "violates the shared structure".
    slices = [Xk.copy() for Xk in tensor]
    slices[7][:, :16] = 0.0
    slices[13][25:35] += 3.0 * slices[13].std() * rng.standard_normal((10, 32))
    batches = IrregularTensor(slices)

    result = dpar2(
        batches, DecompositionConfig(rank=5, max_iterations=25, random_state=13)
    )
    scores = slice_anomaly_scores(result, batches)
    threshold = anomaly_threshold(scores, n_sigmas=4.0)

    print("batch  score   flagged")
    for k, score in enumerate(scores):
        marker = "  <-- FAULT" if score > threshold else ""
        print(f"{k:5d}  {score:.4f} {marker}")
    print(f"\nrobust threshold (median + 4 MAD-sigmas): {threshold:.4f}")

    flagged = [k for k, s in enumerate(scores) if s > threshold]
    print(f"flagged batches: {flagged} (injected: [7, 13])")

    # Localize the burst fault in time.
    rows = row_anomaly_scores(result, batches, 13)
    worst = np.argsort(rows)[-10:]
    print(f"\nbatch 13 worst frames: {sorted(int(i) for i in worst)} "
          "(burst injected at frames 25-34)")


if __name__ == "__main__":
    main()
