"""Tests for the synthetic dataset generators (stock, audio, video, traffic)."""

import numpy as np
import pytest

from repro.data.audio import (
    generate_audio_tensor,
    hann_window,
    log_power_spectrogram,
    stft_magnitude,
    synthesize_clip,
)
from repro.data.registry import DATASETS, load_dataset
from repro.data.stock import (
    SECTORS,
    generate_market,
    listing_length_profile,
    named_universe,
    standardize_features,
)
from repro.data.synthetic import (
    PAPER_SIZE_GRID,
    irregular_scalability_tensor,
    paper_size_grid,
    scalability_tensor,
)
from repro.data.traffic import daily_profile, generate_traffic_tensor
from repro.data.video import generate_video_tensor, smooth_walk


class TestStockMarket:
    def test_market_shape(self):
        market = generate_market(n_stocks=10, max_days=100, min_days=40,
                                 random_state=0)
        assert market.tensor.n_slices == 10
        assert market.tensor.n_columns == 88
        assert len(market.tickers) == 10
        assert len(market.sectors) == 10
        assert all(s in SECTORS for s in market.sectors)

    def test_listing_bounds_respected(self):
        market = generate_market(n_stocks=15, max_days=120, min_days=50,
                                 random_state=1)
        for ik in market.tensor.row_counts:
            assert 50 <= ik <= 120

    def test_one_stock_spans_full_window(self):
        lengths = listing_length_profile(20, 200, 50, random_state=0)
        assert lengths.max() == 200

    def test_profile_long_tailed(self):
        lengths = listing_length_profile(200, 1000, 100, random_state=0)
        assert np.median(lengths) < 0.5 * lengths.max()

    def test_profile_bad_bounds(self):
        with pytest.raises(ValueError, match="min_days"):
            listing_length_profile(5, 10, 20)

    def test_deterministic(self):
        a = generate_market(n_stocks=5, max_days=60, min_days=30,
                            random_state=4)
        b = generate_market(n_stocks=5, max_days=60, min_days=30,
                            random_state=4)
        np.testing.assert_array_equal(a.tensor[0], b.tensor[0])

    def test_index_of(self):
        market = generate_market(n_stocks=5, max_days=60, min_days=30,
                                 random_state=0)
        assert market.index_of(market.tickers[3]) == 3
        with pytest.raises(KeyError, match="unknown ticker"):
            market.index_of("NOPE")

    def test_explicit_sector_ids(self):
        market = generate_market(n_stocks=3, max_days=60, min_days=30,
                                 sector_ids=[0, 0, 1], random_state=0)
        assert market.sectors == [SECTORS[0], SECTORS[0], SECTORS[1]]

    def test_bad_sector_ids_rejected(self):
        with pytest.raises(ValueError, match="sector"):
            generate_market(n_stocks=2, max_days=60, min_days=30,
                            sector_ids=[0, 99], random_state=0)

    def test_sector_id_count_mismatch(self):
        with pytest.raises(ValueError, match="entries"):
            generate_market(n_stocks=3, max_days=60, min_days=30,
                            sector_ids=[0], random_state=0)

    def test_volume_coupling_changes_data(self):
        coupled = generate_market(n_stocks=4, max_days=60, min_days=60,
                                  volume_coupled=True, random_state=2)
        uncoupled = generate_market(n_stocks=4, max_days=60, min_days=60,
                                    volume_coupled=False, random_state=2)
        assert not np.allclose(coupled.tensor[0], uncoupled.tensor[0])

    def test_standardize_per_slice(self):
        market = generate_market(n_stocks=4, max_days=80, min_days=40,
                                 random_state=0)
        z = standardize_features(market.tensor)
        for Xk in z:
            np.testing.assert_allclose(Xk.mean(axis=0), 0.0, atol=1e-9)
            stds = Xk.std(axis=0)
            nonconst = stds > 1e-12
            np.testing.assert_allclose(stds[nonconst], 1.0, atol=1e-9)

    def test_standardize_global(self):
        market = generate_market(n_stocks=4, max_days=80, min_days=40,
                                 random_state=0)
        z = standardize_features(market.tensor, per_slice=False)
        stacked = np.concatenate(list(z.slices), axis=0)
        np.testing.assert_allclose(stacked.mean(axis=0), 0.0, atol=1e-9)

    def test_named_universe(self):
        market = named_universe(
            {"AAA": "Technology", "BBB": "Energy"}, max_days=60,
            random_state=0,
        )
        assert market.tickers == ["AAA", "BBB"]
        assert market.sectors == ["Technology", "Energy"]
        assert market.tensor.row_counts == [60, 60]

    def test_named_universe_unknown_sector(self):
        with pytest.raises(ValueError, match="unknown sector"):
            named_universe({"AAA": "NotASector"})

    def test_named_universe_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            named_universe({})


class TestAudio:
    def test_hann_window_endpoints(self):
        w = hann_window(8)
        assert w[0] == pytest.approx(0.0)
        assert w.max() <= 1.0

    def test_hann_single_sample(self):
        np.testing.assert_array_equal(hann_window(1), [1.0])

    def test_stft_shape(self, rng):
        x = rng.standard_normal(1000)
        out = stft_magnitude(x, n_fft=128, hop=64)
        assert out.shape[1] == 65  # n_fft // 2 + 1
        assert out.shape[0] >= 1

    def test_stft_pure_tone_peaks_at_bin(self):
        sr, n_fft = 1000, 250
        t = np.arange(2000) / sr
        signal = np.sin(2 * np.pi * 100.0 * t)  # bin = 100 / (sr/n_fft) = 25
        mag = stft_magnitude(signal, n_fft=n_fft, hop=125)
        peak_bins = np.argmax(mag[1:-1], axis=1)
        assert np.median(peak_bins) == pytest.approx(25, abs=1)

    def test_stft_short_signal_padded(self):
        out = stft_magnitude(np.ones(10), n_fft=64, hop=32)
        assert out.shape[0] >= 1

    def test_log_power_range(self, rng):
        db = log_power_spectrogram(rng.standard_normal(2000))
        assert db.max() <= 0.0 + 1e-9
        assert db.min() >= -80.0 - 1e-9

    def test_log_power_silent_signal(self):
        db = log_power_spectrogram(np.zeros(1000))
        np.testing.assert_allclose(db, -80.0)

    def test_synthesize_clip_finite(self):
        clip = synthesize_clip(5000, random_state=0)
        assert clip.shape == (5000,)
        assert np.all(np.isfinite(clip))

    def test_audio_tensor_shape(self):
        tensor = generate_audio_tensor(n_clips=5, min_frames=10,
                                       max_frames=20, n_fft=128,
                                       random_state=0)
        assert tensor.n_slices == 5
        assert tensor.n_columns == 65
        for ik in tensor.row_counts:
            assert 10 <= ik <= 20

    def test_audio_tensor_bad_frames(self):
        with pytest.raises(ValueError, match="min_frames"):
            generate_audio_tensor(n_clips=2, min_frames=30, max_frames=10)

    def test_audio_tensor_low_rank_structure(self):
        """Spectrograms of harmonic audio must decay fast spectrally."""
        tensor = generate_audio_tensor(n_clips=3, min_frames=40,
                                       max_frames=60, n_fft=256,
                                       random_state=0)
        for Xk in tensor:
            s = np.linalg.svd(Xk, compute_uv=False)
            assert s[10] < 0.35 * s[0]


class TestVideo:
    def test_smooth_walk_is_smooth(self):
        walk = smooth_walk(500, 4, smoothness=0.95, random_state=0)
        step_var = np.var(np.diff(walk, axis=0))
        assert step_var < np.var(walk)  # steps much smaller than range

    def test_smooth_walk_bad_smoothness(self):
        with pytest.raises(ValueError, match="smoothness"):
            smooth_walk(10, 2, smoothness=1.0)

    def test_video_tensor_shape(self):
        tensor = generate_video_tensor(n_videos=6, n_features=16,
                                       min_frames=10, max_frames=30,
                                       random_state=0)
        assert tensor.n_slices == 6
        assert tensor.n_columns == 16
        for ik in tensor.row_counts:
            assert 10 <= ik <= 30

    def test_video_tensor_low_rank(self):
        tensor = generate_video_tensor(n_videos=4, n_features=32,
                                       min_frames=40, max_frames=40,
                                       n_latent=4, noise=0.0, random_state=0)
        for Xk in tensor:
            centered = Xk - Xk.mean(axis=0)
            s = np.linalg.svd(centered, compute_uv=False)
            assert s[4] < 1e-8 * s[0]  # latent dim 4 => rank <= 4 centered

    def test_video_negative_noise_rejected(self):
        with pytest.raises(ValueError, match="noise"):
            generate_video_tensor(n_videos=2, noise=-1.0)


class TestTraffic:
    def test_daily_profile_shape(self):
        profile = daily_profile(96, [0.3], [0.05], random_state=0)
        assert profile.shape == (96,)
        assert np.all(profile >= 0)

    def test_daily_profile_peak_location(self):
        profile = daily_profile(240, [0.5], [0.02], random_state=0)
        assert abs(np.argmax(profile) - 120) <= 2

    def test_profile_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal shapes"):
            daily_profile(96, [0.3, 0.7], [0.05])

    def test_traffic_tensor_regular(self):
        tensor = generate_traffic_tensor(n_stations=20, n_timestamps=24,
                                         n_days=10, random_state=0)
        assert tensor.n_slices == 10
        assert tensor.row_counts == [20] * 10
        assert tensor.n_columns == 24

    def test_traffic_nonnegative(self):
        tensor = generate_traffic_tensor(n_stations=10, n_timestamps=24,
                                         n_days=7, random_state=0)
        for Xk in tensor:
            assert np.all(Xk >= 0)

    def test_weekday_weekend_differ(self):
        tensor = generate_traffic_tensor(n_stations=30, n_timestamps=48,
                                         n_days=7, noise=0.0, random_state=0)
        weekday = tensor[0]
        weekend = tensor[5]
        assert not np.allclose(weekday, weekend, rtol=0.1)


class TestSynthetic:
    def test_scalability_tensor_equal_heights(self):
        t = scalability_tensor(10, 8, 5, random_state=0)
        assert t.row_counts == [10] * 5
        assert t.n_columns == 8

    def test_paper_grid_full_scale(self):
        assert paper_size_grid(1.0) == list(PAPER_SIZE_GRID)

    def test_paper_grid_scaled(self):
        grid = paper_size_grid(0.1)
        assert grid[0] == (100, 100, 100)
        assert grid[-1] == (200, 200, 400)

    def test_paper_grid_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            paper_size_grid(0.0)

    def test_irregular_scalability_bounds(self):
        t = irregular_scalability_tensor(100, 10, 20, random_state=0)
        assert t.n_slices == 20
        assert max(t.row_counts) <= 100
        assert min(t.row_counts) >= 5  # default min = max // 20

    def test_irregular_scalability_skew(self):
        t = irregular_scalability_tensor(1000, 4, 100, random_state=0)
        counts = np.array(t.row_counts)
        assert counts.max() > 3 * np.median(counts)


class TestRegistry:
    def test_registered_datasets(self):
        # Table II's eight datasets plus the synthetic sparse workload.
        assert len(DATASETS) == 9

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_each_dataset_loads(self, name):
        tensor = load_dataset(name, random_state=0)
        assert tensor.n_slices > 1
        assert tensor.n_columns > 1

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("imaginary")

    def test_name_normalization(self):
        tensor = load_dataset("PEMS-SF", random_state=0)
        assert tensor.n_slices == 40

    def test_paper_shapes_recorded(self):
        assert DATASETS["us_stock"].paper_shape == (7883, 88, 4742)
        assert DATASETS["fma"].paper_shape == (704, 2049, 7997)

    def test_stock_dataset_is_standardized(self):
        tensor = load_dataset("us_stock", random_state=0)
        np.testing.assert_allclose(tensor[0].mean(axis=0), 0.0, atol=1e-8)
