"""Integration tests across modules.

These exercise the full pipelines the paper's evaluation relies on:
all four solvers agreeing on quality, DPar2's compressed machinery matching
the exact ALS trajectory when compression is lossless, and the discovery
pipeline recovering planted structure end to end.
"""

import numpy as np
import pytest

from repro import (
    DecompositionConfig,
    dpar2,
    parafac2_als,
    rd_als,
    spartan,
)
from repro.data.registry import load_dataset
from repro.tensor.random import low_rank_irregular_tensor
from repro.tensor.irregular import IrregularTensor

ALL_SOLVERS = (dpar2, rd_als, parafac2_als, spartan)


class TestCrossSolverAgreement:
    @pytest.fixture(scope="class")
    def tensor(self):
        return low_rank_irregular_tensor(
            [50, 70, 40, 60, 55], 30, rank=5, noise=0.03, random_state=10
        )

    @pytest.fixture(scope="class")
    def fits(self, tensor):
        config = DecompositionConfig(rank=5, max_iterations=40,
                                     random_state=10)
        return {
            solver.__name__: solver(tensor, config).fitness(tensor)
            for solver in ALL_SOLVERS
        }

    def test_all_reach_decent_fitness(self, fits):
        for name, fit in fits.items():
            assert fit > 0.6, f"{name} fitness only {fit:.3f}"

    def test_dpar2_comparable_to_best(self, fits):
        best = max(fits.values())
        assert best - fits["dpar2"] < 0.05  # the paper's "comparable"

    def test_exact_methods_agree_closely(self, fits):
        assert abs(fits["parafac2_als"] - fits["spartan"]) < 1e-6


class TestDpar2MatchesExactAlsWhenLossless:
    def test_noiseless_trajectories_align(self):
        """With exact-rank data the compression is lossless, so DPar2 and
        PARAFAC2-ALS optimize the same objective and reach the same fit."""
        tensor = low_rank_irregular_tensor(
            [40, 50, 45], 25, rank=4, noise=0.0, random_state=3
        )
        config = DecompositionConfig(rank=4, max_iterations=60,
                                     tolerance=1e-12, power_iterations=2,
                                     random_state=3)
        fit_fast = dpar2(tensor, config).fitness(tensor)
        fit_exact = parafac2_als(tensor, config).fitness(tensor)
        assert fit_fast == pytest.approx(fit_exact, abs=5e-3)
        assert fit_fast > 0.99


class TestRealisticDatasets:
    @pytest.mark.parametrize(
        "name,threshold",
        [
            ("activity", 0.35),  # 5 video classes x 8 latent dims >> rank 10
            ("traffic", 0.90),   # strongly low-rank daily profiles
        ],
    )
    def test_dpar2_beats_trivial_fit(self, name, threshold):
        tensor = load_dataset(name, random_state=0)
        config = DecompositionConfig(rank=10, max_iterations=10,
                                     random_state=0)
        result = dpar2(tensor, config)
        assert result.fitness(tensor) > threshold

    def test_rank_sweep_improves_fitness(self):
        tensor = load_dataset("activity", random_state=0)
        fits = []
        for rank in (2, 5, 10):
            config = DecompositionConfig(rank=rank, max_iterations=10,
                                         random_state=0)
            fits.append(dpar2(tensor, config).fitness(tensor))
        assert fits[0] < fits[-1]


class TestDiscoveryPipeline:
    def test_planted_clusters_recovered(self):
        """Slices generated from two distinct PARAFAC2 processes must be
        separated by the Uk-similarity + kNN pipeline."""
        from repro.analysis.knn import top_k_neighbors
        from repro.analysis.similarity import similarity_matrix
        from repro.linalg.qr import random_orthonormal

        rng = np.random.default_rng(0)
        R, J, I = 4, 20, 30
        V = random_orthonormal(J, R, rng)
        slices = []
        for group in range(2):
            H = rng.standard_normal((R, R))
            base_Q = random_orthonormal(I, R, rng)
            for _ in range(5):
                # Same temporal pattern per group, tiny perturbation.
                Q = np.linalg.qr(base_Q + 0.05 * rng.standard_normal((I, R)))[0]
                s = rng.uniform(0.9, 1.1, R)
                slices.append(Q @ H @ np.diag(s) @ V.T
                              + 0.01 * rng.standard_normal((I, J)))
        tensor = IrregularTensor(slices, copy=False)

        config = DecompositionConfig(rank=4, max_iterations=30,
                                     random_state=0)
        result = dpar2(tensor, config)
        factors = [result.U(k) for k in range(result.n_slices)]
        sims = similarity_matrix(factors, gamma=0.05)

        # For each slice, most nearest neighbours must be in its own group.
        correct = 0
        for query in range(10):
            neighbors = top_k_neighbors(sims, query, k=4)
            own_group = query // 5
            correct += sum(1 for i, _ in neighbors if i // 5 == own_group)
        assert correct >= 0.7 * 40

    def test_stock_pipeline_end_to_end(self):
        """generate -> standardize -> decompose -> rank similar stocks."""
        from repro.analysis.rwr import rwr_ranking
        from repro.analysis.similarity import similarity_graph
        from repro.data.stock import generate_market, standardize_features

        market = generate_market(n_stocks=12, max_days=90, min_days=90,
                                 random_state=1)
        tensor = standardize_features(market.tensor)
        result = dpar2(tensor, DecompositionConfig(rank=5, max_iterations=10,
                                                   random_state=1))
        factors = [result.U(k) for k in range(result.n_slices)]
        adjacency = similarity_graph(factors, gamma=0.01)
        ranking = rwr_ranking(adjacency, 0, k=5)
        assert len(ranking) == 5
        assert all(score > 0 for _, score in ranking)


class TestPublicApi:
    def test_top_level_imports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.2.0"

    def test_docstring_example(self):
        from repro import DecompositionConfig, dpar2, random_irregular_tensor

        tensor = random_irregular_tensor([40, 60, 50], n_columns=30,
                                         random_state=0)
        result = dpar2(tensor, DecompositionConfig(rank=5, random_state=0))
        assert 0.0 <= result.fitness(tensor) <= 1.0
