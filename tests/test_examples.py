"""Smoke tests: every example script must run cleanly end to end.

Examples are the deliverable a new user touches first; a broken example is
a broken library.  Each is executed as a subprocess exactly as the README
instructs.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "stock_analysis.py",
    "audio_compression.py",
    "scalability_demo.py",
    "streaming_stocks.py",
    "traffic_patterns.py",
    "fault_detection.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    assert os.path.exists(path), f"example {script} is missing"
    completed = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"


def test_expected_example_outputs():
    """Spot-check that the headline numbers examples print are sane."""
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "fault_detection.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert "flagged batches: [7, 13]" in completed.stdout
