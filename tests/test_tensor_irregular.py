"""Tests for the IrregularTensor container."""

import numpy as np
import pytest

from repro.tensor.irregular import IrregularTensor


@pytest.fixture
def tensor(rng):
    return IrregularTensor([rng.standard_normal((n, 6)) for n in (4, 7, 5)])


class TestConstruction:
    def test_basic_properties(self, tensor):
        assert tensor.n_slices == 3
        assert tensor.n_columns == 6
        assert tensor.row_counts == [4, 7, 5]
        assert tensor.max_rows == 7
        assert tensor.n_entries == (4 + 7 + 5) * 6

    def test_len_and_iter(self, tensor):
        assert len(tensor) == 3
        assert sum(1 for _ in tensor) == 3

    def test_getitem(self, tensor):
        assert tensor[1].shape == (7, 6)

    def test_copies_by_default(self, rng):
        source = rng.standard_normal((3, 4))
        tensor = IrregularTensor([source])
        source[0, 0] = 999.0
        assert tensor[0][0, 0] != 999.0

    def test_no_copy_option(self, rng):
        source = np.ascontiguousarray(rng.standard_normal((3, 4)))
        tensor = IrregularTensor([source], copy=False)
        assert tensor[0] is source

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one slice"):
            IrregularTensor([])

    def test_column_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="columns"):
            IrregularTensor(
                [rng.standard_normal((3, 4)), rng.standard_normal((3, 5))]
            )

    def test_nan_rejected(self):
        bad = np.ones((2, 2))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            IrregularTensor([bad])

    def test_accepts_generator(self, rng):
        tensor = IrregularTensor(rng.standard_normal((3, 4)) for _ in range(2))
        assert tensor.n_slices == 2

    def test_repr(self, tensor):
        text = repr(tensor)
        assert "K=3" in text
        assert "J=6" in text


class TestNumerics:
    def test_squared_norm(self, tensor):
        expected = sum(np.sum(Xk**2) for Xk in tensor)
        assert tensor.squared_norm() == pytest.approx(expected)

    def test_norm_is_sqrt(self, tensor):
        assert tensor.norm() == pytest.approx(np.sqrt(tensor.squared_norm()))

    def test_scaled(self, tensor):
        doubled = tensor.scaled(2.0)
        assert doubled.squared_norm() == pytest.approx(4 * tensor.squared_norm())

    def test_nbytes(self, tensor):
        assert tensor.nbytes == tensor.n_entries * 8

    def test_transpose_concatenation(self, tensor):
        concat = tensor.transpose_concatenation()
        assert concat.shape == (6, 16)
        np.testing.assert_array_equal(concat[:, :4], tensor[0].T)

    def test_subset(self, tensor):
        sub = tensor.subset([2, 0])
        assert sub.n_slices == 2
        np.testing.assert_array_equal(sub[0], tensor[2])
        np.testing.assert_array_equal(sub[1], tensor[0])


class TestFromRegular:
    def test_splits_frontal_slices(self, rng):
        cube = rng.standard_normal((5, 4, 3))
        tensor = IrregularTensor.from_regular(cube)
        assert tensor.n_slices == 3
        assert tensor.row_counts == [5, 5, 5]
        np.testing.assert_array_equal(tensor[1], cube[:, :, 1])

    def test_rejects_matrix(self, rng):
        with pytest.raises(ValueError, match="3-order"):
            IrregularTensor.from_regular(rng.standard_normal((4, 4)))
