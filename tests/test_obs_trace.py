"""Tests for trace spans: determinism, shard invariance, bitwise factors."""

import hashlib
import json

import numpy as np
import pytest

from repro.decomposition.dpar2 import dpar2
from repro.obs import trace
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    trace.stop()


@pytest.fixture
def tensor():
    return low_rank_irregular_tensor(
        [20, 25, 15, 30], n_columns=12, rank=3, noise=0.05, random_state=7
    )


def _config(**overrides):
    base = dict(rank=3, max_iterations=4, random_state=0)
    base.update(overrides)
    return DecompositionConfig(**base)


def _traced_run(tensor, config, path):
    trace.start(path)
    try:
        return dpar2(tensor, config)
    finally:
        trace.stop()


def _factor_digest(result) -> str:
    digest = hashlib.sha256()
    for Qk in result.Q:
        digest.update(np.ascontiguousarray(Qk).tobytes())
    for factor in (result.H, result.S, result.V):
        digest.update(np.ascontiguousarray(factor).tobytes())
    return digest.hexdigest()


class TestSpanMechanics:
    def test_disabled_tracing_is_noop(self):
        assert not trace.enabled()
        with trace.span("anything", key=1) as span:
            span.annotate(more=2)
        assert span.span_id is None

    def test_span_ids_number_the_tree(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.start(path)
        with trace.span("root"):
            with trace.span("child"):
                pass
            with trace.span("child"):
                pass
        trace.stop()
        spans = trace.load_spans(path)
        assert trace.tree_shape(spans) == [
            (1, None, "root"),
            (2, 1, "child"),
            (3, 1, "child"),
        ]
        for record in spans:
            assert record["dur"] >= 0.0
            assert record["start"] >= 0.0

    def test_annotations_survive_to_the_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.start(path)
        with trace.span("work", phase="a") as span:
            span.annotate(result=42)
        trace.stop()
        (span_record,) = trace.load_spans(path)
        assert span_record["attrs"] == {"phase": "a", "result": 42}

    def test_load_spans_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = {"id": 1, "parent": None, "name": "x", "start": 0.0, "dur": 0.1, "attrs": {}}
        path.write_text(json.dumps(good) + "\n" + '{"id": 2, "parent"' + "\n")
        assert trace.tree_shape(trace.load_spans(path)) == [(1, None, "x")]

    def test_exception_still_emits_the_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.start(path)
        with pytest.raises(RuntimeError):
            with trace.span("doomed"):
                raise RuntimeError("boom")
        trace.stop()
        assert trace.tree_shape(trace.load_spans(path)) == [(1, None, "doomed")]


class TestDeterminism:
    def test_identical_runs_identical_span_trees(self, tensor, tmp_path):
        config = _config()
        _traced_run(tensor, config, tmp_path / "a.jsonl")
        _traced_run(tensor, config, tmp_path / "b.jsonl")
        shape_a = trace.tree_shape(trace.load_spans(tmp_path / "a.jsonl"))
        shape_b = trace.tree_shape(trace.load_spans(tmp_path / "b.jsonl"))
        assert shape_a == shape_b
        assert shape_a  # non-empty: the run actually traced

    def test_factors_bitwise_identical_with_tracing(self, tensor, tmp_path):
        config = _config()
        plain = dpar2(tensor, config)
        traced = _traced_run(tensor, config, tmp_path / "t.jsonl")
        assert _factor_digest(plain) == _factor_digest(traced)

    def test_sharded_span_tree_invariant_to_shard_count(self, tensor, tmp_path):
        shapes = {}
        for shards in (2, 3):
            config = _config(shards=shards, shard_backend="serial")
            _traced_run(tensor, config, tmp_path / f"s{shards}.jsonl")
            spans = trace.load_spans(tmp_path / f"s{shards}.jsonl")
            shapes[shards] = trace.tree_shape(spans)
        assert shapes[2] == shapes[3]
        names = {name for _, _, name in shapes[2]}
        assert "dpar2.sweep_phase1" in names

    def test_sweep_spans_nest_under_the_run(self, tensor, tmp_path):
        path = tmp_path / "t.jsonl"
        _traced_run(tensor, _config(), path)
        spans = trace.load_spans(path)
        by_id = {record["id"]: record for record in spans}
        roots = [record for record in spans if record["parent"] is None]
        assert [record["name"] for record in roots] == ["dpar2.run"]
        sweeps = [record for record in spans if record["name"] == "dpar2.sweep"]
        assert len(sweeps) == 4
        assert all(by_id[record["parent"]]["name"] == "dpar2.run" for record in sweeps)


class TestSummarize:
    def test_aggregates_siblings(self, tensor, tmp_path):
        path = tmp_path / "t.jsonl"
        _traced_run(tensor, _config(), path)
        text = trace.summarize(path)
        lines = text.splitlines()
        assert lines[0].startswith("dpar2.run")
        assert sum("dpar2.sweep " in line for line in lines) == 1  # collapsed
        assert any("4x" in line for line in lines)

    def test_empty_trace_reports_no_spans(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert "no spans" in trace.summarize(path)
