"""Tests for the out-of-core slice store and memmap-backed tensors."""

import numpy as np
import pytest

from repro.decomposition.dpar2 import compress_tensor, dpar2
from repro.tensor.irregular import IrregularTensor
from repro.tensor.mmap_store import MANIFEST_NAME, MmapSliceStore
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig


@pytest.fixture
def tensor():
    return low_rank_irregular_tensor(
        [30, 45, 25, 40], n_columns=16, rank=3, noise=0.02, random_state=4
    )


@pytest.fixture
def store(tensor, tmp_path):
    return MmapSliceStore.create(tmp_path / "store", tensor.slices)


class TestCreateOpen:
    def test_metadata(self, tensor, store):
        assert len(store) == tensor.n_slices
        assert store.n_columns == tensor.n_columns
        assert store.row_counts == tensor.row_counts
        assert store.nbytes == tensor.nbytes

    def test_roundtrip_values(self, tensor, store):
        for k in range(len(store)):
            np.testing.assert_array_equal(store.load_slice(k), tensor[k])

    def test_reopen(self, tensor, store):
        reopened = MmapSliceStore.open(store.directory)
        assert reopened.row_counts == tensor.row_counts
        np.testing.assert_array_equal(reopened.load_slice(1), tensor[1])

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no slice store"):
            MmapSliceStore.open(tmp_path / "nowhere")

    def test_create_refuses_to_clobber(self, store, tensor):
        with pytest.raises(FileExistsError, match="overwrite"):
            MmapSliceStore.create(store.directory, tensor.slices)

    def test_overwrite_replaces(self, store, tensor):
        smaller = MmapSliceStore.create(
            store.directory, tensor.slices[:2], overwrite=True
        )
        assert len(smaller) == 2
        # stale slice files from the old, larger store must be gone
        leftovers = [p for p in store.directory.iterdir() if p.name != MANIFEST_NAME]
        assert len(leftovers) == 2

    def test_create_from_generator(self, tmp_path):
        def slices():
            rng = np.random.default_rng(0)
            for rows in (10, 20, 15):
                yield rng.random((rows, 6))

        lazy = MmapSliceStore.create(tmp_path / "lazy", slices())
        assert lazy.row_counts == [10, 20, 15]

    def test_bad_manifest_rejected(self, tmp_path):
        target = tmp_path / "bad"
        target.mkdir()
        (target / MANIFEST_NAME).write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="manifest"):
            MmapSliceStore.open(target)


class TestAppend:
    def test_append_grows(self, store, rng):
        index = store.append(rng.random((12, 16)))
        assert index == 4
        assert len(store) == 5
        assert store.row_counts[-1] == 12

    def test_append_column_mismatch(self, store, rng):
        with pytest.raises(ValueError, match="columns"):
            store.append(rng.random((12, 9)))

    def test_append_persists(self, store, rng):
        new_slice = rng.random((8, 16))
        store.append(new_slice)
        reopened = MmapSliceStore.open(store.directory)
        np.testing.assert_array_equal(reopened.load_slice(4), new_slice)

    def test_append_rejects_nonfinite(self, store):
        bad = np.full((5, 16), np.nan)
        with pytest.raises(ValueError, match="NaN"):
            store.append(bad)


class TestMmapTensor:
    def test_from_store_is_zero_copy(self, store):
        mapped = IrregularTensor.from_store(store)
        assert all(isinstance(Xk, np.memmap) for Xk in mapped)

    def test_tensor_surface_matches(self, tensor, store):
        mapped = store.as_tensor()
        assert mapped.n_slices == tensor.n_slices
        assert mapped.n_columns == tensor.n_columns
        assert mapped.row_counts == tensor.row_counts
        assert mapped.squared_norm() == pytest.approx(tensor.squared_norm())

    def test_empty_store_rejected(self, tmp_path):
        empty = MmapSliceStore.create(tmp_path / "empty")
        with pytest.raises(ValueError, match="at least one slice"):
            IrregularTensor.from_store(empty)

    def test_to_store_roundtrip(self, tensor, tmp_path):
        back = IrregularTensor.from_store(tensor.to_store(tmp_path / "rt"))
        for Xk, Yk in zip(tensor, back):
            np.testing.assert_array_equal(Xk, Yk)


class TestOutOfCoreCompression:
    """The acceptance criterion: mmap-backed results match in-memory ones."""

    def test_compress_matches_in_memory(self, tensor, store):
        in_memory = compress_tensor(tensor, 3, random_state=9)
        mapped = compress_tensor(store.as_tensor(), 3, random_state=9)
        for Ak, Bk in zip(in_memory.A, mapped.A):
            assert np.array_equal(Ak, Bk)
        assert np.array_equal(in_memory.D, mapped.D)
        assert np.array_equal(in_memory.E, mapped.E)
        assert np.array_equal(in_memory.F_blocks, mapped.F_blocks)

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_dpar2_out_of_core_matches(self, tensor, store, backend):
        config = DecompositionConfig(
            rank=3, max_iterations=3, n_threads=2, backend=backend, random_state=6
        )
        reference = dpar2(
            tensor, config.with_(backend="serial", n_threads=1)
        )
        mapped = dpar2(store.as_tensor(), config)
        assert np.array_equal(reference.H, mapped.H)
        assert np.array_equal(reference.V, mapped.V)
        for Qa, Qb in zip(reference.Q, mapped.Q):
            assert np.array_equal(Qa, Qb)


class TestManifestErrorPaths:
    """Corrupt or tampered stores must fail loudly, not serve garbage."""

    def _edit_manifest(self, store, mutate):
        import json

        path = store.directory / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        mutate(manifest)
        path.write_text(json.dumps(manifest))

    def test_truncated_manifest_json(self, store):
        (store.directory / MANIFEST_NAME).write_text('{"format": "repro-mmap')
        with pytest.raises(ValueError, match="not valid JSON"):
            MmapSliceStore.open(store.directory)

    def test_unsupported_version(self, store):
        self._edit_manifest(store, lambda m: m.update(version=99))
        with pytest.raises(ValueError, match="unsupported store version"):
            MmapSliceStore.open(store.directory)

    def test_v1_manifest_with_sparse_entries(self, store):
        """A dense-only (v1) manifest carrying sparse payload dicts is a
        version/payload mismatch, not something to guess about."""

        def mutate(manifest):
            manifest["version"] = 1
            manifest["files"][0] = {
                "kind": "csr", "nnz": 3,
                "indptr": "x.npy", "indices": "y.npy", "data": "z.npy",
            }

        self._edit_manifest(store, mutate)
        with pytest.raises(ValueError, match="version/payload mismatch"):
            MmapSliceStore.open(store.directory)

    def test_files_row_counts_mismatch(self, store):
        self._edit_manifest(store, lambda m: m["row_counts"].pop())
        with pytest.raises(ValueError, match="inconsistent"):
            MmapSliceStore.open(store.directory)

    def test_missing_dense_segment(self, store):
        store.slice_path(2).unlink()
        reopened = MmapSliceStore.open(store.directory)
        assert reopened.load_slice(0).shape[0] == 30  # others still fine
        with pytest.raises(FileNotFoundError, match="segment missing"):
            reopened.load_slice(2)

    def test_missing_sparse_segment(self, tmp_path):
        from repro.sparse.csr import CsrMatrix

        sparse_slice = CsrMatrix(
            (3, 4), [0, 1, 2, 2], [0, 3], [1.0, 2.0]
        )
        sparse_store = MmapSliceStore.create(tmp_path / "sp", [sparse_slice])
        (sparse_store.directory / "slice_000000.indices.npy").unlink()
        with pytest.raises(FileNotFoundError, match="segment missing"):
            MmapSliceStore.open(sparse_store.directory).load_slice(0)

    def test_dense_segment_dtype_mismatch(self, store, rng):
        """A float32 file behind a float64 manifest means the directory was
        modified behind the manifest's back."""
        np.save(store.slice_path(1), rng.random((45, 16)).astype(np.float32))
        with pytest.raises(ValueError, match="manifest declares float64"):
            MmapSliceStore.open(store.directory).load_slice(1)

    def test_sparse_segment_dtype_mismatch(self, tmp_path):
        from repro.sparse.csr import CsrMatrix

        sparse_slice = CsrMatrix(
            (3, 4), [0, 1, 2, 2], [0, 3], [1.0, 2.0]
        )
        sparse_store = MmapSliceStore.create(
            tmp_path / "sp", [sparse_slice], dtype=np.float32
        )
        np.save(
            sparse_store.directory / "slice_000000.data.npy",
            np.array([1.0, 2.0], dtype=np.float64),
        )
        with pytest.raises(ValueError, match="manifest declares float32"):
            MmapSliceStore.open(sparse_store.directory).load_slice(0)


class TestOverwriteRobustness:
    def test_overwrite_replaces_corrupt_manifest(self, tmp_path, rng):
        """overwrite=True must replace a store whose manifest is unreadable
        (crashed writer) instead of crashing on it."""
        target = tmp_path / "corrupt"
        target.mkdir()
        (target / MANIFEST_NAME).write_text('{"format": "repro-mmap')  # truncated
        np.save(target / "slice_000000.npy", rng.random((4, 4)))
        fresh = MmapSliceStore.create(
            target, [rng.random((10, 6))], overwrite=True
        )
        assert fresh.row_counts == [10]
        reopened = MmapSliceStore.open(target)
        assert reopened.row_counts == [10]

    def test_unflushed_append_then_flush(self, tmp_path, rng):
        store = MmapSliceStore.create(tmp_path / "s", [rng.random((5, 6))])
        store.append(rng.random((7, 6)), flush=False)
        # manifest on disk still has one slice until flush
        assert MmapSliceStore.open(store.directory).row_counts == [5]
        store.flush()
        assert MmapSliceStore.open(store.directory).row_counts == [5, 7]
