"""Tests for the shard coordinator: planner, transports, and sharded DPar2.

The load-bearing contract is **shard-count invariance**: for a fixed
``shard_cells`` the final factors must be bitwise-identical for any shard
count and any shard backend.  The sharded path is *not* required to be
bitwise-equal to the single-process solver (cell-order accumulation
differs) — that path stays untouched and is its own baseline.
"""

import numpy as np
import pytest

from repro.decomposition.dpar2 import compress_tensor, dpar2
from repro.decomposition.sharded import sharded_stage1
from repro.decomposition.streaming import StreamingDpar2
from repro.linalg.kernels import batched_randomized_svd
from repro.parallel.sharding import (
    ShardPlan,
    get_shard_runner,
    payload_nbytes,
    plan_shards,
)
from repro.tensor.irregular import IrregularTensor
from repro.util.config import DecompositionConfig
from repro.util.rng import spawn_generators

ROWS = (40, 55, 23, 80, 12, 34, 61, 29, 17, 44)


@pytest.fixture(scope="module")
def dense_tensor():
    rng = np.random.default_rng(0)
    return IrregularTensor([rng.standard_normal((n, 30)) for n in ROWS])


@pytest.fixture(scope="module")
def sparse_tensor():
    rng = np.random.default_rng(1)
    slices = [
        np.where(rng.random((n, 30)) < 0.15, rng.standard_normal((n, 30)), 0.0)
        for n in ROWS
    ]
    return IrregularTensor(slices).sparsify()


def config(shards, backend="serial", **kw):
    kw.setdefault("rank", 5)
    kw.setdefault("max_iterations", 6)
    kw.setdefault("random_state", 7)
    return DecompositionConfig(shards=shards, shard_backend=backend, **kw)


def assert_same_factors(a, b):
    assert np.array_equal(a.H, b.H)
    assert np.array_equal(a.V, b.V)
    assert np.array_equal(a.S, b.S)
    for Qa, Qb in zip(a.Q, b.Q):
        assert np.array_equal(Qa, Qb)


# --------------------------------------------------------------------- #
# planner
# --------------------------------------------------------------------- #


class TestPlanShards:
    def test_covers_every_slice_once(self):
        plan = plan_shards(ROWS, 3, n_cells=8)
        owned = sorted(k for cell in plan.cells for k in cell)
        assert owned == list(range(len(ROWS)))
        cells = sorted(c for shard in plan.shard_cells for c in shard)
        assert cells == list(range(plan.n_cells))

    def test_cells_fixed_by_cell_count_not_shards(self):
        # The determinism contract hinges on this: cell membership must
        # not depend on how many shards the cells are later dealt onto.
        plans = [plan_shards(ROWS, n, n_cells=8) for n in (1, 2, 4, 7)]
        assert all(p.cells == plans[0].cells for p in plans)

    def test_cell_count_clamped_to_slices(self):
        plan = plan_shards([10, 20], 1, n_cells=8)
        assert plan.n_cells == 2

    def test_shards_clamped_to_cells(self):
        plan = plan_shards(ROWS, 64, n_cells=4)
        assert plan.n_shards == 4

    def test_no_empty_shards_or_cells(self):
        plan = plan_shards(ROWS, 4, n_cells=6)
        assert all(cell for cell in plan.cells)
        assert all(shard for shard in plan.shard_cells)

    def test_imbalance_at_least_one(self):
        plan = plan_shards(ROWS, 3, n_cells=8)
        assert plan.imbalance >= 1.0
        assert plan.cell_imbalance >= 1.0

    def test_describe_is_json_ready(self):
        import json

        desc = plan_shards(ROWS, 2, n_cells=4).describe()
        assert json.loads(json.dumps(desc)) == desc
        assert desc["shards"] == 2
        assert desc["cells"] == 4

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            plan_shards([], 2)

    def test_deterministic(self):
        assert plan_shards(ROWS, 3, n_cells=8) == plan_shards(ROWS, 3, n_cells=8)

    def test_is_frozen(self):
        plan = plan_shards(ROWS, 2, n_cells=4)
        assert isinstance(plan, ShardPlan)
        with pytest.raises(AttributeError):
            plan.imbalance = 2.0


class TestPayloadNbytes:
    def test_counts_nested_arrays(self):
        payload = {
            "a": np.zeros((3, 4)),
            "b": [np.zeros(5, dtype=np.float32), (np.zeros(2),)],
            "c": "not an array",
        }
        assert payload_nbytes(payload) == 96 + 20 + 16


# --------------------------------------------------------------------- #
# runners
# --------------------------------------------------------------------- #


class _Echo:
    """Minimal shard state for transport tests."""

    def __init__(self, init):
        self.tag = init["tag"]
        self.value = init["value"]

    def startup(self):
        return {self.tag: self.value * 2}

    def add(self, delta):
        return {self.tag: self.value + delta}

    def ping(self, payload):
        return {self.tag: np.zeros(4)}

    def boom(self):
        raise RuntimeError("worker exploded")


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
class TestShardRunners:
    def test_start_call_roundtrip(self, backend):
        payloads = [
            {"tag": i, "value": np.full(3, float(i))} for i in range(3)
        ]
        with get_shard_runner(backend, _Echo, payloads) as runner:
            started = runner.start()
            merged = {}
            for out in started:
                merged.update(out)
            assert sorted(merged) == [0, 1, 2]
            assert np.array_equal(merged[2], np.full(3, 4.0))
            replies = runner.call("add", np.ones(3))
            assert np.array_equal(replies[1][1], np.full(3, 2.0))

    def test_call_each_per_shard_args(self, backend):
        payloads = [{"tag": i, "value": np.zeros(2)} for i in range(2)]
        with get_shard_runner(backend, _Echo, payloads) as runner:
            runner.start()
            replies = runner.call_each(
                "add", [(np.full(2, 10.0),), (np.full(2, 20.0),)]
            )
            assert np.array_equal(replies[0][0], np.full(2, 10.0))
            assert np.array_equal(replies[1][1], np.full(2, 20.0))

    def test_worker_error_propagates(self, backend):
        payloads = [{"tag": 0, "value": np.zeros(1)}]
        with get_shard_runner(backend, _Echo, payloads) as runner:
            runner.start()
            with pytest.raises(RuntimeError, match="worker exploded"):
                runner.call("boom")

    def test_byte_accounting_monotone(self, backend):
        payloads = [{"tag": i, "value": np.zeros(4)} for i in range(2)]
        with get_shard_runner(backend, _Echo, payloads) as runner:
            runner.start()
            before = runner.bytes_transferred
            runner.call("ping", np.zeros((8, 8)))
            delta = runner.bytes_transferred - before
            # two shards x (64-float send + 4-float reply)
            assert delta == 2 * (8 * 8 * 8 + 4 * 8)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="shard backend"):
        get_shard_runner("carrier-pigeon", _Echo, [{"tag": 0, "value": 0}])


# --------------------------------------------------------------------- #
# sharded dpar2: the invariance contract
# --------------------------------------------------------------------- #


class TestShardCountInvariance:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("data", ["dense", "sparse"])
    def test_factors_invariant_across_shard_counts(
        self, data, dtype, dense_tensor, sparse_tensor
    ):
        tensor = dense_tensor if data == "dense" else sparse_tensor
        ref = dpar2(tensor, config(1, dtype=dtype))
        for shards in (2, 4):
            assert_same_factors(ref, dpar2(tensor, config(shards, dtype=dtype)))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_factors_invariant_across_backends(self, backend, dense_tensor):
        ref = dpar2(dense_tensor, config(2, "serial"))
        assert_same_factors(ref, dpar2(dense_tensor, config(3, backend)))

    def test_matches_unsharded_numerically(self, dense_tensor):
        exact = dpar2(dense_tensor, config(None))
        sharded = dpar2(dense_tensor, config(2))
        assert sharded.n_iterations == exact.n_iterations
        assert sharded.fitness(dense_tensor) == pytest.approx(
            exact.fitness(dense_tensor), rel=1e-9
        )

    def test_zero_sweeps(self, dense_tensor):
        a = dpar2(dense_tensor, config(2, max_iterations=0))
        b = dpar2(dense_tensor, config(4, max_iterations=0))
        assert_same_factors(a, b)
        assert a.n_iterations == 0

    def test_precomputed_compression_higher_rank(self, dense_tensor):
        compressed = compress_tensor(dense_tensor, 8, random_state=7)
        a = dpar2(dense_tensor, config(2), compressed=compressed)
        b = dpar2(dense_tensor, config(4, "process"), compressed=compressed)
        assert_same_factors(a, b)

    def test_cell_count_changes_accumulation(self, dense_tensor):
        # Different shard_cells => different reduction order => a
        # *different* (equally valid) bitwise family.  Guards against the
        # planner quietly ignoring the knob.
        a = dpar2(dense_tensor, config(2, shard_cells=2))
        b = dpar2(dense_tensor, config(2, shard_cells=8))
        assert not np.array_equal(a.H, b.H)
        assert a.fitness(dense_tensor) == pytest.approx(
            b.fitness(dense_tensor), rel=1e-9
        )

    def test_more_shards_than_slices(self, dense_tensor):
        a = dpar2(dense_tensor, config(64, shard_cells=64))
        b = dpar2(dense_tensor, config(1, shard_cells=64))
        assert_same_factors(a, b)

    def test_memmap_slices_through_process_runner(self, tmp_path):
        rng = np.random.default_rng(5)
        mm = []
        for i, n in enumerate((40, 55, 23, 80)):
            path = tmp_path / f"s{i}.npy"
            np.save(path, rng.standard_normal((n, 20)))
            mm.append(np.load(path, mmap_mode="r"))
        tensor = IrregularTensor(mm, copy=False)
        a = dpar2(tensor, config(2, "process", max_iterations=4))
        b = dpar2(tensor, config(4, "serial", max_iterations=4))
        assert_same_factors(a, b)


class TestShardingStats:
    def test_stats_populated(self, dense_tensor):
        result = dpar2(dense_tensor, config(2))
        stats = result.stats["sharding"]
        assert stats["shards"] == 2
        assert stats["backend"] == "serial"
        assert stats["requested_shards"] == 2
        assert stats["imbalance"] >= 1.0
        assert stats["allreduce_bytes_total"] > 0
        assert stats["allreduce_bytes_per_sweep"] > 0
        assert (
            stats["allreduce_bytes_per_sweep_per_shard"]
            == stats["allreduce_bytes_per_sweep"] / 2
        )

    def test_allreduce_independent_of_row_counts(self):
        # Same K, same rank, 8x taller slices: sweep traffic must not move.
        rng = np.random.default_rng(2)
        small = IrregularTensor(
            [rng.standard_normal((n, 24)) for n in (20, 30, 25, 35)]
        )
        tall = IrregularTensor(
            [rng.standard_normal((8 * n, 24)) for n in (20, 30, 25, 35)]
        )
        cfg = config(2, max_iterations=4)
        bytes_small = dpar2(small, cfg).stats["sharding"][
            "allreduce_bytes_per_sweep"
        ]
        bytes_tall = dpar2(tall, cfg).stats["sharding"][
            "allreduce_bytes_per_sweep"
        ]
        assert bytes_small == bytes_tall

    def test_unsharded_has_no_sharding_stats(self, dense_tensor):
        result = dpar2(dense_tensor, config(None))
        assert "sharding" not in result.stats


class TestConfigValidation:
    def test_negative_shards_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            DecompositionConfig(shards=-1)

    def test_bad_shard_backend_rejected(self):
        with pytest.raises(ValueError, match="shard_backend"):
            DecompositionConfig(shard_backend="smoke-signals")

    def test_bad_shard_cells_rejected(self):
        with pytest.raises(ValueError, match="shard_cells"):
            DecompositionConfig(shard_cells=0)

    def test_shards_require_numpy_compute(self):
        with pytest.raises(ValueError, match="numpy"):
            DecompositionConfig(shards=2, compute_backend="torch")

    def test_exact_convergence_rejected(self, dense_tensor):
        with pytest.raises(ValueError, match="exact_convergence"):
            dpar2(dense_tensor, config(2), exact_convergence=True)

    def test_partition_ablation_rejected(self, dense_tensor):
        with pytest.raises(ValueError, match="greedy"):
            dpar2(dense_tensor, config(2), use_greedy_partition=False)


# --------------------------------------------------------------------- #
# streaming through the coordinator
# --------------------------------------------------------------------- #


class TestShardedStreaming:
    def _batches(self):
        rng = np.random.default_rng(3)
        return [
            [rng.standard_normal((n, 24)) for n in (30, 45, 18)],
            [rng.standard_normal((n, 24)) for n in (60, 12, 27, 33)],
        ]

    def _stream(self, batches, shards=None, backend="serial"):
        cfg = DecompositionConfig(
            rank=4, max_iterations=5, random_state=11,
            shards=shards, shard_backend=backend,
        )
        stream = StreamingDpar2(cfg)
        for batch in batches:
            stream.absorb_many(batch, refresh=False)
        return stream

    def test_stage1_matches_batched_kernel_bitwise(self):
        rng = np.random.default_rng(4)
        mats = [rng.standard_normal((n, 20)) for n in (25, 40, 15, 33)]
        ref = batched_randomized_svd(
            mats, 4, oversampling=5, power_iterations=1,
            generators=spawn_generators(9, len(mats)),
        )
        sharded = sharded_stage1(
            mats, spawn_generators(9, len(mats)),
            rank=4, oversampling=5, power_iterations=1,
            n_shards=2, shard_backend="serial", n_cells=4,
        )
        for a, b in zip(ref, sharded):
            assert np.array_equal(a.U, b.U)
            assert np.array_equal(a.singular_values, b.singular_values)
            assert np.array_equal(a.V, b.V)

    def test_absorbed_state_matches_in_process_path(self):
        batches = self._batches()
        ref = self._stream(batches)
        sharded = self._stream(batches, shards=2)
        assert np.array_equal(ref._D, sharded._D)
        for a, b in zip(ref._A, sharded._A):
            assert np.array_equal(a, b)
        for a, b in zip(ref._G, sharded._G):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "shards,backend", [(2, "serial"), (2, "thread"), (4, "process")]
    )
    def test_result_invariant_across_shard_counts(self, shards, backend):
        batches = self._batches()
        ref = self._stream(batches, shards=1).result()
        other = self._stream(batches, shards=shards, backend=backend).result()
        assert_same_factors(ref, other)

    def test_publish_serve_round_trip(self, tmp_path):
        from repro.serve.store import FactorStore

        batches = self._batches()
        stream = self._stream(batches, shards=2)
        result = stream.result()
        assert result.stats["sharding"]["shards"] == 2

        store = FactorStore(tmp_path / "registry")
        version = store.publish(result, config=stream.config)
        loaded = store.get(version).result
        assert_same_factors(result, loaded)
