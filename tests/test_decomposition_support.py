"""Tests for convergence monitoring, initialization, results, registry."""

import numpy as np
import pytest

from repro.decomposition.convergence import ConvergenceMonitor
from repro.decomposition.initialization import initialize_factors
from repro.decomposition.registry import DISPLAY_NAMES, SOLVERS, get_solver
from repro.decomposition.result import IterationRecord, Parafac2Result
from repro.linalg.qr import random_orthonormal


class TestConvergenceMonitor:
    def test_first_update_never_converges(self):
        monitor = ConvergenceMonitor(1.0)
        assert not monitor.update(5.0)

    def test_converges_on_small_change(self):
        monitor = ConvergenceMonitor(1e-2)
        monitor.update(100.0)
        assert monitor.update(99.999)

    def test_does_not_converge_on_large_change(self):
        monitor = ConvergenceMonitor(1e-2)
        monitor.update(100.0)
        assert not monitor.update(50.0)

    def test_geometric_decay_to_zero_converges(self):
        """The scenario that motivated scaling by the initial value."""
        monitor = ConvergenceMonitor(1e-6)
        value = 1.0
        converged = False
        for _ in range(100):
            value *= 0.5
            if monitor.update(value):
                converged = True
                break
        assert converged

    def test_nan_raises(self):
        monitor = ConvergenceMonitor(1e-4)
        with pytest.raises(FloatingPointError, match="NaN"):
            monitor.update(float("nan"))

    def test_last_property(self):
        monitor = ConvergenceMonitor(0.1)
        monitor.update(3.0)
        assert monitor.last == 3.0

    def test_last_before_update_raises(self):
        with pytest.raises(RuntimeError, match="no criterion"):
            _ = ConvergenceMonitor(0.1).last

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            ConvergenceMonitor(-1.0)

    def test_zero_tolerance_never_converges(self):
        monitor = ConvergenceMonitor(0.0)
        monitor.update(1.0)
        assert not monitor.update(1.0 - 1e-15)


class TestInitializeFactors:
    def test_shapes(self):
        init = initialize_factors(12, 5, 3, random_state=0)
        assert init.H.shape == (3, 3)
        assert init.V.shape == (12, 3)
        assert init.W.shape == (5, 3)

    def test_H_is_identity(self):
        init = initialize_factors(12, 5, 3, random_state=0)
        np.testing.assert_array_equal(init.H, np.eye(3))

    def test_W_is_ones(self):
        init = initialize_factors(12, 5, 3, random_state=0)
        np.testing.assert_array_equal(init.W, np.ones((5, 3)))

    def test_V_orthonormal_when_possible(self):
        init = initialize_factors(12, 5, 3, random_state=0)
        np.testing.assert_allclose(init.V.T @ init.V, np.eye(3), atol=1e-10)

    def test_V_fallback_when_J_below_rank(self):
        init = initialize_factors(2, 5, 4, random_state=0)
        assert init.V.shape == (2, 4)

    def test_deterministic(self):
        a = initialize_factors(8, 3, 2, random_state=7)
        b = initialize_factors(8, 3, 2, random_state=7)
        np.testing.assert_array_equal(a.V, b.V)


def make_result(rng, row_counts=(6, 8), J=5, R=3):
    Q = [random_orthonormal(n, R, rng) for n in row_counts]
    return Parafac2Result(
        Q=Q,
        H=rng.standard_normal((R, R)),
        S=np.abs(rng.standard_normal((len(row_counts), R))) + 0.1,
        V=rng.standard_normal((J, R)),
        method="test",
    )


class TestParafac2Result:
    def test_basic_properties(self, rng):
        result = make_result(rng)
        assert result.rank == 3
        assert result.n_slices == 2
        assert result.total_seconds == 0.0

    def test_U_is_QH(self, rng):
        result = make_result(rng)
        np.testing.assert_allclose(result.U(0), result.Q[0] @ result.H)

    def test_S_matrix_diagonal(self, rng):
        result = make_result(rng)
        np.testing.assert_array_equal(result.S_matrix(1), np.diag(result.S[1]))

    def test_reconstruct_slice(self, rng):
        result = make_result(rng)
        expected = result.Q[0] @ result.H @ np.diag(result.S[0]) @ result.V.T
        np.testing.assert_allclose(result.reconstruct_slice(0), expected,
                                   atol=1e-12)

    def test_reconstruct_returns_tensor(self, rng):
        result = make_result(rng)
        tensor = result.reconstruct()
        assert tensor.n_slices == 2
        assert tensor.row_counts == [6, 8]

    def test_residual_matches_naive(self, rng):
        from repro.tensor.irregular import IrregularTensor

        result = make_result(rng)
        data = IrregularTensor([rng.standard_normal((n, 5)) for n in (6, 8)])
        fast = result.residual_squared(data)
        naive = sum(
            np.sum((data[k] - result.reconstruct_slice(k)) ** 2)
            for k in range(2)
        )
        assert fast == pytest.approx(naive, rel=1e-9)

    def test_perfect_fitness_on_own_reconstruction(self, rng):
        result = make_result(rng)
        recon = result.reconstruct()
        assert result.fitness(recon) == pytest.approx(1.0, abs=1e-9)

    def test_slice_count_mismatch_rejected(self, rng):
        from repro.tensor.irregular import IrregularTensor

        result = make_result(rng)
        data = IrregularTensor([rng.standard_normal((6, 5))])
        with pytest.raises(ValueError, match="slices"):
            result.residual_squared(data)

    def test_column_mismatch_rejected(self, rng):
        from repro.tensor.irregular import IrregularTensor

        result = make_result(rng)
        data = IrregularTensor([rng.standard_normal((n, 9)) for n in (6, 8)])
        with pytest.raises(ValueError, match="J="):
            result.residual_squared(data)

    def test_invalid_H_shape_rejected(self, rng):
        with pytest.raises(ValueError, match="square"):
            Parafac2Result(
                Q=[random_orthonormal(6, 3, rng)],
                H=rng.standard_normal((3, 2)),
                S=np.ones((1, 3)),
                V=rng.standard_normal((5, 3)),
            )

    def test_invalid_S_shape_rejected(self, rng):
        with pytest.raises(ValueError, match="S must be"):
            Parafac2Result(
                Q=[random_orthonormal(6, 3, rng)],
                H=np.eye(3),
                S=np.ones((2, 3)),
                V=rng.standard_normal((5, 3)),
            )

    def test_factor_nbytes_positive(self, rng):
        assert make_result(rng).factor_nbytes() > 0

    def test_iteration_record(self):
        record = IterationRecord(iteration=3, criterion=0.5, seconds=0.1)
        assert record.iteration == 3


class TestRegistry:
    def test_all_four_solvers_registered(self):
        assert set(SOLVERS) == {"dpar2", "rd_als", "parafac2_als", "spartan"}

    def test_display_names_cover_solvers(self):
        assert set(DISPLAY_NAMES) == set(SOLVERS)

    def test_lookup_case_insensitive(self):
        assert get_solver("DPar2") is SOLVERS["dpar2"]

    def test_lookup_dash_normalized(self):
        assert get_solver("rd-als") is SOLVERS["rd_als"]

    def test_unknown_solver_rejected(self):
        with pytest.raises(KeyError, match="unknown solver"):
            get_solver("nope")
