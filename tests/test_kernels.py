"""Batched kernels, sweep workspace, and the dtype-configurable pipeline.

The contract under test (ISSUE 2): batching, workspace reuse, and dtype
threading are pure performance features — float64 results must be *bitwise*
identical to the per-slice/per-call reference paths, and float32 results
must track float64 to tolerance.
"""

import tracemalloc

import numpy as np
import pytest

from repro.decomposition.dpar2 import compress_tensor, dpar2
from repro.linalg.kernels import (
    SweepWorkspace,
    acquire_sweep_workspace,
    batched_randomized_svd,
    batched_stacked_matmul,
    bucket_by_rows,
    release_sweep_workspace,
)
from repro.linalg.randomized_svd import randomized_svd
from repro.tensor.irregular import IrregularTensor
from repro.tensor.mmap_store import MmapSliceStore
from repro.tensor.random import low_rank_irregular_tensor, random_irregular_tensor
from repro.util.config import DecompositionConfig
from repro.util.rng import spawn_generators

# Ragged heights: two multi-slice buckets (30, 45) and a singleton (17).
RAGGED_ROWS = [30, 45, 30, 17, 45, 30]


def _per_slice_reference(tensor, rank, seed):
    generators = spawn_generators(seed, tensor.n_slices)
    return [
        randomized_svd(Xk, rank, random_state=g)
        for Xk, g in zip(tensor.slices, generators)
    ]


class TestBatchedStage1:
    def test_matches_per_slice_bitwise(self):
        tensor = random_irregular_tensor(RAGGED_ROWS, n_columns=20, random_state=3)
        expected = _per_slice_reference(tensor, 5, 42)
        got = batched_randomized_svd(
            tensor.slices, 5, generators=spawn_generators(42, tensor.n_slices)
        )
        assert len(got) == tensor.n_slices
        for ref, out in zip(expected, got):
            assert np.array_equal(ref.U, out.U)
            assert np.array_equal(ref.singular_values, out.singular_values)
            assert np.array_equal(ref.V, out.V)

    def test_singleton_bucket_matches(self):
        """A bucket of size 1 must route through the plain 2-D kernel."""
        tensor = random_irregular_tensor([25], n_columns=12, random_state=0)
        [out] = batched_randomized_svd(
            tensor.slices, 4, generators=spawn_generators(7, 1)
        )
        [ref] = _per_slice_reference(tensor, 4, 7)
        assert np.array_equal(ref.U, out.U)

    def test_padded_buckets_close_to_reference(self):
        """Pad-to-bucket merging is value-identical up to roundoff."""
        tensor = random_irregular_tensor(
            [40, 44, 38, 42, 40], n_columns=20, random_state=5
        )
        expected = _per_slice_reference(tensor, 4, 11)
        got = batched_randomized_svd(
            tensor.slices,
            4,
            generators=spawn_generators(11, tensor.n_slices),
            max_pad_ratio=0.25,
        )
        for k, (ref, out) in enumerate(zip(expected, got)):
            assert out.U.shape == (tensor.row_counts[k], 4)
            np.testing.assert_allclose(out.U, ref.U, atol=1e-9)
            np.testing.assert_allclose(
                out.singular_values, ref.singular_values, atol=1e-9
            )
            # Padded U must stay orthonormal after the zero rows are cut.
            np.testing.assert_allclose(
                out.U.T @ out.U, np.eye(4), atol=1e-10
            )

    def test_compress_tensor_batched_equals_per_slice(self):
        tensor = random_irregular_tensor(RAGGED_ROWS, n_columns=16, random_state=9)
        batched = compress_tensor(
            tensor, 5, random_state=0, stage1_batching="batched", backend="serial"
        )
        per_slice = compress_tensor(
            tensor, 5, random_state=0, stage1_batching="per-slice", backend="serial"
        )
        for Ab, Ap in zip(batched.A, per_slice.A):
            assert np.array_equal(Ab, Ap)
        assert np.array_equal(batched.D, per_slice.D)
        assert np.array_equal(batched.E, per_slice.E)
        assert np.array_equal(batched.F_blocks, per_slice.F_blocks)

    def test_generator_count_mismatch_raises(self):
        tensor = random_irregular_tensor([10, 12], n_columns=8, random_state=0)
        with pytest.raises(ValueError, match="align"):
            batched_randomized_svd(
                tensor.slices, 3, generators=spawn_generators(0, 1)
            )


class TestBucketing:
    def test_exact_buckets_group_equal_heights(self):
        buckets = bucket_by_rows([30, 45, 30, 17, 45, 30])
        assert buckets == [(17, [3]), (30, [0, 2, 5]), (45, [1, 4])]

    def test_padded_merge_respects_ratio_and_sketch_floor(self):
        buckets = bucket_by_rows(
            [100, 95, 90, 50, 6],
            n_columns=40,
            rank=8,
            oversampling=2,
            max_pad_ratio=0.2,
        )
        # 100/95/90 merge (within 20%, all >= rank+oversampling); 50 is out
        # of ratio; 6 < sketch floor stays exact.
        assert (100, [0, 1, 2]) in buckets
        assert (50, [3]) in buckets
        assert (6, [4]) in buckets

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError, match="max_pad_ratio"):
            bucket_by_rows([3, 3], max_pad_ratio=-0.1)


class TestBatchedStackedMatmul:
    def test_matches_loop_bitwise(self):
        rng = np.random.default_rng(0)
        lefts = [rng.standard_normal((m, 4)) for m in [9, 7, 9, 5, 7]]
        rights = rng.standard_normal((5, 4, 3))
        got = batched_stacked_matmul(lefts, rights)
        for k, out in enumerate(got):
            assert np.array_equal(out, lefts[k] @ rights[k])


class TestSweepWorkspace:
    def test_dpar2_results_stable_across_consecutive_calls(self):
        """Workspace reuse (cache hit on the 2nd call) must not leak state."""
        tensor = low_rank_irregular_tensor(
            [30, 45, 38], n_columns=20, rank=3, noise=0.0, random_state=2
        )
        config = DecompositionConfig(rank=3, max_iterations=10, random_state=5)
        first = dpar2(tensor, config)
        second = dpar2(tensor, config)
        for Q1, Q2 in zip(first.Q, second.Q):
            assert np.array_equal(Q1, Q2)
        assert np.array_equal(first.V, second.V)
        assert np.array_equal(first.H, second.H)
        assert np.array_equal(first.S, second.S)
        assert [r.criterion for r in first.history] == [
            r.criterion for r in second.history
        ]

    def test_interleaved_shapes_keep_results_stable(self):
        """Alternating geometries must each keep their own buffers."""
        t_a = low_rank_irregular_tensor(
            [30, 45, 38], n_columns=20, rank=3, noise=0.0, random_state=2
        )
        t_b = random_irregular_tensor([15, 25, 20, 30], n_columns=12, random_state=0)
        cfg = DecompositionConfig(rank=3, max_iterations=6, random_state=1)
        ref_a = dpar2(t_a, cfg)
        ref_b = dpar2(t_b, cfg)
        again_a = dpar2(t_a, cfg)
        again_b = dpar2(t_b, cfg)
        assert np.array_equal(ref_a.V, again_a.V)
        assert np.array_equal(ref_b.V, again_b.V)

    def test_acquire_checks_out_exclusive_instances(self):
        ws1 = acquire_sweep_workspace(4, 10, 3)
        ws2 = acquire_sweep_workspace(4, 10, 3)
        assert ws1 is not ws2
        release_sweep_workspace(ws1)
        release_sweep_workspace(ws2)
        assert acquire_sweep_workspace(4, 10, 3) is ws2
        release_sweep_workspace(ws2)

    def test_oversized_workspaces_are_not_cached(self, monkeypatch):
        from repro.linalg import kernels

        monkeypatch.setattr(kernels, "_CACHE_MAX_BYTES", 1024)
        ws = acquire_sweep_workspace(50, 30, 4)
        assert ws.nbytes > 1024
        release_sweep_workspace(ws)
        assert acquire_sweep_workspace(50, 30, 4) is not ws

    def test_rejects_compression_rank_below_target(self):
        with pytest.raises(ValueError, match="below target"):
            SweepWorkspace(4, 10, 5, Rc=3)

    def test_steady_state_sweeps_do_not_grow_memory(self):
        """tracemalloc: extra sweeps beyond the 2nd must not accrete heap.

        Preallocated workspace buffers mean the peak traced allocation of a
        long run exceeds a short run's only by the per-sweep bookkeeping
        (history records, small solve outputs), not by per-sweep copies of
        the K-sized contraction temporaries.
        """
        tensor = random_irregular_tensor(
            [24] * 30 + [36] * 30, n_columns=18, random_state=4
        )
        compressed = compress_tensor(tensor, 6, random_state=0)
        config = DecompositionConfig(
            rank=6, tolerance=0.0, random_state=3, backend="serial"
        )

        def peak_of(n_sweeps):
            dpar2(tensor, config, compressed=compressed, max_iterations=2)  # warm
            tracemalloc.start()
            dpar2(tensor, config, compressed=compressed, max_iterations=n_sweeps)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return peak

        short, long = peak_of(2), peak_of(12)
        # 10 extra sweeps; K*R*R float64 temporaries would cost ~230 kB each
        # per sweep if reallocated. Allow slack for history + solver output.
        assert long - short < 128_000, f"sweeps leak memory: {short} -> {long}"


class TestFloat32Pipeline:
    def test_fit_quality_close_to_float64(self):
        tensor = low_rank_irregular_tensor(
            [40, 60, 35, 50, 45], n_columns=24, rank=4, noise=0.02, random_state=1
        )
        cfg = DecompositionConfig(rank=4, max_iterations=20, random_state=7)
        r64 = dpar2(tensor, cfg)
        r32 = dpar2(tensor, cfg.with_(dtype="float32"))
        assert r32.V.dtype == np.float32
        assert all(Qk.dtype == np.float32 for Qk in r32.Q)
        f64 = r64.fitness(tensor)
        f32 = r32.fitness(tensor.astype(np.float32))
        assert f32 == pytest.approx(f64, abs=1e-4)

    def test_compression_dtype_follows_tensor(self):
        tensor = random_irregular_tensor([20, 30], n_columns=10, random_state=0)
        c32 = compress_tensor(tensor.astype(np.float32), 4, random_state=0)
        assert c32.D.dtype == np.float32
        assert c32.F_blocks.dtype == np.float32
        assert c32.nbytes < compress_tensor(tensor, 4, random_state=0).nbytes

    def test_irregular_tensor_dtype_round_trip(self):
        tensor = random_irregular_tensor([12, 15], n_columns=8, random_state=1)
        t32 = tensor.astype(np.float32)
        assert t32.dtype == np.float32
        assert t32.astype(np.float32) is t32
        assert t32.nbytes * 2 == tensor.nbytes
        assert t32.subset([0]).dtype == np.float32
        assert t32.scaled(2.0).dtype == np.float32

    def test_mmap_store_float32_round_trip(self, tmp_path):
        tensor = random_irregular_tensor([10, 14], n_columns=6, random_state=2)
        t32 = tensor.astype(np.float32)
        store = t32.to_store(tmp_path / "store32")
        assert store.dtype == np.float32
        assert store.nbytes == t32.nbytes
        loaded = IrregularTensor.from_store(MmapSliceStore.open(tmp_path / "store32"))
        assert loaded.dtype == np.float32
        for a, b in zip(t32, loaded):
            assert np.array_equal(a, b)

    def test_config_dtype_validation(self):
        assert DecompositionConfig(dtype=np.float32).dtype == "float32"
        assert DecompositionConfig(dtype="float64").numpy_dtype == np.float64
        with pytest.raises(ValueError, match="dtype"):
            DecompositionConfig(dtype="int32")

    def test_exact_convergence_streams_out_of_core(self, tmp_path):
        """Memmap tensors use the streaming exact-error path (no K×Rc×J
        stack) and agree with the hoisted in-RAM evaluation."""
        tensor = low_rank_irregular_tensor(
            [30, 45, 38], n_columns=20, rank=3, noise=0.02, random_state=6
        )
        store = tensor.to_store(tmp_path / "store")
        ooc = IrregularTensor.from_store(store)
        cfg = DecompositionConfig(rank=3, max_iterations=5, random_state=4)
        in_ram = dpar2(tensor, cfg, exact_convergence=True)
        streamed = dpar2(ooc, cfg, exact_convergence=True)
        ram_hist = [r.criterion for r in in_ram.history]
        ooc_hist = [r.criterion for r in streamed.history]
        np.testing.assert_allclose(ooc_hist, ram_hist, rtol=1e-9)

    def test_randomized_svd_preserves_float32(self):
        A = np.random.default_rng(0).standard_normal((30, 12)).astype(np.float32)
        out = randomized_svd(A, 4, random_state=0)
        assert out.U.dtype == np.float32
        ref = randomized_svd(A.astype(np.float64), 4, random_state=0)
        np.testing.assert_allclose(out.singular_values, ref.singular_values, rtol=1e-4)
