"""Tests for the COPA-style constrained DPar2 extension."""

import numpy as np
import pytest

from repro.decomposition.constrained import constrained_dpar2, project_nonnegative
from repro.decomposition.dpar2 import compress_tensor, dpar2
from repro.util.config import DecompositionConfig
from tests.conftest import assert_valid_parafac2_result


class TestProjection:
    def test_clips_negatives(self):
        out = project_nonnegative(np.array([[-1.0, 2.0], [0.0, -3.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0], [0.0, 0.0]])

    def test_idempotent(self, rng):
        x = np.abs(rng.standard_normal((3, 3)))
        np.testing.assert_array_equal(project_nonnegative(x), x)


class TestUnconstrainedEquivalence:
    def test_matches_plain_dpar2(self, structured_tensor):
        """With every constraint off, the solver must equal dpar2 exactly."""
        config = DecompositionConfig(rank=4, max_iterations=8,
                                     tolerance=0.0, random_state=0)
        compressed = compress_tensor(structured_tensor, 4, random_state=0)
        plain = dpar2(structured_tensor, config, compressed=compressed)
        constrained = constrained_dpar2(
            structured_tensor, config, compressed=compressed
        )
        np.testing.assert_allclose(constrained.V, plain.V, atol=1e-10)
        np.testing.assert_allclose(constrained.H, plain.H, atol=1e-10)
        np.testing.assert_allclose(constrained.S, plain.S, atol=1e-10)


class TestNonnegativeWeights:
    def test_weights_are_nonnegative(self, structured_tensor):
        config = DecompositionConfig(rank=4, max_iterations=10,
                                     random_state=0)
        result = constrained_dpar2(
            structured_tensor, config, nonnegative_weights=True
        )
        assert np.all(result.S >= 0.0)

    def test_result_still_valid(self, structured_tensor):
        config = DecompositionConfig(rank=4, max_iterations=10,
                                     random_state=0)
        result = constrained_dpar2(
            structured_tensor, config, nonnegative_weights=True
        )
        assert result.method == "constrained_dpar2"
        assert_valid_parafac2_result(result, structured_tensor)

    def test_fitness_cost_is_bounded(self, structured_tensor):
        """Projection may cost fitness but must stay in the same regime."""
        config = DecompositionConfig(rank=4, max_iterations=20,
                                     random_state=0)
        free = dpar2(structured_tensor, config).fitness(structured_tensor)
        constrained = constrained_dpar2(
            structured_tensor, config, nonnegative_weights=True
        ).fitness(structured_tensor)
        assert constrained > free - 0.25


class TestSmoothV:
    def test_zero_smoothing_matches_plain(self, structured_tensor):
        config = DecompositionConfig(rank=4, max_iterations=5,
                                     tolerance=0.0, random_state=0)
        compressed = compress_tensor(structured_tensor, 4, random_state=0)
        a = constrained_dpar2(structured_tensor, config,
                              compressed=compressed, smooth_v=0.0)
        b = dpar2(structured_tensor, config, compressed=compressed)
        np.testing.assert_allclose(a.V, b.V, atol=1e-10)

    def test_smoothing_damps_updates(self, structured_tensor):
        """Stronger smoothing keeps V closer to its initialization after
        one sweep."""
        from repro.decomposition.initialization import initialize_factors

        config = DecompositionConfig(rank=4, max_iterations=1,
                                     tolerance=0.0, random_state=0)
        compressed = compress_tensor(structured_tensor, 4, random_state=0)
        init = initialize_factors(
            structured_tensor.n_columns, structured_tensor.n_slices, 4,
            random_state=0,
        )
        light = constrained_dpar2(structured_tensor, config,
                                  compressed=compressed, smooth_v=0.0)
        heavy = constrained_dpar2(structured_tensor, config,
                                  compressed=compressed, smooth_v=100.0)
        # Compare subspace distance to the initial V (sign-insensitive).
        def distance(V):
            P = V @ V.T
            P0 = init.V @ init.V.T
            return np.linalg.norm(P - P0)

        assert distance(heavy.V) < distance(light.V)

    def test_negative_smoothing_rejected(self, structured_tensor):
        with pytest.raises(ValueError, match="smooth_v"):
            constrained_dpar2(
                structured_tensor,
                DecompositionConfig(rank=4, max_iterations=1),
                smooth_v=-1.0,
            )

    def test_smoothed_fitness_reasonable(self, structured_tensor):
        config = DecompositionConfig(rank=4, max_iterations=15,
                                     random_state=0)
        result = constrained_dpar2(structured_tensor, config, smooth_v=0.1)
        assert result.fitness(structured_tensor) > 0.5
