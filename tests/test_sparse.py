"""Tests for the from-scratch COO/CSR sparse substrate."""

import numpy as np
import pytest

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import dense_to_sparse, random_sparse, sparsity


@pytest.fixture
def dense(rng):
    A = rng.standard_normal((6, 8))
    A[A < 0.3] = 0.0  # make it actually sparse
    return A


class TestCoo:
    def test_roundtrip_dense(self, dense):
        coo = CooMatrix.from_dense(dense)
        np.testing.assert_array_equal(coo.to_dense(), dense)

    def test_nnz(self, dense):
        coo = CooMatrix.from_dense(dense)
        assert coo.nnz == np.count_nonzero(dense)

    def test_duplicates_summed_in_to_dense(self):
        coo = CooMatrix((2, 2), [0, 0], [1, 1], [2.0, 3.0])
        assert coo.to_dense()[0, 1] == 5.0

    def test_duplicates_summed_in_csr(self):
        csr = CooMatrix((2, 2), [0, 0], [1, 1], [2.0, 3.0]).to_csr()
        assert csr.to_dense()[0, 1] == 5.0
        assert csr.nnz == 1

    def test_cancelled_duplicates_dropped(self):
        csr = CooMatrix((2, 2), [0, 0], [1, 1], [2.0, -2.0]).to_csr()
        assert csr.nnz == 0

    def test_threshold(self, dense):
        coo = CooMatrix.from_dense(dense, threshold=0.5)
        assert np.all(np.abs(coo.values) > 0.5)

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="out of bounds"):
            CooMatrix((2, 2), [2], [0], [1.0])
        with pytest.raises(ValueError, match="out of bounds"):
            CooMatrix((2, 2), [0], [5], [1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            CooMatrix((2, 2), [0, 1], [0], [1.0])

    def test_empty_to_csr(self):
        csr = CooMatrix((3, 4), [], [], []).to_csr()
        assert csr.nnz == 0
        np.testing.assert_array_equal(csr.to_dense(), np.zeros((3, 4)))


class TestCsr:
    def test_roundtrip(self, dense):
        csr = dense_to_sparse(dense)
        np.testing.assert_array_equal(csr.to_dense(), dense)

    def test_matvec(self, dense, rng):
        csr = dense_to_sparse(dense)
        x = rng.standard_normal(8)
        np.testing.assert_allclose(csr.matvec(x), dense @ x, atol=1e-12)

    def test_matvec_length_check(self, dense):
        csr = dense_to_sparse(dense)
        with pytest.raises(ValueError, match="length"):
            csr.matvec(np.ones(3))

    def test_matmul_dense(self, dense, rng):
        csr = dense_to_sparse(dense)
        B = rng.standard_normal((8, 3))
        np.testing.assert_allclose(csr.matmul_dense(B), dense @ B, atol=1e-12)

    def test_rmatmul_dense(self, dense, rng):
        csr = dense_to_sparse(dense)
        B = rng.standard_normal((6, 4))
        np.testing.assert_allclose(csr.rmatmul_dense(B), B.T @ dense, atol=1e-12)

    def test_transpose(self, dense):
        csr = dense_to_sparse(dense)
        np.testing.assert_array_equal(csr.transpose().to_dense(), dense.T)

    def test_squared_norm(self, dense):
        csr = dense_to_sparse(dense)
        assert csr.squared_norm() == pytest.approx(np.sum(dense**2))

    def test_row_norms(self, dense):
        csr = dense_to_sparse(dense)
        np.testing.assert_allclose(
            csr.row_norms_squared(), np.sum(dense**2, axis=1), atol=1e-12
        )

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError, match="indptr"):
            CsrMatrix((2, 2), [0, 1], [0], [1.0])  # wrong indptr length

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CsrMatrix((2, 2), [0, 2, 1], [0], [1.0])

    def test_density(self, dense):
        csr = dense_to_sparse(dense)
        assert csr.density == pytest.approx(csr.nnz / dense.size)


class TestOps:
    def test_sparsity_dense_array(self):
        A = np.array([[0.0, 1.0], [0.0, 0.0]])
        assert sparsity(A) == 0.75

    def test_sparsity_csr(self):
        csr = dense_to_sparse(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert sparsity(csr) == 0.75

    def test_sparsity_empty(self):
        assert sparsity(np.empty((0, 0))) == 0.0

    def test_random_sparse_density(self):
        csr = random_sparse((50, 40), 0.1, random_state=0)
        assert csr.nnz == round(0.1 * 50 * 40)

    def test_random_sparse_zero_density(self):
        csr = random_sparse((5, 5), 0.0, random_state=0)
        assert csr.nnz == 0

    def test_random_sparse_bad_density(self):
        with pytest.raises(ValueError, match="density"):
            random_sparse((5, 5), 1.5)

    def test_random_sparse_no_duplicates(self):
        csr = random_sparse((10, 10), 0.5, random_state=1)
        dense = csr.to_dense()
        assert csr.nnz == np.count_nonzero(dense)
