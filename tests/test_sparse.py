"""Tests for the from-scratch COO/CSR sparse substrate."""

import numpy as np
import pytest

import repro.sparse.stacked as stacked_module
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import dense_to_sparse, random_sparse, sparsity
from repro.sparse.stacked import StackedCsr, spmm_backend


@pytest.fixture
def dense(rng):
    A = rng.standard_normal((6, 8))
    A[A < 0.3] = 0.0  # make it actually sparse
    return A


class TestCoo:
    def test_roundtrip_dense(self, dense):
        coo = CooMatrix.from_dense(dense)
        np.testing.assert_array_equal(coo.to_dense(), dense)

    def test_nnz(self, dense):
        coo = CooMatrix.from_dense(dense)
        assert coo.nnz == np.count_nonzero(dense)

    def test_duplicates_summed_in_to_dense(self):
        coo = CooMatrix((2, 2), [0, 0], [1, 1], [2.0, 3.0])
        assert coo.to_dense()[0, 1] == 5.0

    def test_duplicates_summed_in_csr(self):
        csr = CooMatrix((2, 2), [0, 0], [1, 1], [2.0, 3.0]).to_csr()
        assert csr.to_dense()[0, 1] == 5.0
        assert csr.nnz == 1

    def test_cancelled_duplicates_dropped(self):
        csr = CooMatrix((2, 2), [0, 0], [1, 1], [2.0, -2.0]).to_csr()
        assert csr.nnz == 0

    def test_threshold(self, dense):
        coo = CooMatrix.from_dense(dense, threshold=0.5)
        assert np.all(np.abs(coo.values) > 0.5)

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="out of bounds"):
            CooMatrix((2, 2), [2], [0], [1.0])
        with pytest.raises(ValueError, match="out of bounds"):
            CooMatrix((2, 2), [0], [5], [1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            CooMatrix((2, 2), [0, 1], [0], [1.0])

    def test_empty_to_csr(self):
        csr = CooMatrix((3, 4), [], [], []).to_csr()
        assert csr.nnz == 0
        np.testing.assert_array_equal(csr.to_dense(), np.zeros((3, 4)))


class TestCsr:
    def test_roundtrip(self, dense):
        csr = dense_to_sparse(dense)
        np.testing.assert_array_equal(csr.to_dense(), dense)

    def test_matvec(self, dense, rng):
        csr = dense_to_sparse(dense)
        x = rng.standard_normal(8)
        np.testing.assert_allclose(csr.matvec(x), dense @ x, atol=1e-12)

    def test_matvec_length_check(self, dense):
        csr = dense_to_sparse(dense)
        with pytest.raises(ValueError, match="length"):
            csr.matvec(np.ones(3))

    def test_matmul_dense(self, dense, rng):
        csr = dense_to_sparse(dense)
        B = rng.standard_normal((8, 3))
        np.testing.assert_allclose(csr.matmul_dense(B), dense @ B, atol=1e-12)

    def test_rmatmul_dense(self, dense, rng):
        csr = dense_to_sparse(dense)
        B = rng.standard_normal((6, 4))
        np.testing.assert_allclose(csr.rmatmul_dense(B), B.T @ dense, atol=1e-12)

    def test_transpose(self, dense):
        csr = dense_to_sparse(dense)
        np.testing.assert_array_equal(csr.transpose().to_dense(), dense.T)

    def test_squared_norm(self, dense):
        csr = dense_to_sparse(dense)
        assert csr.squared_norm() == pytest.approx(np.sum(dense**2))

    def test_row_norms(self, dense):
        csr = dense_to_sparse(dense)
        np.testing.assert_allclose(
            csr.row_norms_squared(), np.sum(dense**2, axis=1), atol=1e-12
        )

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError, match="indptr"):
            CsrMatrix((2, 2), [0, 1], [0], [1.0])  # wrong indptr length

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CsrMatrix((2, 2), [0, 2, 1], [0], [1.0])

    def test_density(self, dense):
        csr = dense_to_sparse(dense)
        assert csr.density == pytest.approx(csr.nnz / dense.size)


class TestOps:
    def test_sparsity_dense_array(self):
        A = np.array([[0.0, 1.0], [0.0, 0.0]])
        assert sparsity(A) == 0.75

    def test_sparsity_csr(self):
        csr = dense_to_sparse(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert sparsity(csr) == 0.75

    def test_sparsity_empty(self):
        assert sparsity(np.empty((0, 0))) == 0.0

    def test_random_sparse_density(self):
        csr = random_sparse((50, 40), 0.1, random_state=0)
        assert csr.nnz == round(0.1 * 50 * 40)

    def test_random_sparse_zero_density(self):
        csr = random_sparse((5, 5), 0.0, random_state=0)
        assert csr.nnz == 0

    def test_random_sparse_bad_density(self):
        with pytest.raises(ValueError, match="density"):
            random_sparse((5, 5), 1.5)

    def test_random_sparse_no_duplicates(self):
        csr = random_sparse((10, 10), 0.5, random_state=1)
        dense = csr.to_dense()
        assert csr.nnz == np.count_nonzero(dense)


class TestDtypePreservation:
    """Satellite: no hardcoded float64 casts anywhere in the substrate."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_coo_preserves_dtype(self, dtype):
        dense = np.eye(3, dtype=dtype)
        coo = CooMatrix.from_dense(dense)
        assert coo.dtype == dtype
        assert coo.to_dense().dtype == dtype
        assert coo.to_csr().dtype == dtype

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_csr_kernels_allocate_matrix_dtype(self, dtype, rng):
        csr = random_sparse((9, 7), 0.3, rng, dtype=dtype)
        assert csr.dtype == dtype
        operand = rng.standard_normal((7, 4)).astype(dtype)
        assert csr.matmul_dense(operand).dtype == dtype
        assert csr.matvec(operand[:, 0]).dtype == dtype
        assert csr.to_dense().dtype == dtype
        assert csr.row_norms_squared().dtype == dtype
        assert csr.transpose().dtype == dtype
        tall = rng.standard_normal((9, 3)).astype(dtype)
        assert csr.rmatmul_dense(tall).dtype == dtype
        assert csr.t_matmul_dense(tall).dtype == dtype

    def test_mixed_precision_promotes_like_dense(self, rng):
        csr = random_sparse((5, 6), 0.4, rng, dtype=np.float32)
        promoted = csr.matmul_dense(rng.standard_normal((6, 2)))
        assert promoted.dtype == np.float64

    def test_int_values_promote_to_float64(self):
        csr = CsrMatrix((2, 2), [0, 1, 2], [0, 1], np.array([1, 2]))
        assert csr.dtype == np.float64

    def test_astype_round_trip(self, rng):
        csr = random_sparse((6, 5), 0.4, rng)
        as32 = csr.astype(np.float32)
        assert as32.dtype == np.float32
        assert as32.indices is csr.indices  # structure shared, not copied
        assert csr.astype(np.float64) is csr
        np.testing.assert_allclose(
            as32.to_dense(), csr.to_dense().astype(np.float32)
        )

    def test_squared_norm_accumulates_float64(self, rng):
        csr = random_sparse((8, 8), 0.5, rng, dtype=np.float32)
        assert isinstance(csr.squared_norm(), float)
        assert csr.squared_norm() == pytest.approx(
            np.sum(csr.to_dense().astype(np.float64) ** 2)
        )


class TestCsrKernelsScatterFree:
    """The reduceat rewrite must handle every row-occupancy pattern."""

    @pytest.fixture
    def gappy(self):
        """Matrix with empty rows (first, middle, last) and empty columns."""
        dense = np.zeros((7, 6))
        dense[1, 0] = 2.0
        dense[1, 5] = -1.0
        dense[3, 2] = 4.0
        dense[5, 2] = 0.5
        return dense

    def test_matmul_with_empty_rows(self, gappy, rng):
        csr = dense_to_sparse(gappy)
        B = rng.standard_normal((6, 3))
        np.testing.assert_allclose(csr.matmul_dense(B), gappy @ B, atol=1e-12)

    def test_matvec_with_empty_rows(self, gappy, rng):
        csr = dense_to_sparse(gappy)
        x = rng.standard_normal(6)
        np.testing.assert_allclose(csr.matvec(x), gappy @ x, atol=1e-12)

    def test_row_norms_with_empty_rows(self, gappy):
        csr = dense_to_sparse(gappy)
        np.testing.assert_allclose(
            csr.row_norms_squared(), np.sum(gappy**2, axis=1), atol=1e-12
        )

    def test_t_matmul_dense(self, gappy, rng):
        csr = dense_to_sparse(gappy)
        B = rng.standard_normal((7, 2))
        np.testing.assert_allclose(csr.t_matmul_dense(B), gappy.T @ B, atol=1e-12)

    def test_all_zero_matrix(self):
        csr = dense_to_sparse(np.zeros((4, 5)))
        np.testing.assert_array_equal(csr.matmul_dense(np.ones((5, 2))), 0.0)
        np.testing.assert_array_equal(csr.matvec(np.ones(5)), 0.0)
        np.testing.assert_array_equal(csr.transpose().to_dense(), np.zeros((5, 4)))

    def test_matmul_operator(self, gappy, rng):
        csr = dense_to_sparse(gappy)
        B = rng.standard_normal((6, 3))
        np.testing.assert_allclose(csr @ B, gappy @ B, atol=1e-12)
        np.testing.assert_allclose(csr @ B[:, 0], gappy @ B[:, 0], atol=1e-12)
        C = rng.standard_normal((2, 7))
        np.testing.assert_allclose(C @ csr, C @ gappy, atol=1e-12)
        x = rng.standard_normal(7)
        np.testing.assert_allclose(x @ csr, x @ gappy, atol=1e-12)

    def test_scaled(self, gappy):
        csr = dense_to_sparse(gappy)
        np.testing.assert_allclose(csr.scaled(-2.5).to_dense(), -2.5 * gappy)


class TestTransposeCountingSort:
    """Satellite: direct CSC build, no COO round-trip, cached."""

    def test_transpose_matches_dense(self, rng):
        for density in (0.0, 0.05, 0.4, 1.0):
            csr = random_sparse((11, 7), density, rng)
            np.testing.assert_array_equal(
                csr.transpose().to_dense(), csr.to_dense().T
            )

    def test_transpose_invariants(self, rng):
        t = random_sparse((10, 6), 0.3, rng).transpose()
        # Columns sorted and unique within each row (the CSR contract).
        for i in range(t.shape[0]):
            cols = t.indices[t.indptr[i]:t.indptr[i + 1]]
            assert np.all(np.diff(cols) > 0)

    def test_transpose_cached_and_backlinked(self, rng):
        csr = random_sparse((5, 8), 0.3, rng)
        assert csr.transpose() is csr.transpose()
        assert csr.transpose().transpose() is csr

    def test_rmatmul_via_transpose(self, rng):
        csr = random_sparse((9, 4), 0.5, rng)
        B = rng.standard_normal((9, 3))
        np.testing.assert_allclose(
            csr.rmatmul_dense(B), B.T @ csr.to_dense(), atol=1e-12
        )

    def test_transposed_products_do_not_pin_a_cache(self, rng):
        # One-shot rmatmul/t_matmul must not grow resident memory for the
        # matrix's lifetime (out-of-core slices rely on this)...
        csr = random_sparse((9, 4), 0.5, rng)
        csr.rmatmul_dense(rng.standard_normal((9, 3)))
        csr.t_matmul_dense(rng.standard_normal((9, 2)))
        assert csr._transpose_cache is None
        # ...but an explicitly built transpose cache is reused by them.
        cached = csr.transpose()
        assert csr._transpose_cache is cached


class TestValidation:
    def test_validate_false_skips_checks(self):
        # Deliberately inconsistent structure: only accepted unvalidated.
        CsrMatrix((2, 2), [0, 1], [0], [1.0], validate=False)
        with pytest.raises(ValueError):
            CsrMatrix((2, 2), [0, 1], [0], [1.0])


def _stacked_cases(rng, dtype):
    return [
        random_sparse((6, 9), d, np.random.default_rng(seed), dtype=dtype)
        for seed, d in enumerate((0.0, 0.1, 0.35, 0.8))
    ]


class TestStackedCsr:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_matmul_matches_per_slice(self, rng, dtype):
        mats = _stacked_cases(rng, dtype)
        st = StackedCsr.from_matrices(mats)
        operand = rng.standard_normal((len(mats), 9, 4)).astype(dtype)
        out = st.matmul_dense(operand)
        assert out.dtype == dtype
        for p, M in enumerate(mats):
            np.testing.assert_allclose(
                out[p], M.to_dense() @ operand[p], atol=1e-5
            )

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_t_matmul_matches_per_slice(self, rng, dtype):
        mats = _stacked_cases(rng, dtype)
        st = StackedCsr.from_matrices(mats)
        operand = rng.standard_normal((len(mats), 6, 3)).astype(dtype)
        out = st.t_matmul_dense(operand)
        assert out.dtype == dtype
        for p, M in enumerate(mats):
            np.testing.assert_allclose(
                out[p], M.to_dense().T @ operand[p], atol=1e-5
            )

    def test_padding_rows_are_free_and_zero(self, rng):
        mats = [
            random_sparse((h, 7), 0.4, np.random.default_rng(h)) for h in (2, 5, 4)
        ]
        st = StackedCsr.from_matrices(mats, height=5)
        assert st.shape == (5, 7)
        assert st.nnz == sum(M.nnz for M in mats)  # no stored padding
        operand = rng.standard_normal((3, 7, 2))
        out = st.matmul_dense(operand)
        for p, M in enumerate(mats):
            h = M.shape[0]
            np.testing.assert_allclose(
                out[p, :h], M.to_dense() @ operand[p], atol=1e-12
            )
            np.testing.assert_array_equal(out[p, h:], 0.0)

    def test_column_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="columns"):
            StackedCsr.from_matrices(
                [random_sparse((3, 4), 0.5, rng), random_sparse((3, 5), 0.5, rng)]
            )

    def test_too_tall_rejected(self, rng):
        with pytest.raises(ValueError, match="at most"):
            StackedCsr.from_matrices([random_sparse((6, 4), 0.5, rng)], height=5)

    def test_operand_shape_rejected(self, rng):
        st = StackedCsr.from_matrices([random_sparse((3, 4), 0.5, rng)])
        with pytest.raises(ValueError, match="operand"):
            st.matmul_dense(np.ones((1, 5, 2)))
        with pytest.raises(ValueError, match="operand"):
            st.t_matmul_dense(np.ones((1, 5, 2)))

    def test_numpy_fallback_matches_scipy_path(self, rng, monkeypatch):
        mats = _stacked_cases(rng, np.float64)
        operand = rng.standard_normal((len(mats), 9, 4))
        operand_t = rng.standard_normal((len(mats), 6, 4))
        fast = StackedCsr.from_matrices(mats)
        expected = fast.matmul_dense(operand)
        expected_t = fast.t_matmul_dense(operand_t)
        monkeypatch.setattr(stacked_module, "_scipy_sparse", None)
        assert stacked_module.spmm_backend() == "numpy"
        slow = StackedCsr.from_matrices(mats)
        assert slow._scipy is None
        np.testing.assert_allclose(
            slow.matmul_dense(operand), expected, atol=1e-12
        )
        np.testing.assert_allclose(
            slow.t_matmul_dense(operand_t), expected_t, atol=1e-12
        )

    def test_spmm_backend_reports(self):
        assert spmm_backend() in ("scipy", "numpy")
