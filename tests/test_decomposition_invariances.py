"""Property-style invariance tests for the PARAFAC2 solvers.

The PARAFAC2 objective has exact symmetries; a correct solver must respect
them (up to the stochasticity of its own initialization, which we pin by
seed):

* slice permutation: relabeling the slices permutes S rows and Q but
  cannot change the achievable fitness;
* global scaling: scaling the data scales the model, fitness unchanged;
* shared orthogonal feature rotation: replacing every ``Xk`` by ``Xk G``
  for orthogonal ``G`` rotates ``V`` and leaves fitness unchanged;
* per-slice row rotation: replacing ``Xk`` by ``Ok Xk`` for orthogonal
  ``Ok`` absorbs into ``Qk``.
"""

import pytest

from repro.decomposition import dpar2, parafac2_als
from repro.linalg.qr import random_orthonormal
from repro.tensor.irregular import IrregularTensor
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig

CONFIG = DecompositionConfig(rank=4, max_iterations=25, random_state=0)


@pytest.fixture(scope="module")
def base_tensor():
    return low_rank_irregular_tensor(
        [40, 55, 35, 50], 24, rank=4, noise=0.03, random_state=8
    )


@pytest.fixture(scope="module")
def base_fits(base_tensor):
    return {
        "dpar2": dpar2(base_tensor, CONFIG).fitness(base_tensor),
        "parafac2_als": parafac2_als(base_tensor, CONFIG).fitness(base_tensor),
    }


class TestSlicePermutationInvariance:
    @pytest.mark.parametrize("solver_name,solver",
                             [("dpar2", dpar2), ("parafac2_als", parafac2_als)])
    def test_fitness_invariant(self, base_tensor, base_fits, solver_name,
                               solver):
        perm = [2, 0, 3, 1]
        permuted = base_tensor.subset(perm)
        fit = solver(permuted, CONFIG).fitness(permuted)
        assert fit == pytest.approx(base_fits[solver_name], abs=0.02)


class TestScalingInvariance:
    @pytest.mark.parametrize("scale", [1e-3, 1.0, 1e3])
    def test_dpar2_fitness_scale_free(self, base_tensor, base_fits, scale):
        scaled = base_tensor.scaled(scale)
        fit = dpar2(scaled, CONFIG).fitness(scaled)
        assert fit == pytest.approx(base_fits["dpar2"], abs=1e-6)

    @pytest.mark.parametrize("scale", [1e-3, 1e3])
    def test_als_fitness_scale_free(self, base_tensor, base_fits, scale):
        scaled = base_tensor.scaled(scale)
        fit = parafac2_als(scaled, CONFIG).fitness(scaled)
        assert fit == pytest.approx(base_fits["parafac2_als"], abs=1e-6)


class TestFeatureRotationInvariance:
    def test_dpar2_fitness_invariant(self, base_tensor, base_fits, rng):
        G = random_orthonormal(base_tensor.n_columns,
                               base_tensor.n_columns, rng)
        rotated = IrregularTensor([Xk @ G for Xk in base_tensor], copy=False)
        fit = dpar2(rotated, CONFIG).fitness(rotated)
        assert fit == pytest.approx(base_fits["dpar2"], abs=0.02)

    def test_als_fitness_invariant(self, base_tensor, base_fits, rng):
        G = random_orthonormal(base_tensor.n_columns,
                               base_tensor.n_columns, rng)
        rotated = IrregularTensor([Xk @ G for Xk in base_tensor], copy=False)
        fit = parafac2_als(rotated, CONFIG).fitness(rotated)
        assert fit == pytest.approx(base_fits["parafac2_als"], abs=0.02)

    def test_V_rotates_with_data(self, base_tensor, rng):
        """The recovered V of the rotated problem must span Gᵀ·span(V)."""
        from repro.analysis.metrics import subspace_angle

        G = random_orthonormal(base_tensor.n_columns,
                               base_tensor.n_columns, rng)
        plain = parafac2_als(base_tensor, CONFIG)
        rotated_tensor = IrregularTensor(
            [Xk @ G for Xk in base_tensor], copy=False
        )
        rotated = parafac2_als(rotated_tensor, CONFIG)
        angle = subspace_angle(G.T @ plain.V, rotated.V)
        assert angle < 0.35  # subspaces agree up to estimation noise


class TestRowRotationInvariance:
    def test_per_slice_rotation_absorbed(self, base_tensor, base_fits, rng):
        rotated = IrregularTensor(
            [
                random_orthonormal(Xk.shape[0], Xk.shape[0], rng) @ Xk
                for Xk in base_tensor
            ],
            copy=False,
        )
        fit = dpar2(rotated, CONFIG).fitness(rotated)
        assert fit == pytest.approx(base_fits["dpar2"], abs=0.02)

    def test_shared_factors_unchanged(self, base_tensor, rng):
        """Row rotations change only Qk: V and S must be recovered alike."""
        from repro.analysis.metrics import parafac2_factor_match

        plain = parafac2_als(base_tensor, CONFIG)
        rotated_tensor = IrregularTensor(
            [
                random_orthonormal(Xk.shape[0], Xk.shape[0], rng) @ Xk
                for Xk in base_tensor
            ],
            copy=False,
        )
        rotated = parafac2_als(rotated_tensor, CONFIG)
        assert parafac2_factor_match(plain, rotated) > 0.95


class TestAblationReports:
    """The ablations experiment module must produce well-formed reports."""

    def test_partitioning_report(self):
        from repro.experiments.ablations import run_partitioning

        report = run_partitioning(n_threads=4, random_state=0)
        assert len(report.rows) == 2
        greedy_imbalance = report.rows[1][1]
        naive_imbalance = report.rows[0][1]
        assert greedy_imbalance <= naive_imbalance

    def test_convergence_report(self):
        from repro.experiments.ablations import run_convergence_criterion

        # Per-iteration times on the small CI tensor are sub-millisecond,
        # so a single run can invert under scheduler noise; the structural
        # claim (exact error checks cost more) must hold in the best of a
        # few attempts.
        for attempt in range(3):
            report = run_convergence_criterion(dataset="activity", rank=4,
                                               random_state=0)
            compressed_time = report.rows[0][1]
            exact_time = report.rows[1][1]
            if exact_time > compressed_time:
                break
        assert exact_time > compressed_time
        assert report.rows[0][2] == pytest.approx(report.rows[1][2], abs=1e-6)

    def test_stage2_report(self):
        from repro.experiments.ablations import run_stage2

        report = run_stage2(dataset="activity", rank=4, random_state=0)
        stage1_bytes = report.rows[0][2]
        two_stage_bytes = report.rows[1][2]
        assert two_stage_bytes < stage1_bytes

    def test_power_iteration_report(self):
        from repro.experiments.ablations import run_power_iterations

        report = run_power_iterations(dataset="activity", rank=4,
                                      random_state=0)
        assert [row[0] for row in report.rows] == [0, 1, 2]
        for row in report.rows:
            assert 0.0 <= row[2] <= 1.0
