"""Degenerate-input and failure-injection tests for all solvers.

A production library must behave sensibly at the boundaries: single-slice
tensors, rank-1 targets, J = 1 columns, constant slices, huge condition
numbers, and adversarial configuration.
"""

import numpy as np
import pytest

from repro.decomposition import dpar2, parafac2_als, rd_als, spartan
from repro.tensor.irregular import IrregularTensor
from repro.util.config import DecompositionConfig

ALL_SOLVERS = (dpar2, rd_als, parafac2_als, spartan)


def run_all(tensor, **config_kwargs):
    config = DecompositionConfig(
        max_iterations=5, random_state=0, **config_kwargs
    )
    return [solver(tensor, config) for solver in ALL_SOLVERS]


class TestSingleSlice:
    def test_all_solvers_handle_k_equals_1(self, rng):
        tensor = IrregularTensor([rng.standard_normal((20, 8))])
        for result in run_all(tensor, rank=3):
            assert result.n_slices == 1
            assert np.isfinite(result.fitness(tensor))

    def test_single_slice_equals_truncated_svd_quality(self, rng):
        """With K=1 PARAFAC2 reduces to an SVD-like factorization; fitness
        must approach the rank-R truncation quality."""
        Xk = rng.standard_normal((30, 12))
        tensor = IrregularTensor([Xk])
        config = DecompositionConfig(rank=4, max_iterations=50,
                                     random_state=0)
        result = parafac2_als(tensor, config)
        s = np.linalg.svd(Xk, compute_uv=False)
        optimal = 1.0 - np.sum(s[4:] ** 2) / np.sum(s**2)
        assert result.fitness(tensor) > optimal - 0.02


class TestRankOne:
    def test_all_solvers_rank_1(self, rng):
        tensor = IrregularTensor(
            [rng.standard_normal((n, 6)) for n in (10, 14)]
        )
        for result in run_all(tensor, rank=1):
            assert result.rank == 1
            assert result.V.shape == (6, 1)

    def test_rank_1_on_rank_1_data(self, rng):
        u1 = rng.standard_normal((12, 1))
        u2 = rng.standard_normal((9, 1))
        v = rng.standard_normal((1, 7))
        tensor = IrregularTensor([u1 @ v, u2 @ v])
        config = DecompositionConfig(rank=1, max_iterations=30,
                                     random_state=0)
        for solver in ALL_SOLVERS:
            assert solver(tensor, config).fitness(tensor) > 0.99


class TestSingleColumn:
    def test_j_equals_1(self, rng):
        tensor = IrregularTensor(
            [rng.standard_normal((n, 1)) for n in (8, 12, 10)]
        )
        for result in run_all(tensor, rank=3):
            assert result.rank == 1  # capped by J
            assert np.isfinite(result.fitness(tensor))


class TestConstantSlices:
    def test_all_zero_tensor(self):
        tensor = IrregularTensor([np.zeros((10, 5)), np.zeros((8, 5))])
        for result in run_all(tensor, rank=2):
            # Fitness of a zero tensor is defined as 1 (nothing to explain).
            assert result.fitness(tensor) == pytest.approx(1.0)

    def test_constant_slices(self):
        tensor = IrregularTensor([np.full((10, 5), 3.0), np.full((7, 5), 3.0)])
        for result in run_all(tensor, rank=2):
            assert result.fitness(tensor) > 0.99  # rank-1 structure


class TestScaleRobustness:
    def test_tiny_scale(self, rng):
        tensor = IrregularTensor(
            [1e-10 * rng.standard_normal((15, 6)) for _ in range(3)]
        )
        for result in run_all(tensor, rank=2):
            assert np.isfinite(result.fitness(tensor))

    def test_huge_scale(self, rng):
        tensor = IrregularTensor(
            [1e10 * rng.standard_normal((15, 6)) for _ in range(3)]
        )
        for result in run_all(tensor, rank=2):
            assert np.isfinite(result.fitness(tensor))

    def test_mixed_slice_scales(self, rng):
        """One slice 1e6x larger than the others must not produce NaNs."""
        slices = [rng.standard_normal((12, 6)) for _ in range(3)]
        slices[1] = slices[1] * 1e6
        tensor = IrregularTensor(slices)
        for result in run_all(tensor, rank=2):
            assert np.isfinite(result.fitness(tensor))


class TestBadInputsRejected:
    def test_nan_slice_rejected_at_construction(self):
        bad = np.ones((5, 4))
        bad[2, 2] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            IrregularTensor([bad])

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_nan_list_input_rejected(self, solver):
        bad = np.ones((5, 4))
        bad[0, 0] = np.inf
        with pytest.raises(ValueError):
            solver([bad], DecompositionConfig(rank=2, max_iterations=1))


class TestExtremeAspectRatios:
    def test_very_tall_slices(self, rng):
        tensor = IrregularTensor([rng.standard_normal((500, 4))])
        result = dpar2(tensor, DecompositionConfig(rank=3, max_iterations=3,
                                                   random_state=0))
        assert result.Q[0].shape == (500, 3)

    def test_very_wide_slices(self, rng):
        tensor = IrregularTensor(
            [rng.standard_normal((5, 200)) for _ in range(3)]
        )
        result = dpar2(tensor, DecompositionConfig(rank=4, max_iterations=3,
                                                   random_state=0))
        assert result.rank == 4
        assert result.V.shape == (200, 4)

    def test_many_tiny_slices(self, rng):
        tensor = IrregularTensor(
            [rng.standard_normal((3, 4)) for _ in range(60)]
        )
        for result in run_all(tensor, rank=2):
            assert result.n_slices == 60
            assert np.isfinite(result.fitness(tensor))


class TestThreadEdgeCases:
    def test_more_threads_than_slices(self, rng):
        tensor = IrregularTensor(
            [rng.standard_normal((10, 5)) for _ in range(2)]
        )
        result = dpar2(
            tensor,
            DecompositionConfig(rank=2, max_iterations=3, n_threads=16,
                                random_state=0),
        )
        assert np.isfinite(result.fitness(tensor))
