"""Tests for the ``xp`` dispatch layer (:mod:`repro.linalg.array_module`).

Three layers of guarantees:

* the numpy module is pure delegation — routing through it is bitwise
  indistinguishable from calling numpy directly;
* resolution is lazy and failures are actionable — unknown names list the
  registry, missing libraries carry install hints;
* the torch backend (skip-marked when the wheel is absent — CI installs
  it in a dedicated job) reproduces the numpy pipeline to tolerance on
  the exact shapes DPar2 exercises: ragged bucket stacks, QR sign
  conventions, the SVD ``(U, S, Vh)`` convention, the einsum sweep, and
  the end-to-end fit.
"""

import numpy as np
import pytest

from repro.decomposition.dpar2 import compress_tensor, dpar2
from repro.linalg.array_module import (
    COMPUTE_BACKEND_NAMES,
    BackendUnavailableError,
    NumpyModule,
    backend_available,
    get_xp,
)
from repro.linalg.kernels import (
    DeviceSweepWorkspace,
    acquire_sweep_workspace,
    batched_randomized_svd,
    batched_stacked_matmul,
    release_sweep_workspace,
)
from repro.linalg.randomized_svd import randomized_svd
from repro.tensor.random import low_rank_irregular_tensor, random_irregular_tensor
from repro.util.config import DecompositionConfig
from repro.util.rng import spawn_generators

HAS_TORCH = backend_available("torch")
HAS_CUDA = backend_available("torch-cuda")

torch_only = pytest.mark.skipif(not HAS_TORCH, reason="PyTorch not installed")
cuda_only = pytest.mark.skipif(
    not HAS_CUDA, reason="no CUDA-capable PyTorch build/device"
)

#: Same ragged profile the kernel equality tests use: two multi-slice
#: buckets (30, 45) and a singleton (17).
RAGGED_ROWS = [30, 45, 30, 17, 45, 30]


def _sign_fix(columns: np.ndarray) -> np.ndarray:
    """Normalize per-column sign by the largest-magnitude entry.

    QR and SVD factors are unique only up to column signs, and different
    LAPACK builds (numpy vs torch) pick them differently — comparisons
    must mod out the ambiguity.
    """
    anchor = columns[np.argmax(np.abs(columns), axis=0), np.arange(columns.shape[1])]
    signs = np.sign(anchor)
    signs[signs == 0] = 1.0
    return columns * signs


class TestGetXp:
    def test_default_is_numpy(self):
        assert get_xp() is get_xp("numpy")
        assert get_xp(None).is_numpy

    def test_instances_are_cached(self):
        assert get_xp("numpy") is get_xp("numpy")

    def test_module_instance_passthrough(self):
        xp = get_xp("numpy")
        assert get_xp(xp) is xp

    def test_name_normalized(self):
        assert get_xp("  NumPy ").is_numpy

    def test_unknown_backend_lists_registry(self):
        with pytest.raises(ValueError, match="numpy, torch, torch-cuda, cupy"):
            get_xp("tensorflow")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError, match="compute backend"):
            get_xp(7)

    def test_backend_available_on_unknown_name(self):
        assert backend_available("not-a-backend") is False

    def test_registry_names_stable(self):
        assert COMPUTE_BACKEND_NAMES == ("numpy", "torch", "torch-cuda", "cupy")

    @pytest.mark.skipif(HAS_TORCH, reason="torch is installed here")
    def test_missing_torch_carries_install_hint(self):
        with pytest.raises(BackendUnavailableError, match="pip install torch"):
            get_xp("torch")


class TestNumpyModule:
    """Delegation must be exact — same functions, same objects, same bits."""

    xp = NumpyModule()

    def test_asarray_is_no_copy(self):
        a = np.arange(6.0).reshape(2, 3)
        assert self.xp.asarray(a) is a
        assert self.xp.to_numpy(a) is a

    def test_native_and_dtype_probes(self):
        a = np.zeros((2, 2), dtype=np.float32)
        assert self.xp.is_native(a)
        assert not self.xp.is_native([[1.0]])
        assert self.xp.numpy_dtype(a) == np.float32

    def test_linalg_matches_numpy_bitwise(self):
        rng = np.random.default_rng(0)
        stack = rng.standard_normal((4, 9, 5))
        Q, R = self.xp.qr(stack)
        Q_ref, R_ref = np.linalg.qr(stack)
        assert np.array_equal(Q, Q_ref) and np.array_equal(R, R_ref)
        U, S, Vt = self.xp.svd(stack)
        U_ref, S_ref, Vt_ref = np.linalg.svd(stack, full_matrices=False)
        assert np.array_equal(U, U_ref)
        assert np.array_equal(S, S_ref)
        assert np.array_equal(Vt, Vt_ref)

    def test_transpose_is_a_view(self):
        a = np.arange(24.0).reshape(2, 3, 4)
        t = self.xp.transpose(a)
        assert np.shares_memory(t, a)
        assert t.shape == (2, 4, 3)
        np.testing.assert_array_equal(t, np.swapaxes(a, 1, 2))

    def test_matmul_stack_copy_helpers(self):
        rng = np.random.default_rng(1)
        a, b = rng.standard_normal((3, 4)), rng.standard_normal((4, 2))
        assert np.array_equal(self.xp.matmul(a, b), a @ b)
        stacked = self.xp.stack([a, a])
        assert stacked.shape == (2, 3, 4)
        dup = self.xp.copy(a.T)
        assert dup.flags["C_CONTIGUOUS"] and np.array_equal(dup, a.T)

    def test_scalar_and_creation(self):
        assert self.xp.to_float(np.float64(2.5)) == 2.5
        assert self.xp.zeros((2, 2), np.float32).dtype == np.float32
        assert self.xp.empty((1, 3), np.float64).shape == (1, 3)

    def test_einsum_matches_numpy(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((5, 3, 3))
        b = rng.standard_normal((5, 3, 3))
        np.testing.assert_allclose(
            self.xp.einsum("kij,kij->", a, b), np.einsum("kij,kij->", a, b)
        )


class TestKernelRoutingNumpy:
    """The xp plumbing must not disturb the numpy bitwise guarantees."""

    def test_batched_rsvd_explicit_numpy_module_is_bitwise(self):
        tensor = random_irregular_tensor(RAGGED_ROWS, n_columns=20, random_state=3)
        base = batched_randomized_svd(
            tensor.slices, 5, generators=spawn_generators(42, tensor.n_slices)
        )
        routed = batched_randomized_svd(
            tensor.slices,
            5,
            generators=spawn_generators(42, tensor.n_slices),
            xp="numpy",
        )
        for ref, out in zip(base, routed):
            assert np.array_equal(ref.U, out.U)
            assert np.array_equal(ref.singular_values, out.singular_values)
            assert np.array_equal(ref.V, out.V)

    def test_acquire_workspace_numpy_ignores_xp_for_cache(self):
        ws = acquire_sweep_workspace(4, 10, 3, xp="numpy")
        assert not ws.is_device
        assert ws.host(ws.WtW) is ws.WtW
        release_sweep_workspace(ws)

    def test_native_slices_length_mismatch_rejected(self):
        tensor = random_irregular_tensor([8, 8], n_columns=6, random_state=0)
        with pytest.raises(ValueError, match="native_slices"):
            batched_randomized_svd(
                tensor.slices,
                3,
                generators=spawn_generators(0, 2),
                native_slices=[tensor.slices[0]],
            )


class _LoopbackModule(NumpyModule):
    """numpy masquerading as a non-numpy backend.

    Every operation still delegates to numpy (values match the reference
    to roundoff), but ``is_numpy`` is False — so the kernels take their
    device-routing branches: forced batching, on-"device" bucket stacking
    from ``native_slices``, :class:`DeviceSweepWorkspace` sweeps, the
    in-process engine coercion.  This keeps the whole device code path
    under test even where torch is not installed.
    """

    name = "loopback"
    is_numpy = False


class TestLoopbackDevicePath:
    """Device-routing branches, exercised without any device library."""

    def test_batched_rsvd_native_stacking_matches_reference(self):
        xp = _LoopbackModule()
        tensor = random_irregular_tensor(RAGGED_ROWS, n_columns=20, random_state=3)
        ref = batched_randomized_svd(
            tensor.slices, 5, generators=spawn_generators(42, tensor.n_slices)
        )
        out = batched_randomized_svd(
            tensor.slices,
            5,
            generators=spawn_generators(42, tensor.n_slices),
            xp=xp,
            native_slices=list(tensor.slices),  # exact buckets stack "on-device"
        )
        for r, o in zip(ref, out):
            np.testing.assert_array_equal(o.U, r.U)
            np.testing.assert_array_equal(o.singular_values, r.singular_values)
            np.testing.assert_array_equal(o.V, r.V)

    def test_batched_stacked_matmul_device_branch(self):
        xp = _LoopbackModule()
        rng = np.random.default_rng(8)
        lefts = [rng.standard_normal((rows, 4)) for rows in (6, 9, 6, 9, 17)]
        rights = rng.standard_normal((5, 4, 3))
        ref = batched_stacked_matmul(lefts, rights)
        out = batched_stacked_matmul(lefts, rights, xp=xp)
        for r, o in zip(ref, out):
            np.testing.assert_allclose(o, r, atol=1e-13)

    def test_compress_tensor_device_routing_is_exact(self):
        xp = _LoopbackModule()
        tensor = random_irregular_tensor(RAGGED_ROWS, n_columns=16, random_state=9)
        ref = compress_tensor(tensor, 4, random_state=0, backend="serial")
        out = compress_tensor(
            tensor, 4, random_state=0, backend="serial", compute_backend=xp
        )
        np.testing.assert_array_equal(out.D, ref.D)
        np.testing.assert_array_equal(out.E, ref.E)
        np.testing.assert_array_equal(out.F_blocks, ref.F_blocks)
        for A_out, A_ref in zip(out.A, ref.A):
            np.testing.assert_array_equal(A_out, A_ref)

    def test_full_sweep_loop_through_device_workspace(self):
        """_iterate on a DeviceSweepWorkspace tracks the numpy workspace."""
        from repro.decomposition.dpar2 import _iterate
        from repro.parallel.backends import get_backend

        xp = _LoopbackModule()
        tensor = low_rank_irregular_tensor(
            [40, 60, 35, 50, 45], n_columns=24, rank=4, noise=0.02, random_state=1
        )
        config = DecompositionConfig(
            rank=4, max_iterations=8, tolerance=0.0, random_state=7,
            backend="serial",
        )
        ref = dpar2(tensor, config)
        compressed = compress_tensor(
            tensor, 4, random_state=7, backend="serial", compute_backend=xp
        )
        with get_backend("serial", 1) as engine:
            out = _iterate(tensor, config, compressed, engine, 4, False, xp)
        assert abs(out.fitness(tensor) - ref.fitness(tensor)) < 1e-10
        for r, o in zip(ref.history, out.history):
            np.testing.assert_allclose(
                o.criterion, r.criterion, rtol=1e-8, atol=1e-10
            )

    def test_exact_convergence_ablation_on_device_path(self):
        from repro.decomposition.dpar2 import _iterate
        from repro.parallel.backends import get_backend

        xp = _LoopbackModule()
        tensor = low_rank_irregular_tensor(
            [30, 45, 38], n_columns=20, rank=3, noise=0.0, random_state=2
        )
        config = DecompositionConfig(
            rank=3, max_iterations=4, tolerance=0.0, random_state=0,
            backend="serial",
        )
        ref = dpar2(tensor, config, exact_convergence=True)
        compressed = compress_tensor(
            tensor, 3, random_state=0, backend="serial", compute_backend=xp
        )
        with get_backend("serial", 1) as engine:
            out = _iterate(tensor, config, compressed, engine, 3, True, xp)
        for r, o in zip(ref.history, out.history):
            np.testing.assert_allclose(o.criterion, r.criterion, rtol=1e-8)

    def test_out_of_core_compression_rejected_on_device_module(self, tmp_path):
        from repro.tensor.irregular import IrregularTensor

        tensor = random_irregular_tensor([10, 12], n_columns=6, random_state=0)
        store = tensor.to_store(tmp_path / "store")
        mapped = IrregularTensor.from_store(store)
        with pytest.raises(ValueError, match="out-of-core"):
            compress_tensor(mapped, 3, compute_backend=_LoopbackModule())
        with pytest.raises(ValueError, match="memory-mapped"):
            mapped.to_backend(_LoopbackModule())

    def test_process_engine_coerced_with_warning(self):
        tensor = random_irregular_tensor([10, 12], n_columns=6, random_state=0)
        with pytest.warns(RuntimeWarning, match="in-process"):
            compressed = compress_tensor(
                tensor, 3, backend="process", n_threads=2,
                compute_backend=_LoopbackModule(), random_state=0,
            )
        assert compressed.n_slices == 2

    def test_per_slice_ablation_rejected_on_device(self):
        tensor = random_irregular_tensor([10, 12], n_columns=6, random_state=0)
        with pytest.raises(ValueError, match="per-slice"):
            compress_tensor(
                tensor, 3, stage1_batching="per-slice",
                compute_backend=_LoopbackModule(),
            )

    def test_device_workspace_not_cached_on_release(self):
        xp = _LoopbackModule()
        first = acquire_sweep_workspace(4, 10, 3, xp=xp)
        assert isinstance(first, DeviceSweepWorkspace)
        release_sweep_workspace(first)
        second = acquire_sweep_workspace(4, 10, 3, xp=xp)
        assert second is not first  # numpy geometries recycle; device never


@torch_only
class TestTorchMovement:
    def test_round_trip_preserves_dtype_and_values(self):
        xp = get_xp("torch")
        for dtype in (np.float64, np.float32):
            host = np.random.default_rng(0).standard_normal((7, 4)).astype(dtype)
            native = xp.asarray(host)
            assert xp.is_native(native)
            assert xp.numpy_dtype(native) == np.dtype(dtype)
            back = xp.to_numpy(native)
            assert back.dtype == np.dtype(dtype)
            np.testing.assert_array_equal(back, host)

    def test_astype_and_scalar(self):
        xp = get_xp("torch")
        native = xp.asarray(np.ones((2, 2), dtype=np.float32))
        widened = xp.astype(native, np.float64)
        assert xp.numpy_dtype(widened) == np.float64
        assert xp.to_float(xp.einsum("ij->", widened)) == 4.0

    def test_tensor_backend_cache_transfers_once(self):
        from repro.tensor.irregular import IrregularTensor

        xp = get_xp("torch")
        tensor = random_irregular_tensor([5, 9], n_columns=4, random_state=0)
        first = tensor.to_backend(xp)
        assert first is tensor.to_backend(xp)  # cached, not re-shipped
        assert all(xp.is_native(Xk) for Xk in first)
        tensor.release_backend_cache()
        assert tensor.to_backend(xp) is not first
        # numpy requests bypass the cache entirely
        assert IrregularTensor(tensor.slices).to_backend(get_xp("numpy"))


@torch_only
class TestTorchParity:
    """NumPy↔torch agreement on the shapes DPar2 actually dispatches."""

    def test_qr_agrees_after_sign_fixing(self):
        xp = get_xp("torch")
        A = np.random.default_rng(5).standard_normal((20, 6))
        Q_np, _ = np.linalg.qr(A)
        Q_t, R_t = xp.qr(xp.asarray(A))
        Q_t, R_t = xp.to_numpy(Q_t), xp.to_numpy(R_t)
        np.testing.assert_allclose(_sign_fix(Q_t), _sign_fix(Q_np), atol=1e-12)
        # Reduced mode and the reconstruction contract must match too.
        np.testing.assert_allclose(Q_t @ R_t, A, atol=1e-12)

    def test_svd_follows_u_s_vh_convention(self):
        xp = get_xp("torch")
        A = np.random.default_rng(6).standard_normal((12, 8))
        U, S, Vt = (xp.to_numpy(x) for x in xp.svd(xp.asarray(A)))
        assert U.shape == (12, 8) and S.shape == (8,) and Vt.shape == (8, 8)
        np.testing.assert_allclose((U * S) @ Vt, A, atol=1e-12)
        S_np = np.linalg.svd(A, compute_uv=False)
        np.testing.assert_allclose(S, S_np, atol=1e-12)

    def test_randomized_svd_matches_numpy(self):
        A = np.random.default_rng(7).standard_normal((40, 15))
        ref = randomized_svd(A, 5, random_state=3)
        out = randomized_svd(A, 5, random_state=3, xp="torch")
        np.testing.assert_allclose(
            out.singular_values, ref.singular_values, atol=1e-10
        )
        np.testing.assert_allclose(_sign_fix(out.U), _sign_fix(ref.U), atol=1e-9)
        np.testing.assert_allclose(out.reconstruct(), ref.reconstruct(), atol=1e-10)

    def test_batched_rsvd_ragged_buckets_match(self):
        """Ragged bucket stacks: multi-slice buckets, a singleton, both dtypes."""
        for dtype, atol in ((np.float64, 1e-9), (np.float32, 2e-4)):
            tensor = random_irregular_tensor(
                RAGGED_ROWS, n_columns=20, random_state=3
            ).astype(dtype)
            ref = batched_randomized_svd(
                tensor.slices, 5, generators=spawn_generators(42, tensor.n_slices)
            )
            out = batched_randomized_svd(
                tensor.slices,
                5,
                generators=spawn_generators(42, tensor.n_slices),
                xp="torch",
                native_slices=tensor.to_backend(get_xp("torch")),
            )
            for k, (r, o) in enumerate(zip(ref, out)):
                assert o.U.shape == r.U.shape, f"slice {k}"
                np.testing.assert_allclose(
                    o.singular_values, r.singular_values, atol=atol
                )
                np.testing.assert_allclose(
                    o.reconstruct(), r.reconstruct(), atol=atol
                )

    def test_batched_stacked_matmul_matches(self):
        rng = np.random.default_rng(8)
        lefts = [rng.standard_normal((rows, 4)) for rows in (6, 9, 6, 9)]
        rights = rng.standard_normal((4, 4, 3))
        ref = batched_stacked_matmul(lefts, rights)
        out = batched_stacked_matmul(lefts, rights, xp="torch")
        for r, o in zip(ref, out):
            np.testing.assert_allclose(o, r, atol=1e-12)

    def test_compress_tensor_torch_close_to_numpy(self):
        tensor = random_irregular_tensor(RAGGED_ROWS, n_columns=16, random_state=9)
        ref = compress_tensor(tensor, 4, random_state=0, backend="serial")
        out = compress_tensor(
            tensor, 4, random_state=0, backend="serial", compute_backend="torch"
        )
        for k in range(tensor.n_slices):
            np.testing.assert_allclose(
                out.reconstruct_slice(k), ref.reconstruct_slice(k), atol=1e-9
            )

    def test_dpar2_fit_matches_numpy_within_1e10(self):
        """The issue's acceptance bar: torch-CPU float64 fit within 1e-10."""
        tensor = low_rank_irregular_tensor(
            [40, 60, 35, 50, 45], n_columns=24, rank=4, noise=0.02, random_state=1
        )
        config = DecompositionConfig(
            rank=4, max_iterations=10, tolerance=0.0, random_state=7,
            backend="serial",
        )
        ref = dpar2(tensor, config)
        out = dpar2(tensor, config.with_(compute_backend="torch"))
        assert abs(out.fitness(tensor) - ref.fitness(tensor)) < 1e-10
        # Sweep-by-sweep criterion trajectories must track, not just the end.
        for r, o in zip(ref.history, out.history):
            np.testing.assert_allclose(
                o.criterion, r.criterion, rtol=1e-8, atol=1e-10
            )

    def test_dpar2_float32_pipeline_runs_on_torch(self):
        tensor = low_rank_irregular_tensor(
            [30, 45, 38], n_columns=20, rank=3, noise=0.0, random_state=2
        )
        result = dpar2(
            tensor,
            DecompositionConfig(
                rank=3, max_iterations=8, random_state=0, backend="serial",
                dtype="float32", compute_backend="torch",
            ),
        )
        assert result.fitness(tensor) > 0.99
        assert all(Q.dtype == np.float32 for Q in result.Q)

    def test_device_workspace_checked_out_for_torch(self):
        xp = get_xp("torch")
        ws = acquire_sweep_workspace(4, 10, 3, xp=xp)
        assert isinstance(ws, DeviceSweepWorkspace) and ws.is_device
        rng = np.random.default_rng(0)
        ws.bind(
            rng.standard_normal((10, 3)),
            np.abs(rng.standard_normal(3)),
            rng.standard_normal((4, 3, 3)),
        )
        V = rng.standard_normal((10, 3))
        EDtV = ws.host(ws.update_EDtV(V))
        assert EDtV.shape == (3, 3)
        release_sweep_workspace(ws)
        assert ws.D is None  # unbound, not cached

    def test_streaming_absorb_many_runs_on_torch(self):
        from repro.decomposition.streaming import StreamingDpar2

        rng = np.random.default_rng(0)
        slices = [rng.random((20, 10)) for _ in range(4)]
        ref = StreamingDpar2(DecompositionConfig(rank=3, random_state=0))
        ref.absorb_many(slices)
        out = StreamingDpar2(
            DecompositionConfig(rank=3, random_state=0, compute_backend="torch")
        )
        out.absorb_many(slices)
        tensor = random_irregular_tensor([20] * 4, n_columns=10, random_state=1)
        assert abs(out.fitness(tensor) - ref.fitness(tensor)) < 1e-6


@torch_only
class TestTorchGuards:
    def test_out_of_core_tensor_rejected(self, tmp_path):
        from repro.tensor.irregular import IrregularTensor

        tensor = random_irregular_tensor([10, 12], n_columns=6, random_state=0)
        store = tensor.to_store(tmp_path / "store")
        mapped = IrregularTensor.from_store(store)
        with pytest.raises(ValueError, match="out-of-core"):
            compress_tensor(mapped, 3, compute_backend="torch")
        with pytest.raises(ValueError, match="out-of-core"):
            dpar2(mapped, DecompositionConfig(rank=3, compute_backend="torch"))

    def test_process_engine_coerced_with_warning(self):
        tensor = random_irregular_tensor([10, 12], n_columns=6, random_state=0)
        with pytest.warns(RuntimeWarning, match="in-process"):
            compressed = compress_tensor(
                tensor, 3, backend="process", n_threads=2,
                compute_backend="torch", random_state=0,
            )
        assert compressed.n_slices == 2

    def test_per_slice_ablation_rejected_on_device(self):
        tensor = random_irregular_tensor([10, 12], n_columns=6, random_state=0)
        with pytest.raises(ValueError, match="per-slice"):
            compress_tensor(
                tensor, 3, stage1_batching="per-slice", compute_backend="torch"
            )


@cuda_only
class TestCudaSmoke:
    """One end-to-end pass on a visible GPU — correctness, not speed."""

    def test_dpar2_torch_cuda_matches_numpy_fit(self):
        tensor = low_rank_irregular_tensor(
            [30, 45, 38], n_columns=20, rank=3, noise=0.0, random_state=2
        )
        config = DecompositionConfig(
            rank=3, max_iterations=6, random_state=0, backend="serial"
        )
        ref = dpar2(tensor, config)
        out = dpar2(tensor, config.with_(compute_backend="torch-cuda"))
        assert abs(out.fitness(tensor) - ref.fitness(tensor)) < 1e-8
        get_xp("torch-cuda").synchronize()
