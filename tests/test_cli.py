"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENT_MODULES, build_parser, main


class TestParser:
    def test_datasets_command(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"

    def test_decompose_defaults(self):
        args = build_parser().parse_args(["decompose", "activity"])
        assert args.method == "dpar2"
        assert args.rank == 10
        assert args.max_iterations == 32

    def test_decompose_options(self):
        args = build_parser().parse_args(
            ["decompose", "traffic", "--method", "spartan", "--rank", "5",
             "--max-iterations", "3", "--threads", "2", "--seed", "9"]
        )
        assert args.method == "spartan"
        assert args.rank == 5
        assert args.seed == 9
        assert args.backend == "thread"
        assert args.out_of_core is False

    def test_decompose_backend_options(self):
        args = build_parser().parse_args(
            ["decompose", "traffic", "--backend", "process", "--out-of-core"]
        )
        assert args.backend == "process"
        assert args.out_of_core is True

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["decompose", "traffic", "--backend", "quantum"]
            )

    def test_compute_backend_default_and_choices(self):
        args = build_parser().parse_args(["decompose", "traffic"])
        assert args.compute_backend == "numpy"
        args = build_parser().parse_args(
            ["decompose", "traffic", "--compute-backend", "torch"]
        )
        assert args.compute_backend == "torch"

    def test_unknown_compute_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["decompose", "traffic", "--compute-backend", "tensorflow"]
            )

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["decompose", "nonexistent"])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["decompose", "activity", "--method", "magic"]
            )

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig10"])
        assert args.which == "fig10"

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "--registry", "/tmp/r"])
        assert args.port == 8080
        assert args.batch_window_ms == 2.0
        assert args.poll_interval == 2.0
        assert args.lru_size == 4

    def test_serve_requires_registry(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_publish_options(self):
        args = build_parser().parse_args(
            ["publish", "traffic", "--registry", "/tmp/r", "--rank", "6",
             "--dtype", "float32"]
        )
        assert args.dataset == "traffic"
        assert args.rank == 6
        assert args.dtype == "float32"

    def test_query_options(self):
        args = build_parser().parse_args(
            ["query", "similar", "--index", "3", "-k", "7",
             "--mode", "feature", "--model-version", "2"]
        )
        assert args.what == "similar"
        assert (args.index, args.k, args.mode, args.model_version) == \
            (3, 7, "feature", 2)
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "teleport"])

    def test_help_epilogue_mentions_serving(self, capsys):
        """The --help epilogue advertises the serving quickstart (and the
        console-script spelling, auditing the pyproject entry point)."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "repro serve" in out
        assert "repro query" in out
        assert "repro publish" in out


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("fma", "urban", "us_stock", "kr_stock", "activity",
                     "action", "traffic", "pems_sf"):
            assert name in out

    def test_decompose_runs(self, capsys):
        code = main(
            ["decompose", "traffic", "--rank", "4", "--max-iterations", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fitness" in out
        assert "DPar2" in out

    def test_decompose_other_method(self, capsys):
        code = main(
            ["decompose", "traffic", "--method", "parafac2_als",
             "--rank", "3", "--max-iterations", "2"]
        )
        assert code == 0
        assert "PARAFAC2-ALS" in capsys.readouterr().out

    def test_decompose_serial_backend_runs(self, capsys):
        code = main(
            ["decompose", "traffic", "--rank", "3", "--max-iterations", "2",
             "--backend", "serial"]
        )
        assert code == 0
        assert "backend serial" in capsys.readouterr().out

    def test_decompose_out_of_core_runs(self, capsys):
        code = main(
            ["decompose", "traffic", "--rank", "3", "--max-iterations", "2",
             "--out-of-core"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "staging" in out
        assert "fitness" in out

    def test_decompose_reports_compute_backend(self, capsys):
        code = main(
            ["decompose", "traffic", "--rank", "3", "--max-iterations", "2",
             "--compute-backend", "numpy"]
        )
        assert code == 0
        assert "compute numpy" in capsys.readouterr().out

    def test_out_of_core_with_device_backend_fails_fast(self, capsys):
        code = main(
            ["decompose", "traffic", "--rank", "3", "--max-iterations", "2",
             "--out-of-core", "--compute-backend", "torch"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "out-of-core" in err and "mutually exclusive" in err

    def test_non_dpar2_method_with_device_backend_fails_fast(self, capsys):
        code = main(
            ["decompose", "traffic", "--rank", "3", "--max-iterations", "2",
             "--method", "rd_als", "--compute-backend", "torch"]
        )
        assert code == 2
        assert "only" in capsys.readouterr().err

    def test_process_with_device_backend_fails_fast(self, capsys):
        code = main(
            ["decompose", "traffic", "--rank", "3", "--max-iterations", "2",
             "--backend", "process", "--compute-backend", "torch"]
        )
        assert code == 2
        assert "process" in capsys.readouterr().err

    def test_bench_info(self, capsys):
        assert main(["bench-info"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENT_MODULES:
            assert exp_id in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "Datasets" in capsys.readouterr().out


class TestServeCommands:
    def test_publish_then_query_roundtrip(self, capsys, tmp_path):
        registry = str(tmp_path / "registry")
        code = main(["publish", "traffic", "--registry", registry,
                     "--rank", "3", "--max-iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "published version 1" in out

        from repro.serve.service import start_server_in_thread

        with start_server_in_thread(registry) as handle:
            code = main(["query", "similar", "--url", handle.base_url,
                         "--index", "0", "-k", "2"])
            assert code == 0
            assert '"neighbors"' in capsys.readouterr().out
            code = main(["query", "health", "--url", handle.base_url])
            assert code == 0
            assert '"version": 1' in capsys.readouterr().out

    def test_query_unreachable_server(self, capsys):
        code = main(["query", "health", "--url", "http://127.0.0.1:1"])
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_query_missing_arguments(self, capsys):
        assert main(["query", "similar"]) == 2
        assert "needs --index" in capsys.readouterr().err
        assert main(["query", "reconstruct"]) == 2
        assert "needs --slice" in capsys.readouterr().err
        assert main(["query", "fold-in"]) == 2
        assert "needs --npy" in capsys.readouterr().err

    def test_serve_empty_registry_fails_fast(self, capsys, tmp_path):
        code = main(["serve", "--registry", str(tmp_path / "empty")])
        assert code == 2
        assert "no published versions" in capsys.readouterr().err


class TestExperimentIndexComplete:
    def test_every_paper_artifact_has_a_command(self):
        """The CLI index must cover every table/figure in DESIGN.md §2."""
        for exp_id in ("fig1", "fig8", "fig9a", "fig9b", "fig10", "fig11",
                       "fig12", "table2", "table3"):
            assert exp_id in EXPERIMENT_MODULES
