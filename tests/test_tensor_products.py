"""Tests for Kronecker / Khatri-Rao / Hadamard products and vec."""

import numpy as np
import pytest

from repro.tensor.matricization import unfold
from repro.tensor.products import hadamard, khatri_rao, kronecker, vec


class TestKronecker:
    def test_matches_numpy(self, rng):
        A = rng.standard_normal((3, 2))
        B = rng.standard_normal((4, 5))
        np.testing.assert_allclose(kronecker(A, B), np.kron(A, B), atol=1e-12)

    def test_identity_with_scalar_one(self):
        A = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(kronecker(np.ones((1, 1)), A), A)

    def test_mixed_product_property(self, rng):
        """(A⊗B)(C⊗D) = AC ⊗ BD — the identity used in Lemma 1's proof."""
        A = rng.standard_normal((3, 4))
        B = rng.standard_normal((2, 5))
        C = rng.standard_normal((4, 2))
        D = rng.standard_normal((5, 3))
        left = kronecker(A, B) @ kronecker(C, D)
        right = kronecker(A @ C, B @ D)
        np.testing.assert_allclose(left, right, atol=1e-10)

    def test_vector_inputs_promoted(self):
        a = np.array([[1.0], [2.0]])
        b = np.array([[3.0], [4.0]])
        expected = np.array([[3.0], [4.0], [6.0], [8.0]])
        np.testing.assert_array_equal(kronecker(a, b), expected)


class TestKhatriRao:
    def test_columns_are_kroneckers(self, rng):
        A = rng.standard_normal((3, 4))
        B = rng.standard_normal((5, 4))
        KR = khatri_rao(A, B)
        assert KR.shape == (15, 4)
        for r in range(4):
            np.testing.assert_allclose(
                KR[:, r], np.kron(A[:, r], B[:, r]), atol=1e-12
            )

    def test_column_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="column counts"):
            khatri_rao(rng.standard_normal((3, 4)), rng.standard_normal((3, 5)))

    def test_cp_unfolding_identity(self, rng):
        """X(1) = A (C ⊙ B)ᵀ for a CP tensor — ties products to unfolding."""
        A = rng.standard_normal((4, 3))
        B = rng.standard_normal((5, 3))
        C = rng.standard_normal((6, 3))
        X = np.einsum("ir,jr,kr->ijk", A, B, C)
        np.testing.assert_allclose(
            unfold(X, 1), A @ khatri_rao(C, B).T, atol=1e-10
        )
        np.testing.assert_allclose(
            unfold(X, 2), B @ khatri_rao(C, A).T, atol=1e-10
        )
        np.testing.assert_allclose(
            unfold(X, 3), C @ khatri_rao(B, A).T, atol=1e-10
        )


class TestHadamard:
    def test_two_matrices(self, rng):
        A = rng.standard_normal((3, 3))
        B = rng.standard_normal((3, 3))
        np.testing.assert_array_equal(hadamard(A, B), A * B)

    def test_three_matrices(self, rng):
        A, B, C = (rng.standard_normal((2, 4)) for _ in range(3))
        np.testing.assert_allclose(hadamard(A, B, C), A * B * C)

    def test_single_matrix_copies(self, rng):
        A = rng.standard_normal((2, 2))
        out = hadamard(A)
        out[0, 0] = 123.0
        assert A[0, 0] != 123.0

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="shape mismatch"):
            hadamard(np.ones((2, 2)), np.ones((3, 2)))

    def test_no_args_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            hadamard()

    def test_khatri_rao_gram_identity(self, rng):
        """(A ⊙ B)ᵀ(A ⊙ B) = AᵀA ∗ BᵀB — the normal-matrix shortcut."""
        A = rng.standard_normal((6, 3))
        B = rng.standard_normal((4, 3))
        KR = khatri_rao(A, B)
        np.testing.assert_allclose(
            KR.T @ KR, hadamard(A.T @ A, B.T @ B), atol=1e-10
        )


class TestVec:
    def test_column_major(self):
        A = np.array([[1.0, 3.0], [2.0, 4.0]])
        np.testing.assert_array_equal(vec(A), [1.0, 2.0, 3.0, 4.0])

    def test_vec_of_product_identity(self, rng):
        """vec(AB) = (Bᵀ ⊗ I) vec(A) — used in Lemma 3's proof."""
        A = rng.standard_normal((3, 4))
        B = rng.standard_normal((4, 5))
        left = vec(A @ B)
        right = kronecker(B.T, np.eye(3)) @ vec(A)
        np.testing.assert_allclose(left, right, atol=1e-10)

    def test_vector_input_rejected(self):
        with pytest.raises(ValueError, match="matrix"):
            vec(np.ones(4))
