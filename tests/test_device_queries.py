"""Cross-backend QueryEngine + sparse stage-1 parity (ISSUE 8 tentpole).

Two layers of evidence that device-resident serving answers like the host:

* **Loopback** — ``_LoopbackModule`` (numpy pretending to be a device)
  drives every upload/download branch on a machine with no torch at all:
  similarity, reconstruction, fold-in, anomaly scores, the CSR SpMM
  routes, and the transfer counters.  Values match the numpy reference to
  roundoff (the device branches contract identical math, but e.g. the
  transpose SpMM sums in cached-CSC order, so "bitwise" is not the claim —
  ≤1e-8 is, with lots of margin).
* **Torch (CPU)** — the same parity suite on a real second array library,
  plus batch-invariance and deterministic tiebreak checks *per backend*:
  a backend must answer itself identically however requests are batched,
  and exactly-tied cosine scores must rank lower-index-first everywhere.
"""

import json
import urllib.request

import numpy as np
import pytest

from test_array_module import _LoopbackModule, torch_only

from repro.data.synthetic import sparse_irregular_tensor
from repro.decomposition.dpar2 import compress_tensor, dpar2
from repro.decomposition.result import Parafac2Result
from repro.linalg.randomized_svd import randomized_svd
from repro.serve.queries import QueryEngine
from repro.serve.service import ModelHost, start_server_in_thread
from repro.serve.store import FactorStore
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig

ZERO_TRANSFERS = {
    "h2d_calls": 0, "h2d_bytes": 0, "d2h_calls": 0, "d2h_bytes": 0,
}


@pytest.fixture(scope="module")
def tensor():
    return low_rank_irregular_tensor(
        [30, 45, 25, 40, 35, 28], n_columns=16, rank=3, noise=0.02,
        random_state=4,
    )


@pytest.fixture(scope="module")
def sparse_tensor():
    return sparse_irregular_tensor(40, 16, 5, density=0.15, random_state=0)


@pytest.fixture(scope="module")
def config():
    return DecompositionConfig(rank=4, max_iterations=8, random_state=0)


@pytest.fixture(scope="module")
def result(tensor, config):
    return dpar2(tensor, config)


@pytest.fixture(scope="module")
def host_engine(result, config):
    return QueryEngine(result, config=config, version=1)


def _parity_suite(reference, engine, tensor, sparse_tensor, atol):
    """Assert ``engine`` answers every query family like ``reference``."""
    n0, s0 = reference.similar([0, 2, 5], k=5)
    n1, s1 = engine.similar([0, 2, 5], k=5)
    np.testing.assert_array_equal(n1, n0)
    np.testing.assert_allclose(s1, s0, atol=atol)

    np.testing.assert_allclose(
        engine.reconstruct(1, rows=[0, 3]),
        reference.reconstruct(1, rows=[0, 3]),
        atol=atol,
    )
    np.testing.assert_allclose(
        engine.reconstruct(2), reference.reconstruct(2), atol=atol
    )

    new = tensor.slices[2] * 1.01
    f0 = reference.fold_in(new, seed=3, return_q=True)
    f1 = engine.fold_in(new, seed=3, return_q=True)
    np.testing.assert_allclose(f1.weights, f0.weights, atol=atol)
    assert abs(f1.relative_residual - f0.relative_residual) < atol
    np.testing.assert_allclose(f1.Q, f0.Q, atol=atol)

    csr = sparse_tensor.slices[1]
    g0 = reference.fold_in(csr, seed=2)
    g1 = engine.fold_in(csr, seed=2)
    np.testing.assert_allclose(g1.weights, g0.weights, atol=atol)

    np.testing.assert_allclose(
        engine.anomaly_scores(tensor), reference.anomaly_scores(tensor),
        atol=atol,
    )

    v0 = reference.similar_to(f0.weights, k=4)
    v1 = engine.similar_to(f1.weights, k=4)
    np.testing.assert_array_equal(v1[0], v0[0])
    np.testing.assert_allclose(v1[1], v0[1], atol=atol)


class TestLoopbackEngineParity:
    """Device branches under test without any device library installed."""

    @pytest.fixture()
    def loop_engine(self, result, config):
        return QueryEngine(
            result, config=config, version=1,
            compute_backend=_LoopbackModule(),
        )

    def test_all_queries_match_numpy(
        self, host_engine, loop_engine, tensor, sparse_tensor
    ):
        _parity_suite(host_engine, loop_engine, tensor, sparse_tensor, 1e-8)

    def test_sparse_anomaly_scores_match(
        self, sparse_tensor, config, loop_engine
    ):
        sparse_result = dpar2(
            sparse_tensor,
            DecompositionConfig(
                rank=4, max_iterations=4, random_state=0, backend="serial"
            ),
        )
        ref = QueryEngine(sparse_result, config=config)
        loop = QueryEngine(
            sparse_result, config=config, compute_backend=_LoopbackModule()
        )
        np.testing.assert_allclose(
            loop.anomaly_scores(sparse_tensor),
            ref.anomaly_scores(sparse_tensor),
            atol=1e-8,
        )

    def test_transfer_counters(self, host_engine, loop_engine, tensor):
        # Construction alone uploads the resident factors...
        stats = loop_engine.transfer_stats()
        assert stats["h2d_calls"] >= 5  # unit x2, H, V, VtV
        assert stats["h2d_bytes"] > 0
        # ...and queries move rows up and scores down.
        loop_engine.similar([0, 1], k=3)
        after = loop_engine.transfer_stats()
        assert after["h2d_calls"] == stats["h2d_calls"] + 1
        assert after["d2h_calls"] == stats["d2h_calls"] + 1
        # The numpy engine never touches a device.
        host_engine.similar([0, 1], k=3)
        assert host_engine.transfer_stats() == ZERO_TRANSFERS

    def test_backend_names(self, host_engine, loop_engine):
        assert host_engine.compute_backend == "numpy"
        assert loop_engine.compute_backend == "loopback"

    def test_batch_invariance(self, loop_engine):
        batch_n, batch_s = loop_engine.similar([0, 2, 5], k=4)
        for row, idx in enumerate([0, 2, 5]):
            single_n, single_s = loop_engine.similar([idx], k=4)
            np.testing.assert_array_equal(single_n[0], batch_n[row])
            np.testing.assert_array_equal(single_s[0], batch_s[row])

    def test_fold_in_batch_invariance(self, loop_engine, tensor):
        a, b = tensor.slices[0], tensor.slices[3]
        batch = loop_engine.fold_in_many([a, b], seeds=[7, 9])
        np.testing.assert_array_equal(
            loop_engine.fold_in(a, seed=7).weights, batch[0].weights
        )
        np.testing.assert_array_equal(
            loop_engine.fold_in(b, seed=9).weights, batch[1].weights
        )


def _tied_result() -> Parafac2Result:
    """A model whose S has exact duplicate rows → exactly tied cosines."""
    rng = np.random.default_rng(0)
    R, J, K = 3, 6, 6
    S = rng.standard_normal((K, R))
    S[2] = S[4]  # indices 2 and 4 tie exactly against any query
    S[1] = S[5]
    Q = [np.linalg.qr(rng.standard_normal((5, R)))[0] for _ in range(K)]
    V = np.linalg.qr(rng.standard_normal((J, R)))[0]
    return Parafac2Result(Q=Q, H=np.eye(R), S=S, V=V, method="crafted")


@pytest.mark.parametrize(
    "backend_factory",
    [lambda: "numpy", _LoopbackModule],
    ids=["numpy", "loopback"],
)
def test_deterministic_tiebreak(backend_factory):
    """Exactly tied scores rank lower-index-first on every backend.

    Duplicate factor rows produce bit-identical cosine scores whatever the
    reduction order, so this is checkable machine-independently.
    """
    engine = QueryEngine(_tied_result(), compute_backend=backend_factory())
    neighbors, scores = engine.similar([2], k=5)
    order = list(neighbors[0])
    # 4 duplicates the query row: maximal score, first.
    assert order[0] == 4
    assert scores[0][0] == pytest.approx(1.0)
    # 1 and 5 are mutual duplicates: equal scores, 1 must precede 5.
    assert order.index(1) < order.index(5)
    tied = scores[0][order.index(1)], scores[0][order.index(5)]
    assert tied[0] == tied[1]


class TestLoopbackSparseStage1:
    """CSR stage 1 through the xp sparse surface, without a device."""

    def test_compress_matches_host(self, sparse_tensor):
        ref = compress_tensor(
            sparse_tensor, 4, random_state=0, backend="serial"
        )
        out = compress_tensor(
            sparse_tensor, 4, random_state=0, backend="serial",
            compute_backend=_LoopbackModule(),
        )
        np.testing.assert_allclose(out.D, ref.D, atol=1e-10)
        np.testing.assert_allclose(out.E, ref.E, atol=1e-10)
        np.testing.assert_allclose(out.F_blocks, ref.F_blocks, atol=1e-10)
        for A_out, A_ref in zip(out.A, ref.A):
            np.testing.assert_allclose(A_out, A_ref, atol=1e-10)

    def test_dpar2_end_to_end_matches_host(self, sparse_tensor):
        host = dpar2(
            sparse_tensor,
            DecompositionConfig(
                rank=4, max_iterations=4, random_state=0, backend="serial"
            ),
        )
        loop = dpar2(
            sparse_tensor,
            DecompositionConfig(
                rank=4, max_iterations=4, random_state=0, backend="serial",
                compute_backend="numpy",
            ),
        )
        np.testing.assert_array_equal(host.V, loop.V)  # numpy stays bitwise

    def test_single_csr_randomized_svd(self, sparse_tensor):
        A = sparse_tensor.slices[0]
        ref = randomized_svd(A, 4, random_state=0)
        out = randomized_svd(A, 4, random_state=0, xp=_LoopbackModule())
        np.testing.assert_allclose(
            np.abs(out.U), np.abs(ref.U), atol=1e-10
        )
        np.testing.assert_allclose(
            out.singular_values, ref.singular_values, atol=1e-10
        )


@torch_only
class TestTorchEngineParity:
    """The real second backend: torch CPU vs the numpy reference, ≤1e-8."""

    @pytest.fixture()
    def torch_engine(self, result, config):
        return QueryEngine(
            result, config=config, version=1, compute_backend="torch"
        )

    def test_all_queries_match_numpy(
        self, host_engine, torch_engine, tensor, sparse_tensor
    ):
        _parity_suite(host_engine, torch_engine, tensor, sparse_tensor, 1e-8)

    def test_batch_invariance(self, torch_engine):
        batch_n, batch_s = torch_engine.similar([0, 2, 5], k=4)
        for row, idx in enumerate([0, 2, 5]):
            single_n, single_s = torch_engine.similar([idx], k=4)
            np.testing.assert_array_equal(single_n[0], batch_n[row])
            np.testing.assert_array_equal(single_s[0], batch_s[row])

    def test_deterministic_tiebreak(self):
        engine = QueryEngine(_tied_result(), compute_backend="torch")
        neighbors, scores = engine.similar([2], k=5)
        order = list(neighbors[0])
        assert order[0] == 4
        assert order.index(1) < order.index(5)
        assert scores[0][order.index(1)] == scores[0][order.index(5)]

    def test_sparse_stage1_matches_host(self, sparse_tensor):
        ref = compress_tensor(
            sparse_tensor, 4, random_state=0, backend="serial"
        )
        out = compress_tensor(
            sparse_tensor, 4, random_state=0, backend="serial",
            compute_backend="torch",
        )
        np.testing.assert_allclose(out.D, ref.D, atol=1e-8)
        np.testing.assert_allclose(out.E, ref.E, atol=1e-8)
        for A_out, A_ref in zip(out.A, ref.A):
            np.testing.assert_allclose(A_out, A_ref, atol=1e-8)

    def test_sparse_dpar2_matches_host(self, sparse_tensor):
        host = dpar2(
            sparse_tensor,
            DecompositionConfig(
                rank=4, max_iterations=4, random_state=0, backend="serial"
            ),
        )
        device = dpar2(
            sparse_tensor,
            DecompositionConfig(
                rank=4, max_iterations=4, random_state=0, backend="serial",
                compute_backend="torch",
            ),
        )
        np.testing.assert_allclose(device.V, host.V, atol=1e-8)
        np.testing.assert_allclose(device.S, host.S, atol=1e-8)

    def test_transfers_counted(self, result, config):
        engine = QueryEngine(result, config=config, compute_backend="torch")
        engine.similar([0], k=3)
        stats = engine.transfer_stats()
        assert stats["h2d_calls"] > 0 and stats["d2h_calls"] > 0


class TestServiceSurface:
    """healthz + host plumbing for the engine backend and counters."""

    @pytest.fixture()
    def store(self, result, config, tmp_path):
        registry = FactorStore(tmp_path / "registry")
        registry.publish(result, config=config)
        return registry

    def test_model_host_aggregates_transfers(self, store):
        host = ModelHost(
            store, engine_kwargs={"compute_backend": _LoopbackModule()}
        )
        engine = host.refresh()
        assert host.engine_backend() == "loopback"
        engine.similar([0], k=2)
        totals = host.transfer_stats()
        assert totals["h2d_calls"] > 0 and totals["d2h_calls"] > 0

    def test_model_host_numpy_defaults(self, store):
        host = ModelHost(store)
        host.refresh().similar([0], k=2)
        assert host.engine_backend() == "numpy"
        assert host.transfer_stats() == ZERO_TRANSFERS

    def test_healthz_reports_engine(self, store):
        with start_server_in_thread(
            store, engine_kwargs={"compute_backend": _LoopbackModule()}
        ) as handle:
            with urllib.request.urlopen(
                handle.base_url + "/healthz", timeout=15
            ) as response:
                body = json.loads(response.read())
            assert body["engine"]["compute_backend"] == "loopback"
            assert body["engine"]["transfers"]["h2d_calls"] > 0
            # Loopback "device" answers must still round-trip correctly.
            request = urllib.request.Request(
                handle.base_url + "/v1/similar",
                data=json.dumps({"indices": [0], "k": 3}).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=15) as response:
                answer = json.loads(response.read())
            assert len(answer["results"][0]["neighbors"]) == 3

    def test_healthz_numpy_zero_counters(self, store):
        with start_server_in_thread(store) as handle:
            with urllib.request.urlopen(
                handle.base_url + "/healthz", timeout=15
            ) as response:
                body = json.loads(response.read())
            assert body["engine"]["compute_backend"] == "numpy"
            assert body["engine"]["transfers"] == ZERO_TRANSFERS
