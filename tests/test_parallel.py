"""Tests for Algorithm 4 (greedy partitioning) and the executor helpers."""

import threading

import numpy as np
import pytest

from repro.parallel.executor import map_partitioned, parallel_map
from repro.parallel.partition import (
    greedy_partition,
    partition_imbalance,
    round_robin_partition,
)


class TestGreedyPartition:
    def test_every_index_appears_once(self):
        parts = greedy_partition([5, 3, 8, 1, 9, 2], 3)
        flat = sorted(idx for group in parts for idx in group)
        assert flat == list(range(6))

    def test_part_count(self):
        assert len(greedy_partition([1, 2, 3], 4)) == 4

    def test_perfect_split_found(self):
        # 6 items of equal weight over 3 threads -> 2 each, perfectly even.
        parts = greedy_partition([4, 4, 4, 4, 4, 4], 3)
        loads = [sum(4 for _ in group) for group in parts]
        assert loads == [8, 8, 8]

    def test_lpt_known_case(self):
        # Classic LPT example: weights 7,6,5,4 over 2 bins -> {7,4},{6,5}.
        parts = greedy_partition([7, 6, 5, 4], 2)
        loads = sorted(sum([7, 6, 5, 4][i] for i in group) for group in parts)
        assert loads == [11, 11]

    def test_single_thread_gets_everything(self):
        parts = greedy_partition([3, 1, 2], 1)
        assert sorted(parts[0]) == [0, 1, 2]

    def test_beats_round_robin_on_skewed_weights(self):
        rng = np.random.default_rng(0)
        weights = np.exp(rng.uniform(0, 5, size=40))
        greedy = partition_imbalance(weights, greedy_partition(weights, 6))
        naive = partition_imbalance(weights, round_robin_partition(40, 6))
        assert greedy <= naive

    def test_zero_weights_ok(self):
        parts = greedy_partition([0, 0, 0], 2)
        assert sum(len(g) for g in parts) == 3

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            greedy_partition([1, -2], 2)

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError, match="n_parts"):
            greedy_partition([1], 0)

    def test_deterministic(self):
        a = greedy_partition([5, 5, 3, 3, 2], 2)
        b = greedy_partition([5, 5, 3, 3, 2], 2)
        assert a == b

    def test_more_parts_than_items_leaves_empty_groups(self):
        parts = greedy_partition([7, 3], 5)
        assert len(parts) == 5
        assert sorted(idx for group in parts for idx in group) == [0, 1]
        assert sum(1 for group in parts if not group) == 3

    def test_zero_weights_spread_across_parts(self):
        # All-zero weights never change any load; the item-count tie-break
        # must still spread them instead of piling everything on part 0.
        parts = greedy_partition([0.0] * 6, 3)
        assert [len(group) for group in parts] == [2, 2, 2]

    def test_zero_weight_tail_spreads(self):
        # Mixed case: the zero-weight tail lands on the emptiest parts.
        parts = greedy_partition([5, 0, 0, 0], 2)
        assert max(len(group) for group in parts) <= 3
        assert all(group for group in parts)

    def test_equal_weight_ties_break_by_part_index(self):
        parts = greedy_partition([2, 2, 2], 3)
        assert parts == [[0], [1], [2]]


class TestRoundRobin:
    def test_assignment(self):
        assert round_robin_partition(5, 2) == [[0, 2, 4], [1, 3]]

    def test_empty(self):
        assert round_robin_partition(0, 3) == [[], [], []]

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="n_items"):
            round_robin_partition(-1, 2)


class TestImbalance:
    def test_perfect_balance_is_one(self):
        assert partition_imbalance([2, 2], [[0], [1]]) == 1.0

    def test_worst_case(self):
        # everything on one of two threads: max load = total, mean = total/2.
        assert partition_imbalance([3, 5], [[0, 1], []]) == 2.0

    def test_zero_weights(self):
        assert partition_imbalance([0, 0], [[0], [1]]) == 1.0

    def test_empty_groups_count_toward_mean(self):
        # n_parts > len(weights) is legitimate; the idle part is real lost
        # parallelism and must show up in the ratio.
        assert partition_imbalance([4], [[0], []]) == 2.0

    def test_empty_parts_rejected(self):
        with pytest.raises(ValueError, match="at least one group"):
            partition_imbalance([1, 2], [])


class TestParallelMap:
    def test_preserves_order(self):
        out = parallel_map(lambda x: x * x, list(range(10)), n_threads=3)
        assert out == [x * x for x in range(10)]

    def test_single_thread_path(self):
        out = parallel_map(lambda x: x + 1, [1, 2, 3], n_threads=1)
        assert out == [2, 3, 4]

    def test_actually_uses_threads(self):
        seen = set()

        def record(x):
            seen.add(threading.get_ident())
            return x

        parallel_map(record, list(range(50)), n_threads=4)
        # At least the pool ran (thread ids may collapse on a 1-core box,
        # but the main thread must not have done the work alone if a pool
        # was used... the guarantee we test is correctness, not placement).
        assert len(seen) >= 1

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError, match="n_threads"):
            parallel_map(lambda x: x, [1], n_threads=0)


class TestMapPartitioned:
    def test_preserves_order(self):
        out = map_partitioned(
            lambda x: x * 2, [5, 1, 4, 2], weights=[5, 1, 4, 2], n_threads=2
        )
        assert out == [10, 2, 8, 4]

    def test_matches_sequential(self):
        items = list(range(20))
        weights = [(i % 5) + 1 for i in items]
        seq = [x**2 for x in items]
        par = map_partitioned(lambda x: x**2, items, weights, n_threads=4)
        assert par == seq

    def test_weight_length_mismatch(self):
        with pytest.raises(ValueError, match="align"):
            map_partitioned(lambda x: x, [1, 2], [1], n_threads=2)

    def test_single_item(self):
        assert map_partitioned(lambda x: -x, [7], [1], n_threads=8) == [-7]
