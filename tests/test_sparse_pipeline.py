"""End-to-end tests for the sparse-slice fast path.

Covers the chain the tentpole wires together: CSR slices in
:class:`IrregularTensor`, sparse payloads in :class:`MmapSliceStore`, the
SpMM branch of ``randomized_svd`` / ``batched_randomized_svd``, and the
``compress_tensor`` → ``dpar2`` → streaming surface, plus the CLI flag.

The parity tests pin the sparse path to its densified twin: both consume
identical Gaussian sketches (same spawned generators), so factors agree to
floating-point rounding — the summation order inside each dot product is
the only difference.
"""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.data.registry import load_dataset
from repro.data.synthetic import sparse_irregular_tensor
from repro.decomposition.dpar2 import compress_tensor, dpar2
from repro.decomposition.spartan import spartan
from repro.decomposition.streaming import StreamingDpar2
from repro.linalg.kernels import batched_randomized_svd
from repro.linalg.randomized_svd import randomized_svd
from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import random_sparse
from repro.tensor.irregular import IrregularTensor
from repro.tensor.mmap_store import MmapSliceStore
from repro.util.config import DecompositionConfig
from repro.util.rng import spawn_generators


def sparse_slices(heights, n_columns=24, density=0.08, dtype=np.float64, seed=0):
    return [
        random_sparse(
            (h, n_columns), density, np.random.default_rng(seed + i), dtype=dtype
        )
        for i, h in enumerate(heights)
    ]


@pytest.fixture
def sparse_tensor():
    return IrregularTensor(
        sparse_slices([30, 40, 30, 55, 40, 30]),
        copy=False,
        density_threshold=1.0,
    )


# --------------------------------------------------------------------- #
# stage-1 kernels
# --------------------------------------------------------------------- #


class TestSparseRandomizedSvd:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_single_matrix_matches_densified(self, dtype):
        csr = random_sparse((40, 24), 0.1, np.random.default_rng(0), dtype=dtype)
        sparse_out = randomized_svd(csr, 5, random_state=7)
        dense_out = randomized_svd(csr.to_dense(), 5, random_state=7)
        tol = 1e-9 if dtype == np.float64 else 1e-3
        np.testing.assert_allclose(sparse_out.U, dense_out.U, atol=tol)
        np.testing.assert_allclose(
            sparse_out.singular_values, dense_out.singular_values, atol=tol
        )
        np.testing.assert_allclose(sparse_out.V, dense_out.V, atol=tol)
        assert sparse_out.U.dtype == dtype

    def test_deterministic_for_fixed_seed(self):
        csr = random_sparse((30, 20), 0.1, np.random.default_rng(1))
        a = randomized_svd(csr, 4, random_state=3)
        b = randomized_svd(csr, 4, random_state=3)
        np.testing.assert_array_equal(a.U, b.U)
        np.testing.assert_array_equal(a.V, b.V)

    def test_rejects_device_backend(self):
        csr = random_sparse((10, 8), 0.2, np.random.default_rng(0))
        with pytest.raises((ValueError, ImportError), match="CSR|torch"):
            randomized_svd(csr, 3, random_state=0, xp="torch")


class TestSparseBatchedStage1:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("pad_ratio", [0.0, 1.0])
    def test_matches_densified_per_bucket(self, dtype, pad_ratio):
        slices = sparse_slices([20, 35, 20, 50, 35, 20], dtype=dtype)
        dense = [S.to_dense() for S in slices]
        sparse_out = batched_randomized_svd(
            slices, 6, generators=spawn_generators(0, 6), max_pad_ratio=pad_ratio
        )
        dense_out = batched_randomized_svd(
            dense, 6, generators=spawn_generators(0, 6), max_pad_ratio=pad_ratio
        )
        tol = 1e-8 if dtype == np.float64 else 1e-2
        for s_res, d_res in zip(sparse_out, dense_out):
            np.testing.assert_allclose(s_res.U, d_res.U, atol=tol)
            np.testing.assert_allclose(
                s_res.singular_values, d_res.singular_values, atol=tol
            )
            np.testing.assert_allclose(s_res.V, d_res.V, atol=tol)
            assert s_res.U.dtype == dtype

    def test_mixed_bucket_densifies_sparse_members(self):
        rng = np.random.default_rng(5)
        items = [
            random_sparse((25, 12), 0.2, np.random.default_rng(0)),
            rng.standard_normal((25, 12)),
        ]
        out = batched_randomized_svd(items, 4, generators=spawn_generators(1, 2))
        ref = batched_randomized_svd(
            [items[0].to_dense(), items[1]], 4, generators=spawn_generators(1, 2)
        )
        for a, b in zip(out, ref):
            np.testing.assert_allclose(a.U, b.U, atol=1e-10)

    def test_sparse_run_is_deterministic(self):
        slices = sparse_slices([20, 20, 30])
        a = batched_randomized_svd(slices, 4, generators=spawn_generators(2, 3))
        b = batched_randomized_svd(slices, 4, generators=spawn_generators(2, 3))
        for r1, r2 in zip(a, b):
            np.testing.assert_array_equal(r1.U, r2.U)

    def test_rejects_device_backend(self):
        slices = sparse_slices([10, 10])
        with pytest.raises((ValueError, ImportError), match="CSR|torch"):
            batched_randomized_svd(
                slices, 3, generators=spawn_generators(0, 2), xp="torch"
            )


# --------------------------------------------------------------------- #
# tensor container
# --------------------------------------------------------------------- #


class TestSparseIrregularTensor:
    def test_holds_csr_slices(self, sparse_tensor):
        assert sparse_tensor.has_sparse_slices
        assert isinstance(sparse_tensor[0], CsrMatrix)
        assert sparse_tensor.n_columns == 24
        assert "sparse" in repr(sparse_tensor)

    def test_n_entries_counts_nnz(self, sparse_tensor):
        assert sparse_tensor.n_entries == sum(
            Xk.nnz for Xk in sparse_tensor.slices
        )

    def test_squared_norm_matches_densified(self, sparse_tensor):
        assert sparse_tensor.squared_norm() == pytest.approx(
            sparse_tensor.densified().squared_norm()
        )

    def test_dense_slices_above_threshold_densified(self):
        dense_ish = random_sparse((10, 10), 0.6, np.random.default_rng(0))
        tensor = IrregularTensor([dense_ish], density_threshold=0.25)
        assert not tensor.has_sparse_slices
        np.testing.assert_array_equal(tensor[0], dense_ish.to_dense())

    def test_sparsify_and_densified_round_trip(self, sparse_tensor):
        dense = sparse_tensor.densified()
        assert not dense.has_sparse_slices
        back = dense.sparsify(0.5)
        assert back.has_sparse_slices
        np.testing.assert_array_equal(
            back[0].to_dense(), np.asarray(dense[0])
        )
        assert back.squared_norm() == pytest.approx(dense.squared_norm())

    def test_sparsify_leaves_dense_slices_above_threshold(self):
        rng = np.random.default_rng(0)
        tensor = IrregularTensor(
            [rng.standard_normal((8, 6))], copy=False
        ).sparsify(0.05)
        assert not tensor.has_sparse_slices

    def test_astype_scaled_subset_preserve_representation(self, sparse_tensor):
        t32 = sparse_tensor.astype(np.float32)
        assert t32.dtype == np.dtype(np.float32)
        assert isinstance(t32[0], CsrMatrix)
        assert t32[0].dtype == np.float32
        scaled = sparse_tensor.scaled(2.0)
        assert isinstance(scaled[0], CsrMatrix)
        np.testing.assert_allclose(
            scaled[0].to_dense(), 2.0 * sparse_tensor[0].to_dense()
        )
        sub = sparse_tensor.subset([0, 2])
        assert sub.n_slices == 2 and isinstance(sub[0], CsrMatrix)

    def test_transpose_concatenation_densifies(self, sparse_tensor):
        out = sparse_tensor.transpose_concatenation()
        assert out.shape == (24, sum(sparse_tensor.row_counts))

    def test_nonfinite_csr_rejected(self):
        bad = CsrMatrix((2, 2), [0, 1, 2], [0, 1], [1.0, np.nan])
        with pytest.raises(ValueError, match="NaN"):
            IrregularTensor([bad])

    def test_to_backend_refuses_sparse(self, sparse_tensor):
        with pytest.raises((ValueError, ImportError), match="sparse|torch"):
            sparse_tensor.to_backend("torch")


# --------------------------------------------------------------------- #
# out-of-core store
# --------------------------------------------------------------------- #


class TestSparseStore:
    def test_round_trip_mixed_payloads(self, sparse_tensor, tmp_path, rng):
        dense_slice = rng.standard_normal((12, 24))
        mixed = IrregularTensor(
            list(sparse_tensor.slices) + [dense_slice],
            copy=False,
            density_threshold=1.0,
        )
        store = mixed.to_store(tmp_path / "store")
        reopened = MmapSliceStore.open(tmp_path / "store")
        assert reopened.row_counts == mixed.row_counts
        loaded = reopened.as_tensor()
        assert isinstance(loaded[0], CsrMatrix)
        np.testing.assert_array_equal(
            loaded[0].to_dense(), sparse_tensor[0].to_dense()
        )
        np.testing.assert_array_equal(np.asarray(loaded[-1]), dense_slice)
        assert store.nbytes == sum(Xk.nbytes for Xk in loaded.slices)

    def test_sparse_payload_loads_memory_mapped(self, sparse_tensor, tmp_path):
        store = sparse_tensor.to_store(tmp_path / "store")
        slice0 = store.load_slice(0)
        assert isinstance(slice0, CsrMatrix)
        # Values must surface as np.memmap directly: the out-of-core
        # exclusions (exact-convergence hoist, device backends) key on it.
        assert isinstance(slice0.data, np.memmap)

    def test_append_rejects_nonfinite_csr(self, tmp_path):
        store = MmapSliceStore.create(tmp_path / "store")
        bad = CsrMatrix((2, 3), [0, 1, 2], [0, 1], [1.0, np.inf])
        with pytest.raises(ValueError, match="NaN or Inf"):
            store.append(bad)

    def test_dense_only_store_stays_version_1(self, tmp_path, rng):
        MmapSliceStore.create(tmp_path / "store", [rng.random((5, 4))])
        manifest = json.loads((tmp_path / "store" / "manifest.json").read_text())
        assert manifest["version"] == 1

    def test_sparse_store_is_version_2(self, sparse_tensor, tmp_path):
        sparse_tensor.to_store(tmp_path / "store")
        manifest = json.loads((tmp_path / "store" / "manifest.json").read_text())
        assert manifest["version"] == 2

    def test_unknown_version_rejected(self, tmp_path, rng):
        MmapSliceStore.create(tmp_path / "store", [rng.random((5, 4))])
        manifest_path = tmp_path / "store" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="version"):
            MmapSliceStore.open(tmp_path / "store")

    def test_append_casts_values_to_store_dtype(self, tmp_path):
        store = MmapSliceStore.create(tmp_path / "store", dtype=np.float32)
        store.append(random_sparse((6, 5), 0.3, np.random.default_rng(0)))
        loaded = store.load_slice(0)
        assert loaded.dtype == np.float32

    def test_overwrite_removes_sparse_payload_files(self, sparse_tensor, tmp_path):
        directory = tmp_path / "store"
        sparse_tensor.to_store(directory)
        MmapSliceStore.create(directory, [np.ones((3, 24))], overwrite=True)
        leftovers = [p for p in directory.glob("slice_*.npy")]
        assert len(leftovers) == 1  # just the one dense payload

    def test_mixed_memmap_store_keeps_streaming_stage1(self, tmp_path, rng):
        # A store mixing CSR and dense payloads must not let the sparse
        # routing force batched stage 1: batching stacks the dense memmap
        # buckets into RAM, defeating out-of-core.
        from repro.decomposition.dpar2 import _use_batched_stage1
        from repro.linalg.array_module import get_xp
        from repro.parallel.backends import get_backend

        mixed = [
            random_sparse((20, 10), 0.2, np.random.default_rng(0)),
            rng.random((25, 10)),
        ]
        store = MmapSliceStore.create(tmp_path / "store", mixed)
        tensor = IrregularTensor.from_store(store)
        with get_backend("serial", 1) as engine:
            assert not _use_batched_stage1(
                "auto", engine, tensor, True, get_xp("numpy")
            )
        # An all-in-RAM mixed tensor still batches.
        in_ram = IrregularTensor(mixed, copy=False, density_threshold=1.0)
        with get_backend("serial", 1) as engine:
            assert _use_batched_stage1(
                "auto", engine, in_ram, True, get_xp("numpy")
            )

    def test_dpar2_streams_sparse_store(self, sparse_tensor, tmp_path):
        store = sparse_tensor.to_store(tmp_path / "store")
        config = DecompositionConfig(
            rank=4, max_iterations=5, random_state=0, backend="serial"
        )
        from_store = dpar2(IrregularTensor.from_store(store), config)
        in_ram = dpar2(sparse_tensor, config)
        np.testing.assert_allclose(from_store.V, in_ram.V, atol=1e-10)


# --------------------------------------------------------------------- #
# decomposition surface
# --------------------------------------------------------------------- #


class TestSparseDpar2:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_matches_densified_run(self, sparse_tensor, dtype):
        config = DecompositionConfig(
            rank=4, max_iterations=6, random_state=0, backend="serial", dtype=dtype
        )
        sparse_result = dpar2(sparse_tensor, config)
        dense_result = dpar2(sparse_tensor.densified(), config)
        tol = 1e-7 if dtype == "float64" else 1e-2
        np.testing.assert_allclose(sparse_result.V, dense_result.V, atol=tol)
        np.testing.assert_allclose(sparse_result.S, dense_result.S, atol=tol)
        assert sparse_result.fitness(sparse_tensor) == pytest.approx(
            dense_result.fitness(sparse_tensor.densified()), abs=1e-5
        )

    def test_compression_never_densifies_storage(self, sparse_tensor):
        compressed = compress_tensor(
            sparse_tensor, 4, random_state=0, backend="serial"
        )
        assert compressed.n_slices == sparse_tensor.n_slices
        assert compressed.D.shape == (24, 4)

    def test_exact_convergence_on_sparse(self, sparse_tensor):
        config = DecompositionConfig(
            rank=4, max_iterations=4, random_state=0, backend="serial"
        )
        exact = dpar2(sparse_tensor, config, exact_convergence=True)
        dense_exact = dpar2(
            sparse_tensor.densified(), config, exact_convergence=True
        )
        for a, b in zip(exact.history, dense_exact.history):
            assert a.criterion == pytest.approx(b.criterion, rel=1e-6)

    def test_thread_backend_matches_serial(self, sparse_tensor):
        serial = dpar2(
            sparse_tensor,
            DecompositionConfig(
                rank=4, max_iterations=5, random_state=1, backend="serial"
            ),
        )
        threaded = dpar2(
            sparse_tensor,
            DecompositionConfig(
                rank=4, max_iterations=5, random_state=1,
                backend="thread", n_threads=2,
            ),
        )
        np.testing.assert_array_equal(serial.V, threaded.V)

    def test_device_backend_composes(self, sparse_tensor):
        # Sparse input now rides the xp sparse surface on any backend; on a
        # machine without torch the attempt surfaces the backend error, and
        # with torch installed the factors must match the host run closely.
        from repro.linalg.array_module import (
            BackendUnavailableError, backend_available,
        )

        config = DecompositionConfig(
            rank=4, max_iterations=3, random_state=0,
            backend="serial", compute_backend="torch",
        )
        if not backend_available("torch"):
            with pytest.raises(BackendUnavailableError, match="torch"):
                dpar2(sparse_tensor, config)
            return
        device = dpar2(sparse_tensor, config)
        host = dpar2(
            sparse_tensor,
            DecompositionConfig(
                rank=4, max_iterations=3, random_state=0, backend="serial"
            ),
        )
        np.testing.assert_allclose(device.V, host.V, atol=1e-8)

    def test_dense_only_solvers_reject_sparse_clearly(self, sparse_tensor):
        from repro.decomposition.parafac2_als import parafac2_als
        from repro.decomposition.rd_als import rd_als

        config = DecompositionConfig(rank=3, max_iterations=2, random_state=0)
        with pytest.raises(ValueError, match="sparse"):
            parafac2_als(sparse_tensor, config)
        with pytest.raises(ValueError, match="sparse"):
            rd_als(sparse_tensor, config)

    def test_spartan_accepts_sparse_tensor(self, sparse_tensor):
        result = spartan(
            sparse_tensor,
            DecompositionConfig(
                rank=3, max_iterations=3, random_state=0, backend="serial"
            ),
        )
        assert np.isfinite(result.fitness(sparse_tensor))


class TestSparseStreaming:
    def test_absorb_sparse_slices(self):
        stream = StreamingDpar2(
            DecompositionConfig(rank=3, random_state=0, backend="serial")
        )
        for i in range(3):
            stream.absorb(
                random_sparse((20, 12), 0.15, np.random.default_rng(i))
            )
        assert stream.n_slices == 3
        assert stream.result().V.shape == (12, 3)

    def test_absorb_rejects_nonfinite_csr(self):
        stream = StreamingDpar2(DecompositionConfig(rank=2, random_state=0))
        bad = CsrMatrix((2, 3), [0, 1, 2], [0, 1], [1.0, np.nan])
        with pytest.raises(ValueError, match="NaN or Inf"):
            stream.absorb(bad)
        with pytest.raises(ValueError, match="NaN or Inf"):
            stream.absorb_many([bad])

    def test_absorb_many_matches_densified(self):
        batch = sparse_slices([20, 25, 20], n_columns=12, density=0.2)
        config = DecompositionConfig(rank=3, random_state=0, backend="serial")
        sparse_stream = StreamingDpar2(config)
        sparse_stream.absorb_many(batch)
        dense_stream = StreamingDpar2(config)
        dense_stream.absorb_many([S.to_dense() for S in batch])
        np.testing.assert_allclose(
            sparse_stream.result().V, dense_stream.result().V, atol=1e-7
        )


# --------------------------------------------------------------------- #
# generator, dataset, CLI
# --------------------------------------------------------------------- #


class TestSparseWorkload:
    def test_generator_density_and_dtype(self):
        tensor = sparse_irregular_tensor(
            100, 40, 8, density=0.05, random_state=0, dtype=np.float32
        )
        assert tensor.has_sparse_slices
        assert tensor.dtype == np.dtype(np.float32)
        total = sum(h * 40 for h in tensor.row_counts)
        assert tensor.n_entries / total == pytest.approx(0.05, rel=0.3)

    def test_generator_validates(self):
        with pytest.raises(ValueError, match="density"):
            sparse_irregular_tensor(10, 5, 2, density=1.5)

    def test_registry_dataset(self):
        tensor = load_dataset("sparse", random_state=0)
        assert tensor.has_sparse_slices

    def test_paper_dataset_sweep_excludes_sparse(self):
        # The figure harnesses sweep dense-only baselines over this tuple;
        # the CSR-native dataset must stay out of it.
        from repro.data.registry import DATASETS, PAPER_DATASET_NAMES

        assert "sparse" not in PAPER_DATASET_NAMES
        assert len(PAPER_DATASET_NAMES) == 8
        assert set(PAPER_DATASET_NAMES) < set(DATASETS)

    def test_cli_sparse_dataset(self, capsys):
        code = cli_main(
            ["decompose", "sparse", "--rank", "3", "--max-iterations", "2",
             "--backend", "serial"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CSR form" in out and "fitness" in out

    def test_cli_density_threshold(self, capsys):
        code = cli_main(
            ["decompose", "traffic", "--rank", "3", "--max-iterations", "2",
             "--backend", "serial", "--density-threshold", "0.99"]
        )
        assert code == 0
        assert "CSR form" in capsys.readouterr().out

    def test_cli_bad_threshold_rejected(self, capsys):
        code = cli_main(
            ["decompose", "traffic", "--density-threshold", "1.5"]
        )
        assert code == 2

    def test_cli_sparse_device_backend(self, capsys):
        # No up-front sparse-x-backend refusal anymore: the run either
        # completes on the device backend or fails with the backend error.
        from repro.linalg.array_module import backend_available

        code = cli_main(
            ["decompose", "sparse", "--rank", "3", "--max-iterations", "2",
             "--backend", "serial", "--compute-backend", "torch"]
        )
        captured = capsys.readouterr()
        if backend_available("torch"):
            assert code == 0
            assert "CSR form" in captured.out and "fitness" in captured.out
        else:
            assert code == 2
            assert "torch" in captured.err

    def test_cli_sparse_unsupported_method(self, capsys):
        code = cli_main(
            ["decompose", "sparse", "--method", "parafac2_als"]
        )
        assert code == 2


class TestBenchSchema:
    """check_against_baseline must stay readable across schema versions."""

    def test_old_baseline_skips_sparse_metrics(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))
        try:
            from bench_kernels import check_against_baseline
        finally:
            sys.path.pop(0)
        record = {
            "schema_version": 3, "compute_backend": "numpy",
            "n_slices": 240, "n_columns": 30, "rank": 8, "sweeps": 8,
            "iterate_seconds": 0.01, "preprocess_seconds": 0.01,
            "sparse_spmm": "scipy", "sparse_density": 0.02,
            "stage1_sparse_seconds": 0.03, "stage1_sparse_speedup": 4.0,
            "sparse_peak_bytes": 10, "sparse_dense_peak_bytes": 20,
        }
        v2_baseline = {
            "schema_version": 2, "compute_backend": "numpy",
            "n_slices": 240, "n_columns": 30, "rank": 8, "sweeps": 8,
            "iterate_seconds": 0.01, "preprocess_seconds": 0.01,
        }
        assert check_against_baseline(record, v2_baseline, 2.0) == []
        # sparse regression caught against a v3 baseline
        v3_baseline = dict(v2_baseline, schema_version=3,
                           stage1_sparse_seconds=0.01)
        failures = check_against_baseline(record, v3_baseline, 2.0)
        assert any("stage1_sparse_seconds" in f for f in failures)
        # speedup guard fires on the scipy kernel below 3x
        slow = dict(record, stage1_sparse_speedup=2.0)
        assert any(
            "sparse stage 1" in f
            for f in check_against_baseline(slow, v2_baseline, 2.0)
        )
        # ...but only requires parity on the numpy fallback
        fallback = dict(record, sparse_spmm="numpy", stage1_sparse_speedup=1.4)
        assert check_against_baseline(fallback, v2_baseline, 2.0) == []
        # peak-memory guard
        fat = dict(record, sparse_peak_bytes=30)
        assert any(
            "peak memory" in f
            for f in check_against_baseline(fat, v2_baseline, 2.0)
        )
