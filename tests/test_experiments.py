"""Tests for the experiment harness, reporting, and per-figure modules.

Figure modules are exercised at reduced sizes — these are smoke-plus-shape
tests: each run() must produce a well-formed report whose qualitative
finding matches the paper's direction where that is cheap to check.
"""

import numpy as np
import pytest

from repro.experiments.harness import (
    MethodMeasurement,
    measure_method,
    speedup_over_best_competitor,
    sweep_methods,
)
from repro.experiments.reporting import ExperimentReport, render_table
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig


@pytest.fixture
def tiny_tensor():
    return low_rank_irregular_tensor(
        [20, 30, 25, 35], 16, rank=3, noise=0.05, random_state=0
    )


@pytest.fixture
def tiny_config():
    return DecompositionConfig(rank=3, max_iterations=4, tolerance=0.0,
                               random_state=0)


class TestRenderTable:
    def test_alignment_and_content(self):
        out = render_table(["a", "bb"], [[1, 2.5], ["x", 3.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.5" in lines[2]

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        out = render_table(["x"], [[1.23456789e-7]])
        assert "e-07" in out

    def test_empty_rows_ok(self):
        out = render_table(["col"], [])
        assert "col" in out


class TestExperimentReport:
    def test_render_contains_everything(self):
        report = ExperimentReport(
            "figX", "Title", ["h1"], [[1.0]], findings=["important"]
        )
        text = report.render()
        assert "figX" in text and "Title" in text and "important" in text

    def test_markdown_table(self):
        report = ExperimentReport("figX", "T", ["a", "b"], [[1, 2]])
        md = report.to_markdown()
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md


class TestHarness:
    def test_measure_method(self, tiny_tensor, tiny_config):
        m = measure_method(tiny_tensor, "dpar2", tiny_config)
        assert m.method == "dpar2"
        assert m.total_seconds > 0
        assert 0.0 <= m.fitness <= 1.0
        assert m.n_iterations == 4

    def test_seconds_per_iteration(self, tiny_tensor, tiny_config):
        m = measure_method(tiny_tensor, "parafac2_als", tiny_config)
        assert m.seconds_per_iteration == pytest.approx(
            m.iterate_seconds / m.n_iterations
        )

    def test_display_name(self, tiny_tensor, tiny_config):
        m = measure_method(tiny_tensor, "dpar2", tiny_config)
        assert m.display_name == "DPar2"

    def test_repeats_validated(self, tiny_tensor, tiny_config):
        with pytest.raises(ValueError, match="repeats"):
            measure_method(tiny_tensor, "dpar2", tiny_config, repeats=0)

    def test_sweep_covers_all_solvers(self, tiny_tensor, tiny_config):
        out = sweep_methods(tiny_tensor, tiny_config)
        assert [m.method for m in out] == [
            "dpar2", "rd_als", "parafac2_als", "spartan",
        ]

    def test_speedup_computation(self):
        def meas(method, total):
            return MethodMeasurement(
                method=method, rank=5, fitness=0.9,
                preprocess_seconds=0.0, iterate_seconds=total,
                n_iterations=1, preprocessed_bytes=0,
            )

        out = speedup_over_best_competitor(
            [meas("dpar2", 1.0), meas("rd_als", 3.0), meas("spartan", 2.0)]
        )
        assert out == pytest.approx(2.0)

    def test_speedup_needs_target(self):
        m = MethodMeasurement("rd_als", 5, 0.9, 0.0, 1.0, 1, 0)
        with pytest.raises(ValueError, match="competitor"):
            speedup_over_best_competitor([m])


class TestFigureModules:
    def test_fig1_report(self):
        from repro.experiments import fig1_tradeoff

        report = fig1_tradeoff.run(
            datasets=("activity",), ranks=(4,), max_iterations=2,
            n_threads=1, random_state=0,
        )
        assert report.experiment_id == "fig1"
        assert len(report.rows) == 4  # one per method
        for row in report.rows:
            assert 0.0 <= row[4] <= 1.0  # fitness column

    def test_fig8_report(self):
        from repro.experiments import fig8_slice_lengths

        report = fig8_slice_lengths.run(n_threads=4, random_state=0)
        assert len(report.rows) == 2
        for row in report.rows:
            # greedy imbalance (last col) must not exceed round-robin's
            assert row[-1] <= row[-2] + 1e-9

    def test_fig9a_report(self):
        from repro.experiments import fig9_preprocessing

        report = fig9_preprocessing.run(
            datasets=("activity",), rank=4, repeats=1, n_threads=1,
            random_state=0,
        )
        assert report.rows[0][1] > 0  # dpar2 preprocessing time
        assert report.rows[0][2] > 0  # rd-als preprocessing time

    def test_fig9b_report(self):
        from repro.experiments import fig9_iteration

        report = fig9_iteration.run(
            datasets=("activity",), rank=4, max_iterations=2, n_threads=1,
            random_state=0,
        )
        assert len(report.headers) == 5  # dataset + 4 methods

    def test_fig10_report(self):
        from repro.experiments import fig10_compression

        report = fig10_compression.run(datasets=("activity",), rank=4,
                                       random_state=0)
        input_bytes, dpar2_bytes = report.rows[0][1], report.rows[0][2]
        assert dpar2_bytes < input_bytes

    def test_fig11_size_report(self):
        from repro.experiments import fig11_scalability

        report = fig11_scalability.run_size(
            scale=0.03, rank=3, max_iterations=2, n_threads=1, random_state=0
        )
        assert len(report.rows) == 5  # the five paper grid points

    def test_fig11_threads_modeled_scaleup(self):
        from repro.experiments.fig11_scalability import modeled_scale_up

        counts = [100] * 64
        s1 = modeled_scale_up(counts, 1, parallel_fraction=0.9)
        s4 = modeled_scale_up(counts, 4, parallel_fraction=0.9)
        s8 = modeled_scale_up(counts, 8, parallel_fraction=0.9)
        assert s1 == pytest.approx(1.0)
        assert 1.0 < s4 < 4.0
        assert s4 < s8 <= 8.0

    def test_fig11_modeled_scaleup_validates(self):
        from repro.experiments.fig11_scalability import modeled_scale_up

        with pytest.raises(ValueError, match="parallel_fraction"):
            modeled_scale_up([1, 2], 2, parallel_fraction=1.5)

    def test_table2_report(self):
        from repro.experiments import table2_datasets

        report = table2_datasets.run(random_state=0)
        assert len(report.rows) == 8

    def test_table3_report(self):
        from repro.experiments import table3_similar_stocks

        report = table3_similar_stocks.run(rank=6, random_state=0)
        assert len(report.rows) == 10
        tickers = {row[1] for row in report.rows}
        assert "MSFT" not in tickers  # the query is excluded

    def test_fig12_market_correlations_shape(self):
        from repro.experiments import fig12_correlation

        matrix = fig12_correlation.market_correlations(
            "kr_stock", rank=6, random_state=0
        )
        assert matrix.shape == (8, 8)
        np.testing.assert_allclose(np.diag(matrix), 1.0, atol=1e-8)
