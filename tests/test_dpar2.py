"""Tests for DPar2 (Algorithm 3): compression, update rules, convergence."""

import numpy as np
import pytest

from repro.decomposition.dpar2 import CompressedTensor, compress_tensor, dpar2
from repro.decomposition.parafac2_als import parafac2_als
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig
from tests.conftest import assert_valid_parafac2_result


class TestCompression:
    def test_factor_shapes(self, small_tensor):
        R = 3
        c = compress_tensor(small_tensor, R, random_state=0)
        assert c.rank == R
        assert c.n_slices == small_tensor.n_slices
        assert c.D.shape == (small_tensor.n_columns, R)
        assert c.E.shape == (R,)
        assert c.F_blocks.shape == (small_tensor.n_slices, R, R)
        for k, Ak in enumerate(c.A):
            assert Ak.shape == (small_tensor.row_counts[k], R)

    def test_A_orthonormal(self, small_tensor):
        c = compress_tensor(small_tensor, 3, random_state=0)
        for Ak in c.A:
            np.testing.assert_allclose(Ak.T @ Ak, np.eye(3), atol=1e-8)

    def test_D_orthonormal(self, small_tensor):
        c = compress_tensor(small_tensor, 3, random_state=0)
        np.testing.assert_allclose(c.D.T @ c.D, np.eye(3), atol=1e-8)

    def test_exact_on_low_rank_data(self):
        tensor = low_rank_irregular_tensor([25, 30, 20], 15, rank=3,
                                           noise=0.0, random_state=0)
        c = compress_tensor(tensor, 3, power_iterations=2, random_state=0)
        for k, Xk in enumerate(tensor):
            np.testing.assert_allclose(c.reconstruct_slice(k), Xk, atol=1e-6)

    def test_compression_shrinks_storage(self, structured_tensor):
        c = compress_tensor(structured_tensor, 4, random_state=0)
        assert c.nbytes < structured_tensor.nbytes
        assert c.compression_ratio(structured_tensor) > 1.0

    def test_threaded_matches_sequential(self, structured_tensor):
        a = compress_tensor(structured_tensor, 4, random_state=5, n_threads=1)
        b = compress_tensor(structured_tensor, 4, random_state=5, n_threads=3)
        for Ak, Bk in zip(a.A, b.A):
            np.testing.assert_allclose(Ak, Bk, atol=1e-10)
        np.testing.assert_allclose(a.D, b.D, atol=1e-10)

    def test_naive_partition_matches_greedy(self, structured_tensor):
        a = compress_tensor(structured_tensor, 4, random_state=5,
                            n_threads=2, use_greedy_partition=True)
        b = compress_tensor(structured_tensor, 4, random_state=5,
                            n_threads=2, use_greedy_partition=False)
        np.testing.assert_allclose(a.D, b.D, atol=1e-10)

    def test_records_time(self, small_tensor):
        c = compress_tensor(small_tensor, 3, random_state=0)
        assert c.seconds > 0.0

    def test_inconsistent_shapes_rejected(self, small_tensor):
        c = compress_tensor(small_tensor, 3, random_state=0)
        with pytest.raises(ValueError, match="E must have shape"):
            CompressedTensor(A=c.A, D=c.D, E=np.ones(5), F_blocks=c.F_blocks)


class TestDpar2:
    def test_result_structure(self, small_tensor, default_config):
        result = dpar2(small_tensor, default_config)
        assert result.method == "dpar2"
        assert_valid_parafac2_result(result, small_tensor)

    def test_fits_noiseless_data(self, noiseless_tensor):
        config = DecompositionConfig(rank=3, max_iterations=100,
                                     tolerance=1e-12, power_iterations=2,
                                     random_state=0)
        result = dpar2(noiseless_tensor, config)
        assert result.fitness(noiseless_tensor) > 0.99

    def test_comparable_fitness_to_exact_als(self, structured_tensor):
        config = DecompositionConfig(rank=4, max_iterations=30, random_state=0)
        fit_fast = dpar2(structured_tensor, config).fitness(structured_tensor)
        fit_exact = parafac2_als(structured_tensor, config).fitness(structured_tensor)
        assert abs(fit_fast - fit_exact) < 0.05

    def test_criterion_monotone(self, structured_tensor, default_config):
        result = dpar2(structured_tensor, default_config)
        values = [r.criterion for r in result.history]
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier + 1e-6 * max(abs(earlier), 1.0)

    def test_compressed_criterion_equals_exact_identity(self, structured_tensor):
        """Section III-E: the compressed criterion equals
        Σk ‖Ak F(k) E Dᵀ − X̂k‖² computed on materialized matrices."""
        config = DecompositionConfig(rank=4, max_iterations=5,
                                     tolerance=0.0, random_state=0)
        compressed = compress_tensor(structured_tensor, 4, random_state=0)
        result = dpar2(structured_tensor, config, compressed=compressed)

        # Recompute the criterion naively from the returned factors.
        naive = 0.0
        for k in range(result.n_slices):
            X_tilde = compressed.reconstruct_slice(k)
            X_hat = result.reconstruct_slice(k)
            naive += np.sum((X_tilde - X_hat) ** 2)
        assert result.history[-1].criterion == pytest.approx(naive, rel=1e-6)

    def test_exact_convergence_ablation(self, structured_tensor):
        config = DecompositionConfig(rank=4, max_iterations=5,
                                     tolerance=0.0, random_state=0)
        result = dpar2(structured_tensor, config, exact_convergence=True)
        exact = result.residual_squared(structured_tensor)
        assert result.history[-1].criterion == pytest.approx(exact, rel=1e-6)

    def test_precomputed_compression_reused(self, structured_tensor):
        config = DecompositionConfig(rank=4, max_iterations=5, random_state=0)
        compressed = compress_tensor(structured_tensor, 4, random_state=0)
        result = dpar2(structured_tensor, config, compressed=compressed)
        assert result.preprocess_seconds == compressed.seconds
        assert result.preprocessed_bytes == compressed.nbytes

    def test_precomputed_compression_rank_check(self, structured_tensor):
        compressed = compress_tensor(structured_tensor, 2, random_state=0)
        with pytest.raises(ValueError, match="rank"):
            dpar2(structured_tensor,
                  DecompositionConfig(rank=4, max_iterations=2),
                  compressed=compressed)

    def test_deterministic_given_seed(self, structured_tensor):
        config = DecompositionConfig(rank=4, max_iterations=8, random_state=9)
        a = dpar2(structured_tensor, config)
        b = dpar2(structured_tensor, config)
        np.testing.assert_allclose(a.V, b.V, atol=1e-12)
        np.testing.assert_allclose(a.H, b.H, atol=1e-12)

    def test_threaded_iterations_match(self, structured_tensor):
        config = DecompositionConfig(rank=4, max_iterations=8,
                                     tolerance=0.0, random_state=2)
        seq = dpar2(structured_tensor, config)
        par = dpar2(structured_tensor, config.with_(n_threads=3))
        assert seq.fitness(structured_tensor) == pytest.approx(
            par.fitness(structured_tensor), abs=1e-6
        )

    def test_preprocessed_smaller_than_input(self, structured_tensor,
                                             default_config):
        result = dpar2(structured_tensor, default_config)
        assert result.preprocessed_bytes < structured_tensor.nbytes

    def test_rank_capped_by_smallest_slice(self, rng):
        from repro.tensor.random import random_irregular_tensor

        tensor = random_irregular_tensor([4, 20, 20], 10, random_state=0)
        result = dpar2(tensor, DecompositionConfig(rank=8, max_iterations=2))
        assert result.rank == 4

    def test_keyword_overrides(self, small_tensor, default_config):
        result = dpar2(small_tensor, default_config, rank=2, max_iterations=3)
        assert result.rank == 2
        assert result.n_iterations <= 3

    def test_converges(self, noiseless_tensor):
        config = DecompositionConfig(rank=3, max_iterations=200,
                                     tolerance=1e-6, random_state=0)
        result = dpar2(noiseless_tensor, config)
        assert result.converged


class TestZeroIterations:
    """Regression: ``max_iterations=0`` must not hit an unbound ``polar``.

    The sweep loop never runs, so the solver has to materialize
    ``Qk = Ak`` (identity polar factor) instead of reading a name only the
    loop body binds.
    """

    def test_dpar2_zero_sweeps(self, structured_tensor):
        result = dpar2(
            structured_tensor,
            DecompositionConfig(rank=4, max_iterations=0, random_state=0),
        )
        assert result.n_iterations == 0
        assert result.converged is False
        assert result.history == []
        assert_valid_parafac2_result(result, structured_tensor)

    def test_dpar2_zero_sweeps_q_equals_compression_subspace(
        self, structured_tensor
    ):
        compressed = compress_tensor(structured_tensor, 4, random_state=0)
        result = dpar2(
            structured_tensor,
            DecompositionConfig(rank=4, max_iterations=0, random_state=0),
            compressed=compressed,
        )
        for Qk, Ak in zip(result.Q, compressed.A):
            np.testing.assert_array_equal(Qk, Ak)

    def test_all_solvers_survive_zero_sweeps(self, structured_tensor):
        from repro.decomposition.registry import SOLVERS

        config = DecompositionConfig(rank=3, max_iterations=0, random_state=1)
        for name, solver in SOLVERS.items():
            result = solver(structured_tensor, config)
            assert result.n_iterations == 0, name
            assert_valid_parafac2_result(result, structured_tensor)


class TestHigherRankCompressionReuse:
    """A precomputed compression may have more rank than the target; its
    extra directions must be truncated, not crash the polar SVDs."""

    def test_higher_rank_compressed_accepted(self, structured_tensor):
        compressed = compress_tensor(structured_tensor, 6, random_state=0)
        result = dpar2(
            structured_tensor,
            DecompositionConfig(rank=3, max_iterations=4, random_state=0),
            compressed=compressed,
        )
        assert_valid_parafac2_result(result, structured_tensor)
        assert result.rank == 3

    def test_higher_rank_compressed_zero_sweeps(self, structured_tensor):
        compressed = compress_tensor(structured_tensor, 6, random_state=0)
        result = dpar2(
            structured_tensor,
            DecompositionConfig(rank=3, max_iterations=0, random_state=0),
            compressed=compressed,
        )
        for Qk, Ak in zip(result.Q, compressed.A):
            np.testing.assert_array_equal(Qk, Ak[:, :3])
