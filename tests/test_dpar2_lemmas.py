"""Direct verification of Lemmas 1-3 (Section III-E).

Each lemma claims that an einsum over the small factorized matrices equals
the naive MTTKRP computed by materializing the stacked tensor
``Y(:, :, k) = Pk Zkᵀ F(k) E Dᵀ`` and its Khatri-Rao products.  These tests
build random factorized inputs, materialize Y, and compare both sides — the
strongest correctness evidence for DPar2's update rules.
"""

import numpy as np
import pytest

from repro.linalg.qr import random_orthonormal
from repro.tensor.dense import DenseTensor
from repro.tensor.products import khatri_rao


@pytest.fixture
def factorized(rng):
    """Random factorized quantities with the right orthogonality structure."""
    R, J, K = 4, 9, 6
    D = random_orthonormal(J, R, rng)
    E = np.sort(np.abs(rng.standard_normal(R)))[::-1] + 0.1
    F = rng.standard_normal((K, R, R))
    polar = np.stack([
        random_orthonormal(R, R, rng) for _ in range(K)
    ])  # each is Zk Pkᵀ, orthogonal
    T = np.einsum("kji,kjs->kis", polar, F)  # Tk = Pk Zkᵀ F(k)
    H = rng.standard_normal((R, R))
    V = rng.standard_normal((J, R))
    W = rng.standard_normal((K, R))
    return D, E, F, T, H, V, W


def materialize_Y(D, E, T):
    """Yk = Tk E Dᵀ, stacked into an R x J x K tensor."""
    slices = [(Tk * E) @ D.T for Tk in T]
    return DenseTensor.from_frontal_slices(slices)


class TestLemma1:
    def test_G1_equals_naive_mttkrp(self, factorized):
        D, E, F, T, H, V, W = factorized
        Y = materialize_Y(D, E, T)
        naive = Y.unfold(1) @ khatri_rao(W, V)

        EDtV = (D.T @ V) * E[:, None]
        fast = np.einsum("kr,kij,jr->ir", W, T, EDtV, optimize=True)
        np.testing.assert_allclose(fast, naive, atol=1e-9)

    def test_column_formula(self, factorized):
        """G(1)(:, r) = (Σk W(k,r) Tk) E Dᵀ V(:, r) — the paper's statement."""
        D, E, F, T, H, V, W = factorized
        Y = materialize_Y(D, E, T)
        naive = Y.unfold(1) @ khatri_rao(W, V)
        for r in range(W.shape[1]):
            summed = np.tensordot(W[:, r], T, axes=(0, 0))
            column = summed @ (E * (D.T @ V[:, r]))
            np.testing.assert_allclose(column, naive[:, r], atol=1e-9)


class TestLemma2:
    def test_G2_equals_naive_mttkrp(self, factorized):
        D, E, F, T, H, V, W = factorized
        Y = materialize_Y(D, E, T)
        naive = Y.unfold(2) @ khatri_rao(W, H)

        inner = np.einsum("kr,kji,jr->ir", W, T, H, optimize=True)
        fast = (D * E) @ inner
        np.testing.assert_allclose(fast, naive, atol=1e-9)

    def test_column_formula(self, factorized):
        """G(2)(:, r) = D E Σk W(k,r) Tkᵀ H(:, r)."""
        D, E, F, T, H, V, W = factorized
        Y = materialize_Y(D, E, T)
        naive = Y.unfold(2) @ khatri_rao(W, H)
        for r in range(W.shape[1]):
            acc = np.zeros(T.shape[2])
            for k in range(T.shape[0]):
                acc += W[k, r] * (T[k].T @ H[:, r])
            np.testing.assert_allclose((D * E) @ acc, naive[:, r], atol=1e-9)


class TestLemma3:
    def test_G3_equals_naive_mttkrp(self, factorized):
        D, E, F, T, H, V, W = factorized
        Y = materialize_Y(D, E, T)
        naive = Y.unfold(3) @ khatri_rao(V, H)

        EDtV = (D.T @ V) * E[:, None]
        fast = np.einsum("ir,kij,jr->kr", H, T, EDtV, optimize=True)
        np.testing.assert_allclose(fast, naive, atol=1e-9)

    def test_entry_formula(self, factorized):
        """G(3)(k, r) = vec(Tk)ᵀ (E Dᵀ V(:, r) ⊗ H(:, r)) — with MATLAB
        column-major vec, as in the paper."""
        from repro.tensor.products import vec

        D, E, F, T, H, V, W = factorized
        Y = materialize_Y(D, E, T)
        naive = Y.unfold(3) @ khatri_rao(V, H)
        for k in range(T.shape[0]):
            for r in range(W.shape[1]):
                a = E * (D.T @ V[:, r])
                entry = float(vec(T[k]) @ np.kron(a, H[:, r]))
                assert entry == pytest.approx(naive[k, r], abs=1e-9)


class TestCompressedCriterionIdentity:
    def test_unitary_invariance_chain(self, factorized):
        """‖Pk Zkᵀ F(k) E Dᵀ − H Sk Vᵀ‖ = ‖Ak F(k) E Dᵀ − Ak Zk Pkᵀ H Sk Vᵀ‖
        — the Section III-E chain, checked with materialized matrices."""
        rng = np.random.default_rng(3)
        D, E, F, T, H, V, W = factorized
        R = H.shape[0]
        for k in range(3):
            Ik = 15
            Ak = random_orthonormal(Ik, R, rng)
            # Recover the orthogonal Zk Pkᵀ relating Tk and F(k) by
            # orthogonal Procrustes, then check both sides of the chain.
            U_, _, Vt_ = np.linalg.svd(T[k] @ F[k].T)
            ZPt = (U_ @ Vt_).T
            Tk = ZPt.T @ F[k]
            left = np.linalg.norm((Tk * E) @ D.T - (H * W[k]) @ V.T)
            Qk = Ak @ ZPt
            right = np.linalg.norm(
                Ak @ (F[k] * E) @ D.T - Qk @ (H * W[k]) @ V.T
            )
            assert left == pytest.approx(right, rel=1e-9)
