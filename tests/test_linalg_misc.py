"""Tests for truncated SVD, QR helpers, pseudoinverse, and Gram SVD."""

import numpy as np
import pytest

from repro.linalg.gram import gram_svd
from repro.linalg.pinv import pseudoinverse, solve_gram
from repro.linalg.qr import orthonormal_columns, random_orthonormal
from repro.linalg.truncated_svd import svd_polar_factor, truncated_svd
from tests.conftest import assert_orthonormal_columns


class TestTruncatedSVD:
    def test_matches_numpy_svd(self, rng):
        A = rng.standard_normal((20, 15))
        out = truncated_svd(A, 5)
        _, s, _ = np.linalg.svd(A)
        np.testing.assert_allclose(out.singular_values, s[:5], rtol=1e-10)

    def test_full_rank_reconstruction(self, rng):
        A = rng.standard_normal((10, 8))
        out = truncated_svd(A, 8)
        np.testing.assert_allclose(out.reconstruct(), A, atol=1e-10)

    def test_truncation_is_best_approximation(self, rng):
        A = rng.standard_normal((20, 15))
        out = truncated_svd(A, 3)
        _, s, _ = np.linalg.svd(A)
        expected_error = np.sqrt(np.sum(s[3:] ** 2))
        actual_error = np.linalg.norm(A - out.reconstruct())
        assert actual_error == pytest.approx(expected_error, rel=1e-10)

    def test_rank_capped(self, rng):
        out = truncated_svd(rng.standard_normal((4, 6)), 10)
        assert out.rank == 4

    def test_orthonormal_factors(self, rng):
        out = truncated_svd(rng.standard_normal((12, 9)), 4)
        assert_orthonormal_columns(out.U)
        assert_orthonormal_columns(out.V)


class TestPolarFactor:
    def test_result_is_orthonormal(self, rng):
        A = rng.standard_normal((20, 5))
        Q = svd_polar_factor(A, 5)
        assert_orthonormal_columns(Q)

    def test_procrustes_optimality(self, rng):
        """Q = Z Pᵀ maximizes trace(Qᵀ A) over orthonormal Q."""
        A = rng.standard_normal((15, 4))
        Q = svd_polar_factor(A, 4)
        best = np.trace(Q.T @ A)
        for _ in range(20):
            other = random_orthonormal(15, 4, rng)
            assert np.trace(other.T @ A) <= best + 1e-9


class TestOrthonormalColumns:
    def test_spans_same_space(self, rng):
        A = rng.standard_normal((10, 3))
        Q = orthonormal_columns(A)
        # Projection of A onto Q's span recovers A.
        np.testing.assert_allclose(Q @ (Q.T @ A), A, atol=1e-10)

    def test_orthonormal(self, rng):
        Q = orthonormal_columns(rng.standard_normal((10, 4)))
        assert_orthonormal_columns(Q)


class TestRandomOrthonormal:
    def test_shape_and_orthogonality(self):
        Q = random_orthonormal(12, 5, random_state=0)
        assert Q.shape == (12, 5)
        assert_orthonormal_columns(Q)

    def test_deterministic(self):
        a = random_orthonormal(8, 3, random_state=5)
        b = random_orthonormal(8, 3, random_state=5)
        np.testing.assert_array_equal(a, b)

    def test_square_is_orthogonal(self):
        Q = random_orthonormal(6, 6, random_state=1)
        np.testing.assert_allclose(Q @ Q.T, np.eye(6), atol=1e-10)

    def test_too_many_columns_rejected(self):
        with pytest.raises(ValueError, match="orthonormal columns"):
            random_orthonormal(3, 5)

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            random_orthonormal(0, 2)


class TestPseudoinverse:
    def test_inverse_of_invertible(self, rng):
        A = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        np.testing.assert_allclose(pseudoinverse(A), np.linalg.inv(A), atol=1e-8)

    def test_penrose_conditions(self, rng):
        A = rng.standard_normal((6, 4))
        A_pinv = pseudoinverse(A)
        np.testing.assert_allclose(A @ A_pinv @ A, A, atol=1e-9)
        np.testing.assert_allclose(A_pinv @ A @ A_pinv, A_pinv, atol=1e-9)

    def test_rank_deficient(self, rng):
        u = rng.standard_normal((5, 1))
        v = rng.standard_normal((1, 5))
        A = u @ v  # rank 1
        A_pinv = pseudoinverse(A)
        np.testing.assert_allclose(A @ A_pinv @ A, A, atol=1e-9)

    def test_matches_numpy(self, rng):
        A = rng.standard_normal((7, 3))
        np.testing.assert_allclose(pseudoinverse(A), np.linalg.pinv(A), atol=1e-9)


class TestSolveGram:
    def test_matches_pinv_solution(self, rng):
        G = rng.standard_normal((4, 8))
        gram = G @ G.T + 0.1 * np.eye(4)  # SPD
        rhs = rng.standard_normal((6, 4))
        out = solve_gram(gram, rhs)
        np.testing.assert_allclose(out, rhs @ np.linalg.inv(gram), atol=1e-8)

    def test_singular_gram_falls_back(self, rng):
        gram = np.zeros((3, 3))
        gram[0, 0] = 1.0  # rank 1
        rhs = rng.standard_normal((4, 3))
        out = solve_gram(gram, rhs)
        np.testing.assert_allclose(out, rhs @ np.linalg.pinv(gram), atol=1e-9)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="columns"):
            solve_gram(np.eye(3), np.ones((2, 4)))

    def test_non_square_gram_rejected(self):
        with pytest.raises(ValueError, match="square"):
            solve_gram(np.ones((2, 3)), np.ones((2, 3)))


class TestGramSVD:
    def test_matches_concatenated_svd(self, rng):
        slices = [rng.standard_normal((n, 6)) for n in (10, 14, 8)]
        V, sv = gram_svd(slices, 4)
        stacked = np.concatenate(slices, axis=0)
        _, s_exact, Vt_exact = np.linalg.svd(stacked, full_matrices=False)
        np.testing.assert_allclose(sv, s_exact[:4], rtol=1e-8)
        # Compare subspaces (sign-insensitive): projectors must match.
        P_ours = V @ V.T
        V_exact = Vt_exact[:4].T
        P_exact = V_exact @ V_exact.T
        np.testing.assert_allclose(P_ours, P_exact, atol=1e-8)

    def test_orthonormal_output(self, rng):
        slices = [rng.standard_normal((n, 5)) for n in (7, 9)]
        V, _ = gram_svd(slices, 3)
        assert_orthonormal_columns(V)

    def test_rank_capped_by_columns(self, rng):
        slices = [rng.standard_normal((10, 4))]
        V, sv = gram_svd(slices, 9)
        assert V.shape == (4, 4)
        assert sv.shape == (4,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            gram_svd([], 2)

    def test_column_mismatch_rejected(self, rng):
        slices = [rng.standard_normal((5, 4)), rng.standard_normal((5, 6))]
        with pytest.raises(ValueError, match="columns"):
            gram_svd(slices, 2)
