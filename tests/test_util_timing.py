"""Tests for repro.util.timing."""

import pytest

from repro.util.timing import Stopwatch, format_seconds, time_call


class TestStopwatch:
    def test_context_manager_accumulates(self):
        watch = Stopwatch()
        with watch:
            pass
        assert watch.elapsed >= 0.0

    def test_multiple_intervals_accumulate(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            pass
        assert watch.elapsed >= first

    def test_double_start_raises(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError, match="already running"):
            watch.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="not running"):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_running_flag(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running

    def test_reset_while_running_raises(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError, match="running"):
            watch.reset()
        watch.stop()
        watch.reset()  # fine once stopped
        assert watch.elapsed == 0.0

    def test_span_times_one_interval(self):
        watch = Stopwatch()
        with watch.span() as inner:
            assert inner is watch
            assert watch.running
        assert not watch.running
        assert watch.elapsed >= 0.0

    def test_span_stops_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(ValueError):
            with watch.span():
                raise ValueError("boom")
        assert not watch.running
        assert watch.elapsed >= 0.0


class TestTimeCall:
    def test_returns_value(self):
        out = time_call(lambda x: x * 2, 21)
        assert out.value == 42
        assert out.seconds >= 0.0

    def test_repeats_recorded(self):
        out = time_call(lambda: None, repeats=3)
        assert out.repeats == 3
        assert len(out.per_repeat) == 3

    def test_mean_of_repeats(self):
        out = time_call(lambda: None, repeats=4)
        assert out.seconds == pytest.approx(sum(out.per_repeat) / 4)

    def test_kwargs_forwarded(self):
        out = time_call(lambda a, b=0: a + b, 1, b=2)
        assert out.value == 3

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            time_call(lambda: None, repeats=0)


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(5e-6) == "5.0us"

    def test_milliseconds(self):
        assert format_seconds(0.25) == "250.0ms"

    def test_seconds(self):
        assert format_seconds(3.14159) == "3.14s"

    def test_minutes(self):
        assert format_seconds(125.0) == "2m05.0s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            format_seconds(-1.0)
