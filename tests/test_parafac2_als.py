"""Tests for the PARAFAC2-ALS baseline (Algorithm 2)."""

import numpy as np
import pytest

from repro.decomposition.parafac2_als import (
    parafac2_als,
    reconstruction_error_squared,
    update_orthogonal_factor,
)
from repro.util.config import DecompositionConfig
from tests.conftest import assert_valid_parafac2_result


class TestUpdateOrthogonalFactor:
    def test_orthonormal(self, rng):
        Xk = rng.standard_normal((20, 8))
        target = rng.standard_normal((8, 4))
        Qk = update_orthogonal_factor(Xk, target)
        np.testing.assert_allclose(Qk.T @ Qk, np.eye(4), atol=1e-10)

    def test_procrustes_optimality(self, rng):
        """Qk maximizes trace(Qkᵀ Xk M) over orthonormal Qk."""
        from repro.linalg.qr import random_orthonormal

        Xk = rng.standard_normal((15, 6))
        target = rng.standard_normal((6, 3))
        Qk = update_orthogonal_factor(Xk, target)
        best = np.trace(Qk.T @ (Xk @ target))
        for _ in range(25):
            other = random_orthonormal(15, 3, rng)
            assert np.trace(other.T @ (Xk @ target)) <= best + 1e-8


class TestReconstructionError:
    def test_matches_naive(self, small_tensor, rng):
        """The Gram-trick error must equal the direct computation."""
        R = 3
        Q = []
        for Xk in small_tensor:
            Z, _, Pt = np.linalg.svd(
                Xk @ rng.standard_normal((small_tensor.n_columns, R)),
                full_matrices=False,
            )
            Q.append(Z @ Pt)
        H = rng.standard_normal((R, R))
        V = rng.standard_normal((small_tensor.n_columns, R))
        W = rng.standard_normal((small_tensor.n_slices, R))
        Y_slices = [Q[k].T @ Xk for k, Xk in enumerate(small_tensor)]
        norms = np.array([np.sum(Xk**2) for Xk in small_tensor])

        fast = reconstruction_error_squared(Y_slices, norms, H, V, W)
        naive = sum(
            np.sum((Xk - Q[k] @ (H * W[k]) @ V.T) ** 2)
            for k, Xk in enumerate(small_tensor)
        )
        assert fast == pytest.approx(naive, rel=1e-9)


class TestParafac2Als:
    def test_result_structure(self, small_tensor, default_config):
        result = parafac2_als(small_tensor, default_config)
        assert result.method == "parafac2_als"
        assert_valid_parafac2_result(result, small_tensor)

    def test_fits_noiseless_data_perfectly(self, noiseless_tensor):
        config = DecompositionConfig(rank=3, max_iterations=100,
                                     tolerance=1e-12, random_state=0)
        result = parafac2_als(noiseless_tensor, config)
        assert result.fitness(noiseless_tensor) > 0.995

    def test_criterion_monotone(self, structured_tensor, default_config):
        result = parafac2_als(structured_tensor, default_config)
        values = [record.criterion for record in result.history]
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier + 1e-6 * max(abs(earlier), 1.0)

    def test_fitness_in_unit_interval(self, structured_tensor, default_config):
        result = parafac2_als(structured_tensor, default_config)
        assert 0.0 <= result.fitness(structured_tensor) <= 1.0

    def test_rank_capped_by_data(self, rng):
        from repro.tensor.random import random_irregular_tensor

        tensor = random_irregular_tensor([5, 6], 4, random_state=0)
        result = parafac2_als(tensor, DecompositionConfig(rank=10,
                                                          max_iterations=3))
        assert result.rank == 4  # capped by J

    def test_keyword_overrides(self, small_tensor, default_config):
        result = parafac2_als(small_tensor, default_config, max_iterations=2)
        assert result.n_iterations <= 2

    def test_no_preprocessing(self, small_tensor, default_config):
        result = parafac2_als(small_tensor, default_config)
        assert result.preprocess_seconds == 0.0
        assert result.preprocessed_bytes == small_tensor.nbytes

    def test_history_length_matches_iterations(self, small_tensor,
                                                default_config):
        result = parafac2_als(small_tensor, default_config)
        assert len(result.history) == result.n_iterations

    def test_accepts_plain_slice_list(self, rng):
        slices = [rng.standard_normal((10, 6)) for _ in range(3)]
        result = parafac2_als(slices, DecompositionConfig(rank=2,
                                                          max_iterations=3))
        assert result.n_slices == 3

    def test_converges_with_loose_tolerance(self, noiseless_tensor):
        config = DecompositionConfig(rank=3, max_iterations=100,
                                     tolerance=1e-3, random_state=0)
        result = parafac2_als(noiseless_tensor, config)
        assert result.converged
        assert result.n_iterations < 100
