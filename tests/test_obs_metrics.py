"""Tests for the metrics registry and Prometheus text exposition."""

import json

import pytest

from repro.obs import exposition
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)


class TestMetricObjects:
    def test_counter_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 6

    def test_gauge_callback_wins(self):
        box = {"v": 7}
        gauge = Gauge(callback=lambda: box["v"])
        assert gauge.value == 7
        box["v"] = 9
        assert gauge.value == 9

    def test_histogram_buckets(self):
        hist = Histogram(buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 99.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(101.0)
        assert list(hist.counts) == [1, 1, 1]


class TestRegistry:
    def test_same_name_labels_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", "x", labels={"k": "1"})
        b = registry.counter("repro_x_total", "x", labels={"k": "1"})
        c = registry.counter("repro_x_total", "x", labels={"k": "2"})
        assert a is b
        assert a is not c

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total", "x")

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("repro_x_total", "x")
        counter.inc(5)
        registry.gauge("repro_g", "g").set(2)
        registry.histogram("repro_h", "h").observe(1.0)
        assert registry.snapshot() == {}
        assert exposition.render(registry) == ""

    def test_snapshot_is_json_safe_and_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total", "b").inc(2)
        registry.gauge("repro_a", "a").set(1.5)
        registry.histogram("repro_c_seconds", "c", buckets=(0.1, 1.0)).observe(0.5)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # JSON-safe throughout
        hist = snap["repro_c_seconds"]["samples"][0]
        assert hist["buckets"]["0.1"] == 0
        assert hist["buckets"]["1.0"] == 1
        assert hist["buckets"]["+Inf"] == 1
        assert hist["count"] == 1

    def test_reset_clears_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "x")
        counter.inc(3)
        registry.reset()
        assert registry.counter("repro_x_total", "x").value == 0

    def test_use_registry_swaps_and_restores(self):
        scoped = MetricsRegistry()
        default = get_registry()
        with use_registry(scoped):
            assert get_registry() is scoped
        assert get_registry() is default

    def test_set_registry_returns_previous(self):
        previous = get_registry()
        fresh = MetricsRegistry()
        assert set_registry(fresh) is previous
        assert set_registry(previous) is fresh


class TestExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_req_total", "Requests.", labels={"path": "/x"}).inc(2)
        registry.gauge("repro_depth", "Depth.").set(3)
        text = exposition.render(registry)
        assert "# HELP repro_req_total Requests.\n" in text
        assert "# TYPE repro_req_total counter\n" in text
        assert 'repro_req_total{path="/x"} 2\n' in text
        assert "# TYPE repro_depth gauge\n" in text
        assert "repro_depth 3\n" in text

    def test_histogram_exposition_is_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", "Latency.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = exposition.render(registry)
        assert 'repro_lat_seconds_bucket{le="0.1"} 1\n' in text
        assert 'repro_lat_seconds_bucket{le="1.0"} 2\n' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3\n' in text
        assert "repro_lat_seconds_count 3\n" in text
        assert "repro_lat_seconds_sum 5.55" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_esc_total", 'Has "quotes"\nand newline.', labels={"p": 'a"b\\c\n'}
        ).inc()
        text = exposition.render(registry)
        assert '# HELP repro_esc_total Has "quotes"\\nand newline.\n' in text
        assert 'p="a\\"b\\\\c\\n"' in text

    def test_every_line_is_well_formed(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "a").inc()
        registry.histogram("repro_b_seconds", "b").observe(0.2)
        registry.gauge("repro_c", "c").set(-1)
        for line in exposition.render(registry).splitlines():
            assert line.startswith("#") or " " in line
