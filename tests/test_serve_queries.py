"""Tests for QueryEngine: rankings, reconstruction, fold-in, anomaly.

The acceptance-criteria tests live here: fold-in projections and
similar-entity rankings are checked against *offline reference
computations* — independent dense-numpy implementations of the same math —
to 1e-8 in float64, and every batched path is checked bitwise against its
single-request execution.
"""

import numpy as np
import pytest

from repro.analysis.anomaly import slice_anomaly_scores
from repro.decomposition.dpar2 import dpar2
from repro.linalg.randomized_svd import randomized_svd
from repro.serve.queries import QueryEngine
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig


@pytest.fixture(scope="module")
def tensor():
    return low_rank_irregular_tensor(
        [30, 45, 25, 40, 35, 28], n_columns=16, rank=3, noise=0.02,
        random_state=4,
    )


@pytest.fixture(scope="module")
def config():
    return DecompositionConfig(rank=4, max_iterations=10, random_state=0)


@pytest.fixture(scope="module")
def result(tensor, config):
    return dpar2(tensor, config)


@pytest.fixture(scope="module")
def engine(result, config):
    return QueryEngine(result, config=config, version=1)


class TestSimilar:
    def test_matches_offline_reference(self, engine, result):
        """Acceptance: rankings match a naive offline computation to 1e-8."""
        S = np.asarray(result.S, dtype=np.float64)
        for query in range(result.n_slices):
            ref = []
            for j in range(result.n_slices):
                if j == query:
                    continue
                num = float(np.dot(S[query], S[j]))
                den = float(np.linalg.norm(S[query]) * np.linalg.norm(S[j]))
                ref.append((j, num / den))
            ref.sort(key=lambda pair: (-pair[1], pair[0]))
            neighbors, scores = engine.similar([query], k=3)
            for rank_pos, (j, score) in enumerate(ref[:3]):
                assert neighbors[0, rank_pos] == j
                assert scores[0, rank_pos] == pytest.approx(score, abs=1e-8)

    def test_feature_mode_reference(self, engine, result):
        V = np.asarray(result.V, dtype=np.float64)
        unit = V / np.linalg.norm(V, axis=1, keepdims=True)
        query = 5
        ref = unit @ unit[query]
        ref[query] = -np.inf
        order = np.lexsort((np.arange(ref.size), -ref))[:4]
        neighbors, scores = engine.similar([query], k=4, mode="feature")
        assert np.array_equal(neighbors[0], order)
        np.testing.assert_allclose(scores[0], ref[order], atol=1e-8)

    def test_batch_is_bitwise_identical_to_single(self, engine):
        """The batch-invariance contract the micro-batcher relies on."""
        indices = [0, 3, 1, 5, 2]
        neighbors, scores = engine.similar(indices, k=4)
        for row, idx in enumerate(indices):
            n1, s1 = engine.similar([idx], k=4)
            assert np.array_equal(neighbors[row], n1[0])
            assert np.array_equal(scores[row], s1[0])  # bitwise

    def test_self_excluded_and_k_capped(self, engine, result):
        neighbors, scores = engine.similar([2], k=100)
        assert neighbors.shape == (1, result.n_slices - 1)
        assert 2 not in neighbors[0]
        assert np.all(np.diff(scores[0]) <= 0)

    def test_similar_to_vector(self, engine, result):
        S = np.asarray(result.S, dtype=np.float64)
        neighbors, scores = engine.similar_to(S[3], k=1)
        assert neighbors[0, 0] == 3  # its own row is the perfect match
        assert scores[0, 0] == pytest.approx(1.0, abs=1e-12)

    def test_errors(self, engine):
        with pytest.raises(ValueError, match="mode"):
            engine.similar([0], mode="nope")
        with pytest.raises(IndexError, match="out of range"):
            engine.similar([99])
        with pytest.raises(ValueError, match="k must be"):
            engine.similar([0], k=0)
        with pytest.raises(ValueError, match=r"vectors must be"):
            engine.similar_to(np.ones((2, 3, 4)))


class TestReconstruct:
    def test_matches_result(self, engine, result):
        np.testing.assert_array_equal(
            engine.reconstruct(1), result.reconstruct_slice(1)
        )

    def test_row_subset(self, engine, result):
        rows = [4, 0, 2]
        np.testing.assert_array_equal(
            engine.reconstruct(1, rows=rows),
            result.reconstruct_slice(1)[rows],
        )

    def test_errors(self, engine):
        with pytest.raises(IndexError, match="slice"):
            engine.reconstruct(99)
        with pytest.raises(IndexError, match="row index"):
            engine.reconstruct(0, rows=[10_000])


def _reference_fold_in(X, result, config, seed, sweeps):
    """Independent dense implementation of the fold-in projection.

    Materializes ``A``, ``G``, and ``Q`` explicitly and evaluates every
    quantity against the dense slice (``Qᵀ X`` as an actual product, the
    residual as an actual subtraction) — no shared code with the engine's
    compressed-arithmetic path beyond the stage-1 sketch kernel itself.
    """
    H = np.asarray(result.H, dtype=np.float64)
    V = np.asarray(result.V, dtype=np.float64)
    R = H.shape[0]
    svd = randomized_svd(
        X, R,
        oversampling=config.oversampling,
        power_iterations=config.power_iterations,
        random_state=np.random.default_rng(seed),
    )
    A = svd.U
    Xs = (A * svd.singular_values) @ svd.V.T  # the sketch A G, densified
    w = np.ones(R)
    for _ in range(sweeps):
        Z, _, Pt = np.linalg.svd(A.T @ Xs @ V @ np.diag(w) @ H.T, full_matrices=False)
        Q = A @ (Z @ Pt)
        C = Q.T @ Xs @ V
        g = np.diag(H.T @ C)
        gram = (H.T @ (Q.T @ Q) @ H) * (V.T @ V)
        w = np.linalg.solve(gram, g)
    residual = Xs - Q @ (H * w) @ V.T
    # The engine's residual is vs the *actual* slice: add the sketch error
    # (orthogonal complement), ‖X − X̂‖² = ‖X − Xs‖² + ‖Xs − X̂‖².
    residual_sq = float(np.sum((X - Xs) ** 2)) + float(np.sum(residual**2))
    return w, Q, residual_sq


class TestFoldIn:
    def test_matches_offline_reference(self, engine, result, config, tensor):
        """Acceptance: fold-in matches the dense reference to 1e-8."""
        rng = np.random.default_rng(99)
        X = rng.standard_normal((33, tensor.n_columns))
        fold = engine.fold_in(X, seed=11, return_q=True)
        w_ref, Q_ref, res_ref = _reference_fold_in(
            X, result, config, seed=11, sweeps=engine.fold_in_sweeps
        )
        np.testing.assert_allclose(fold.weights, w_ref, atol=1e-8)
        np.testing.assert_allclose(fold.Q, Q_ref, atol=1e-8)
        assert fold.residual_squared == pytest.approx(res_ref, rel=1e-8)

    def test_training_slice_projects_close(self, engine, tensor, result):
        """A training slice folded in should land near its own S-row."""
        k = 2
        fold = engine.fold_in(tensor[k], seed=0)
        neighbors, scores = engine.similar_to(fold.weights, k=1)
        assert neighbors[0, 0] == k
        assert scores[0, 0] > 0.999
        # and reconstruct about as well as the trained model does
        trained_score = slice_anomaly_scores(result, tensor)[k]
        assert fold.relative_residual == pytest.approx(
            trained_score, abs=0.05
        )

    def test_batched_is_bitwise_identical(self, engine, tensor):
        """Equal-row-count slices share one stacked sketch; answers must
        not depend on batch membership."""
        rng = np.random.default_rng(5)
        batch = [
            rng.standard_normal((20, tensor.n_columns)) for _ in range(3)
        ] + [rng.standard_normal((31, tensor.n_columns))]
        seeds = [3, 1, 4, 1]
        together = engine.fold_in_many(batch, seeds=seeds)
        for X, seed, folded in zip(batch, seeds, together):
            alone = engine.fold_in(X, seed=seed)
            assert np.array_equal(folded.weights, alone.weights)
            assert folded.residual_squared == alone.residual_squared

    def test_q_is_orthonormal(self, engine, tensor, rng):
        fold = engine.fold_in(
            rng.standard_normal((25, tensor.n_columns)), return_q=True
        )
        QtQ = fold.Q.T @ fold.Q
        np.testing.assert_allclose(QtQ, np.eye(engine.rank), atol=1e-10)

    def test_short_slice_handled(self, engine, tensor):
        """Fewer rows than the model rank: Qᵀ Q ≠ I, still well-defined."""
        rng = np.random.default_rng(6)
        fold = engine.fold_in(rng.standard_normal((2, tensor.n_columns)))
        assert fold.weights.shape == (engine.rank,)
        assert np.isfinite(fold.relative_residual)

    def test_errors(self, engine, tensor, rng):
        with pytest.raises(ValueError, match="columns"):
            engine.fold_in(rng.standard_normal((10, tensor.n_columns + 1)))
        with pytest.raises(ValueError, match="seeds"):
            engine.fold_in_many([rng.standard_normal((5, tensor.n_columns))],
                                seeds=[1, 2])
        with pytest.raises(ValueError, match="sweeps"):
            engine.fold_in(rng.standard_normal((5, tensor.n_columns)), sweeps=0)


class TestAnomaly:
    def test_matches_analysis_module(self, engine, result, tensor):
        """The Gram-trick scores equal the materialized-reconstruction ones."""
        np.testing.assert_allclose(
            engine.anomaly_scores(tensor),
            slice_anomaly_scores(result, tensor),
            atol=1e-10,
        )

    def test_planted_anomaly_scores_highest(self, engine, tensor):
        rng = np.random.default_rng(3)
        outlier = rng.standard_normal((30, tensor.n_columns)) * 10.0
        normal_scores = [
            engine.anomaly_score(tensor[k]) for k in range(tensor.n_slices)
        ]
        assert engine.anomaly_score(outlier) > max(normal_scores)

    def test_shape_mismatch(self, engine, tensor):
        with pytest.raises(ValueError, match="slices"):
            engine.anomaly_scores(tensor.subset([0, 1]))

    def test_non_orthonormal_q_scored_correctly(self, rng):
        """A streaming model can zero-pad a slice whose own rank ran below
        R, leaving Qkᵀ Qk ≠ I; the Gram-trick score must still agree with
        the materialized residual."""
        from repro.decomposition.result import Parafac2Result
        from repro.tensor.irregular import IrregularTensor

        R, J = 3, 6
        Q_full, _ = np.linalg.qr(rng.standard_normal((8, R)))
        Q_padded = np.zeros((2, R))
        Q_padded[:, :2], _ = np.linalg.qr(rng.standard_normal((2, 2)))
        result = Parafac2Result(
            Q=[Q_full, Q_padded],
            H=rng.standard_normal((R, R)),
            S=rng.standard_normal((2, R)),
            V=rng.standard_normal((J, R)),
        )
        tensor = IrregularTensor(
            [rng.standard_normal((8, J)), rng.standard_normal((2, J))]
        )
        np.testing.assert_allclose(
            QueryEngine(result).anomaly_scores(tensor),
            slice_anomaly_scores(result, tensor),
            atol=1e-10,
        )


class TestMetadata:
    def test_metadata_card(self, engine, result):
        card = engine.metadata()
        assert card["rank"] == result.rank
        assert card["n_slices"] == result.n_slices
        assert card["modes"] == {
            "slice": result.n_slices, "feature": result.V.shape[0]
        }
        assert card["version"] == 1

    def test_float32_model_serves_float64_queries(self, tensor):
        config = DecompositionConfig(
            rank=3, max_iterations=4, dtype="float32", random_state=1
        )
        result = dpar2(tensor, config)
        engine = QueryEngine(result, config=config)
        neighbors, scores = engine.similar([0], k=2)
        assert scores.dtype == np.float64
        fold = engine.fold_in(np.asarray(tensor[0], dtype=np.float64))
        assert np.isfinite(fold.relative_residual)
