"""Tests for the asyncio HTTP service: routing, micro-batching, hot swap."""

import http.client
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.decomposition.dpar2 import dpar2
from repro.serve.queries import QueryEngine
from repro.serve.service import MicroBatcher, ModelHost, ServiceError, start_server_in_thread
from repro.serve.store import FactorStore
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig


@pytest.fixture(scope="module")
def tensor():
    return low_rank_irregular_tensor(
        [30, 45, 25, 40, 35], n_columns=16, rank=3, noise=0.02, random_state=4
    )


@pytest.fixture(scope="module")
def config():
    return DecompositionConfig(rank=4, max_iterations=6, random_state=0)


@pytest.fixture(scope="module")
def result(tensor, config):
    return dpar2(tensor, config)


@pytest.fixture
def store(result, config, tmp_path):
    registry = FactorStore(tmp_path / "registry")
    registry.publish(result, config=config)
    return registry


def _call(base_url, method, path, body=None, timeout=15):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(base_url + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


class TestModelHost:
    def test_refresh_and_current(self, store):
        host = ModelHost(store)
        engine = host.refresh()
        assert engine.version == 1
        assert host.current_version == 1
        assert host.engine() is engine  # no reload between publishes

    def test_lru_eviction_spares_current(self, store, result):
        host = ModelHost(store, lru_size=1)
        host.refresh()
        store.publish(result)
        store.publish(result)
        host.refresh()
        assert host.current_version == 3
        host.engine(1)  # load a pinned old version into the cache
        assert host.current_version == 3
        assert 3 in host.cached_versions()  # the live engine never evicts
        assert len(host.cached_versions()) == 1

    def test_unknown_version_maps_to_404(self, store):
        host = ModelHost(store)
        with pytest.raises(ServiceError) as err:
            host.engine(42)
        assert err.value.status == 404

    def test_empty_registry_maps_to_503(self, tmp_path):
        host = ModelHost(FactorStore(tmp_path / "empty"))
        with pytest.raises(ServiceError) as err:
            host.refresh()
        assert err.value.status == 503


class TestMicroBatcher:
    def test_coalesces_concurrent_submits(self):
        import asyncio

        calls = []

        def runner(payloads):
            calls.append(list(payloads))
            return [p * 10 for p in payloads]

        async def scenario():
            batcher = MicroBatcher(runner, window=0.01)
            return await asyncio.gather(*[batcher.submit(i) for i in range(5)])

        results = asyncio.run(scenario())
        assert results == [0, 10, 20, 30, 40]
        assert len(calls) == 1  # five submissions, one kernel call
        assert calls[0] == [0, 1, 2, 3, 4]

    def test_max_batch_flushes_immediately(self):
        import asyncio

        calls = []

        def runner(payloads):
            calls.append(list(payloads))
            return payloads

        async def scenario():
            batcher = MicroBatcher(runner, window=60.0, max_batch=2)
            return await asyncio.gather(*[batcher.submit(i) for i in range(4)])

        assert asyncio.run(scenario()) == [0, 1, 2, 3]
        assert [len(c) for c in calls] == [2, 2]  # never waited for the window

    def test_runner_failure_propagates(self):
        import asyncio

        def runner(payloads):
            raise RuntimeError("kernel exploded")

        async def scenario():
            batcher = MicroBatcher(runner, window=0.0)
            await batcher.submit(1)

        with pytest.raises(RuntimeError, match="exploded"):
            asyncio.run(scenario())

    def test_per_slot_exception_does_not_poison_batch(self):
        """A runner can fail one payload (an Exception in its slot) without
        failing the co-batched ones."""
        import asyncio

        def runner(payloads):
            return [
                ValueError(f"bad {p}") if p == 1 else p * 10 for p in payloads
            ]

        async def scenario():
            batcher = MicroBatcher(runner, window=0.01)
            return await asyncio.gather(
                *[batcher.submit(i) for i in range(3)],
                return_exceptions=True,
            )

        results = asyncio.run(scenario())
        assert results[0] == 0
        assert isinstance(results[1], ValueError)
        assert results[2] == 20


class TestHttpEndpoints:
    def test_health_model_versions(self, store):
        with start_server_in_thread(store) as handle:
            health = _call(handle.base_url, "GET", "/healthz")
            assert health["status"] == "ok"
            assert health["version"] == 1
            model = _call(handle.base_url, "GET", "/v1/model")
            assert model["rank"] == 4
            assert model["n_slices"] == 5
            versions = _call(handle.base_url, "GET", "/v1/versions")
            assert versions == {
                "versions": [1], "latest": 1, "serving": 1, "cached": [1],
            }

    def test_query_endpoints_match_engine(self, store, result, config, tensor):
        engine = QueryEngine(result, config=config, version=1)
        with start_server_in_thread(store) as handle:
            sim = _call(handle.base_url, "POST", "/v1/similar",
                        {"index": 0, "k": 3})
            neighbors, scores = engine.similar([0], k=3)
            assert [n["index"] for n in sim["neighbors"]] == neighbors[0].tolist()
            assert [n["score"] for n in sim["neighbors"]] == scores[0].tolist()

            batch = _call(handle.base_url, "POST", "/v1/similar",
                          {"indices": [1, 2], "k": 2, "mode": "feature"})
            neighbors, _ = engine.similar([1, 2], k=2, mode="feature")
            assert [n["index"] for n in batch["results"][1]["neighbors"]] == \
                neighbors[1].tolist()

            rec = _call(handle.base_url, "POST", "/v1/reconstruct",
                        {"slice": 1, "rows": [0, 2]})
            np.testing.assert_array_equal(
                np.asarray(rec["values"]), engine.reconstruct(1, rows=[0, 2])
            )

            X = np.asarray(tensor[2], dtype=np.float64)
            fold = _call(handle.base_url, "POST", "/v1/fold-in",
                         {"slice": X.tolist(), "seed": 3, "neighbors": 2})
            offline = engine.fold_in(X, seed=3)
            assert fold["weights"] == offline.weights.tolist()
            assert fold["neighbors"][0]["index"] == 2

            anomaly = _call(handle.base_url, "POST", "/v1/anomaly",
                            {"slice": X.tolist(), "seed": 3})
            assert anomaly["score"] == offline.relative_residual

    def test_error_statuses(self, store, tensor):
        with start_server_in_thread(store) as handle:
            cases = [
                ("GET", "/nope", None, 404),
                ("POST", "/v1/similar", {"k": 3}, 400),
                ("POST", "/v1/similar", {"index": 99}, 400),
                ("POST", "/v1/similar", {"index": 0, "version": 42}, 404),
                ("POST", "/v1/reconstruct", {}, 400),
                ("POST", "/v1/fold-in", {"slice": "nope"}, 400),
                ("POST", "/v1/fold-in",
                 {"slice": [[1.0] * (tensor.n_columns + 1)]}, 400),
            ]
            for method, path, body, expected in cases:
                with pytest.raises(urllib.error.HTTPError) as err:
                    _call(handle.base_url, method, path, body)
                assert err.value.code == expected, (method, path)
                assert "error" in json.loads(err.value.read())

    def test_micro_batched_answers_bitwise_equal_sequential(self, store):
        """Acceptance: coalesced concurrent requests return bit-for-bit the
        answers of one-at-a-time execution, while sharing kernel calls."""
        indices = [0, 1, 2, 3, 4, 0, 2]
        with start_server_in_thread(
            store, batch_window=0.25, adaptive_batching=False
        ) as handle:
            barrier = threading.Barrier(len(indices))
            outcomes: dict[int, dict] = {}

            def fire(slot: int, index: int) -> None:
                barrier.wait()
                outcomes[slot] = _call(
                    handle.base_url, "POST", "/v1/similar",
                    {"index": index, "k": 3},
                )

            threads = [
                threading.Thread(target=fire, args=(slot, index))
                for slot, index in enumerate(indices)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(outcomes) == len(indices)
            health = _call(handle.base_url, "GET", "/healthz")
            assert health["batched_requests"] == len(indices)
            assert health["batches"] < len(indices)  # actually coalesced

        # Sequential reference on a batching-free server.
        with start_server_in_thread(store, batch_window=0.0) as handle:
            for slot, index in enumerate(indices):
                solo = _call(handle.base_url, "POST", "/v1/similar",
                             {"index": index, "k": 3})
                assert outcomes[slot] == solo  # bitwise: JSON floats round-trip

    def test_hot_swap_serves_both_versions_without_drops(
        self, store, result, config
    ):
        """Acceptance: publishing v2 must not drop in-flight v1 requests."""
        stop = threading.Event()
        failures: list[Exception] = []
        versions_seen: set[int] = set()

        with start_server_in_thread(store, poll_interval=0.05) as handle:
            def hammer() -> None:
                while not stop.is_set():
                    try:
                        body = _call(handle.base_url, "POST", "/v1/similar",
                                     {"index": 1, "k": 2})
                        versions_seen.add(body["version"])
                    except Exception as exc:  # any drop fails the test
                        failures.append(exc)
                        return

            workers = [threading.Thread(target=hammer) for _ in range(4)]
            for w in workers:
                w.start()
            try:
                store.publish(result, config=config)  # v2 goes live mid-traffic
                deadline = threading.Event()
                for _ in range(100):  # wait (≤5 s) for the poller to swap
                    if 2 in versions_seen:
                        break
                    deadline.wait(0.05)
            finally:
                stop.set()
                for w in workers:
                    w.join(timeout=10)
            assert not failures, failures
            assert versions_seen == {1, 2}  # served v1 throughout, then v2

            # The old version stays queryable when pinned explicitly.
            pinned = _call(handle.base_url, "POST", "/v1/similar",
                           {"index": 1, "k": 2, "version": 1})
            assert pinned["version"] == 1

    def test_bad_request_never_poisons_cobatched_ones(self, store, result):
        """An out-of-range index 400s on its own; a valid request sharing
        the same batching window still gets its answer."""
        with start_server_in_thread(
            store, batch_window=0.25, adaptive_batching=False
        ) as handle:
            barrier = threading.Barrier(2)
            outcomes: dict[str, object] = {}

            def good() -> None:
                barrier.wait()
                outcomes["good"] = _call(handle.base_url, "POST", "/v1/similar",
                                         {"index": 0, "k": 2})

            def bad() -> None:
                barrier.wait()
                try:
                    _call(handle.base_url, "POST", "/v1/similar",
                          {"index": result.n_slices + 50, "k": 2})
                except urllib.error.HTTPError as exc:
                    outcomes["bad"] = exc.code

            threads = [threading.Thread(target=good),
                       threading.Thread(target=bad)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert outcomes["bad"] == 400
            assert outcomes["good"]["neighbors"]  # unaffected by the 400

    def test_explicit_reload_endpoint(self, store, result):
        with start_server_in_thread(store) as handle:  # no polling
            store.publish(result)
            reply = _call(handle.base_url, "POST", "/admin/reload", {})
            assert reply == {"version": 2, "swapped": True, "quarantined": {}}
            again = _call(handle.base_url, "POST", "/admin/reload", {})
            assert again == {"version": 2, "swapped": False, "quarantined": {}}
            assert _call(handle.base_url, "GET", "/healthz")["version"] == 2

    def test_registry_path_accepted(self, store):
        with start_server_in_thread(store.root) as handle:
            assert _call(handle.base_url, "GET", "/healthz")["status"] == "ok"

    def test_endpoint_error_paths_return_json_400(self, store, tensor):
        """Every endpoint rejects malformed payloads with a JSON 400 body."""
        n = tensor.n_columns
        with start_server_in_thread(store) as handle:
            cases = [
                ("POST", "/v1/similar", {"index": "zero"}),
                ("POST", "/v1/similar", {"index": 0, "k": 0}),
                ("POST", "/v1/similar", {"index": 0, "k": True}),
                ("POST", "/v1/similar", {"index": 0, "mode": 7}),
                ("POST", "/v1/similar", {"index": 0, "mode": "galaxy"}),
                ("POST", "/v1/similar", {"indices": "nope"}),
                ("POST", "/v1/similar", {"indices": [0, "one"]}),
                ("POST", "/v1/similar", {"index": 0, "version": "x"}),
                ("GET", "/v1/model?version=abc", None),
                ("POST", "/v1/reconstruct", {"slice": "one"}),
                ("POST", "/v1/reconstruct", {"slice": 1, "rows": "x"}),
                ("POST", "/v1/fold-in", {}),
                ("POST", "/v1/fold-in", {"slice": [1.0, 2.0]}),
                ("POST", "/v1/fold-in", {"slice": [[float("nan")] * n]}),
                ("POST", "/v1/fold-in", {"slice": [[1.0] * n], "sweeps": 0}),
                ("POST", "/v1/fold-in", {"slice": [[1.0] * n], "seed": "x"}),
                ("POST", "/v1/anomaly", {}),
                ("POST", "/v1/anomaly", {"slice": "nope"}),
            ]
            for method, path, body in cases:
                with pytest.raises(urllib.error.HTTPError) as err:
                    _call(handle.base_url, method, path, body)
                assert err.value.code == 400, (method, path, body)
                assert "error" in json.loads(err.value.read()), (method, path)

    def test_model_cache_invalidates_on_hot_swap(self, store, result):
        """/v1/model is pre-serialized per engine; a reload must refresh it."""
        with start_server_in_thread(store) as handle:
            assert _call(handle.base_url, "GET", "/v1/model")["version"] == 1
            store.publish(result)
            _call(handle.base_url, "POST", "/admin/reload", {})
            assert _call(handle.base_url, "GET", "/v1/model")["version"] == 2


class TestAdaptiveWindow:
    def test_window_zero_when_idle_grows_under_pressure_resets(self):
        import asyncio

        def runner(payloads):
            return list(payloads)

        async def scenario():
            batcher = MicroBatcher(
                runner, window=0.01, max_batch=64, idle_reset=0.2
            )
            observed = {}
            observed["idle"] = batcher.current_window()
            # A deep burst: all submits land in one event-loop tick, so even
            # a zero window coalesces them into a single flush.
            await asyncio.gather(*[batcher.submit(i) for i in range(16)])
            observed["batches_after_burst"] = batcher.batches
            observed["after_burst"] = batcher.current_window()
            # Sustained bursts drive the EWMA toward the cap.
            for _ in range(4):
                await asyncio.gather(*[batcher.submit(i) for i in range(16)])
            observed["saturated"] = batcher.current_window()
            # A thin trickle of singles decays the pressure back down.
            for _ in range(6):
                await batcher.submit(0)
            observed["after_decay"] = batcher.current_window()
            # Past idle_reset with no flush at all, pressure is forgotten.
            await asyncio.sleep(0.25)
            observed["after_idle"] = batcher.current_window()
            return observed

        seen = asyncio.run(scenario())
        assert seen["idle"] == 0.0
        assert seen["batches_after_burst"] == 1  # same-tick coalescing at window 0
        assert seen["after_burst"] > 0.0
        assert seen["saturated"] > 0.009  # essentially at the cap
        assert seen["after_decay"] < seen["saturated"]
        assert seen["after_idle"] == 0.0

    def test_fixed_window_mode_ignores_pressure(self):
        def runner(payloads):
            return list(payloads)

        batcher = MicroBatcher(runner, window=0.25, adaptive=False)
        assert batcher.current_window() == 0.25  # idle, still the full window

    def test_stats_snapshot_matches_pre_serialized_json(self):
        def runner(payloads):
            return list(payloads)

        batcher = MicroBatcher(runner, window=0.002)
        assert json.loads(batcher.stats_json()) == batcher.stats()


class TestFoldBatching:
    def test_fold_in_and_anomaly_coalesce_bitwise_equal(
        self, store, result, config, tensor
    ):
        """Concurrent fold-in/anomaly requests share fold_in_many calls and
        still answer bit-for-bit like one-at-a-time execution."""
        engine = QueryEngine(result, config=config, version=1)
        slices = [np.asarray(tensor[i], dtype=np.float64) for i in range(4)]
        with start_server_in_thread(
            store, batch_window=0.25, adaptive_batching=False
        ) as handle:
            barrier = threading.Barrier(2 * len(slices))
            outcomes: dict[tuple, dict] = {}

            def fire(kind: str, slot: int) -> None:
                body = {"slice": slices[slot].tolist(), "seed": slot}
                barrier.wait()
                outcomes[(kind, slot)] = _call(
                    handle.base_url, "POST", f"/v1/{kind}", body
                )

            threads = [
                threading.Thread(target=fire, args=(kind, slot))
                for kind in ("fold-in", "anomaly")
                for slot in range(len(slices))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(outcomes) == 2 * len(slices)
            health = _call(handle.base_url, "GET", "/healthz")
            fold_stats = health["batching"]["fold_in"]
            assert fold_stats["requests"] == 2 * len(slices)
            assert fold_stats["batches"] < 2 * len(slices)  # actually coalesced

        for slot, X in enumerate(slices):
            offline = engine.fold_in(X, seed=slot)
            fold = outcomes[("fold-in", slot)]
            assert fold["weights"] == offline.weights.tolist()  # bitwise
            assert fold["relative_residual"] == offline.relative_residual
            anomaly = outcomes[("anomaly", slot)]
            assert anomaly["score"] == offline.relative_residual
            assert anomaly["residual_squared"] == offline.residual_squared


class TestTransport:
    def test_keep_alive_reuses_one_connection(self, store):
        with start_server_in_thread(store) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=15)
            try:
                sockets = set()
                for _ in range(5):
                    conn.request("GET", "/healthz")
                    response = conn.getresponse()
                    body = json.loads(response.read())
                    assert response.status == 200
                    assert response.getheader("Connection") == "keep-alive"
                    sockets.add(id(conn.sock))
                assert len(sockets) == 1  # never re-dialed
                assert body["connections"] == 1
                assert body["requests_served"] == 5
            finally:
                conn.close()

    def test_post_over_keep_alive_connection(self, store):
        with start_server_in_thread(store) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=15)
            try:
                for index in (0, 1, 0):
                    conn.request(
                        "POST", "/v1/similar",
                        body=json.dumps({"index": index, "k": 2}),
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    body = json.loads(response.read())
                    assert response.status == 200
                    assert body["index"] == index
            finally:
                conn.close()

    def test_connection_close_is_honored(self, store):
        with start_server_in_thread(store) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=15)
            try:
                conn.request("GET", "/healthz", headers={"Connection": "close"})
                response = conn.getresponse()
                assert response.status == 200
                assert response.getheader("Connection") == "close"
                assert response.read()  # server closes after the body
            finally:
                conn.close()

    def test_error_responses_keep_connection_alive(self, store):
        """A 400 is the client's problem, not the connection's: the next
        request on the same socket still works."""
        with start_server_in_thread(store) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=15)
            try:
                conn.request(
                    "POST", "/v1/similar", body=json.dumps({"k": 2}),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                assert response.status == 400
                assert "error" in json.loads(response.read())
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                assert json.loads(response.read())["status"] == "ok"
            finally:
                conn.close()

    def test_malformed_framing_gets_400_and_close(self, store):
        with start_server_in_thread(store) as handle:
            with socket.create_connection(("127.0.0.1", handle.port), timeout=15) as raw:
                raw.sendall(b"NOT-HTTP\r\n\r\n")
                reply = b""
                while True:
                    chunk = raw.recv(4096)
                    if not chunk:
                        break  # server closed: framing is unrecoverable
                    reply += chunk
            assert reply.startswith(b"HTTP/1.1 400")
            assert b"Connection: close" in reply

    def test_non_json_body_gets_400(self, store):
        with start_server_in_thread(store) as handle:
            conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=15)
            try:
                conn.request("POST", "/v1/similar", body=b"not json at all")
                response = conn.getresponse()
                assert response.status == 400
                assert "error" in json.loads(response.read())
            finally:
                conn.close()

    def test_healthz_counter_reference(self, store):
        """The counters documented in docs/serving.md exist and make sense."""
        with start_server_in_thread(store) as handle:
            _call(handle.base_url, "POST", "/v1/similar", {"index": 0, "k": 2})
            health = _call(handle.base_url, "GET", "/healthz")
        assert health["status"] == "ok"
        assert health["version"] == 1
        assert health["uptime_seconds"] >= 0.0
        assert health["connections"] >= 2
        assert health["requests_served"] >= 2
        # Back-compat top-level aliases of the similar batcher.
        assert health["batches"] == health["batching"]["similar"]["batches"]
        assert health["batched_requests"] == health["batching"]["similar"]["requests"]
        for name in ("similar", "fold_in"):
            stats = health["batching"][name]
            for key in (
                "batches", "requests", "queue_depth", "last_batch",
                "ewma_depth", "window_cap_ms", "current_window_ms",
            ):
                assert key in stats, (name, key)
        assert health["batching"]["similar"]["requests"] == 1

    def test_idle_latency_close_to_unbatched(self, store):
        """Adaptive batching must not tax a quiet server: sequential keep-alive
        requests at the default window cap stay close to a window-0 server."""

        def p50(handle):
            conn = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=15)
            try:
                samples = []
                body = json.dumps({"index": 0, "k": 3})
                for _ in range(60):
                    start = time.perf_counter()
                    conn.request("POST", "/v1/similar", body=body)
                    conn.getresponse().read()
                    samples.append(time.perf_counter() - start)
            finally:
                conn.close()
            samples.sort()
            return samples[len(samples) // 2]

        with start_server_in_thread(store, batch_window=0.0) as handle:
            unbatched = p50(handle)
        with start_server_in_thread(store, batch_window=0.002) as handle:
            adaptive = p50(handle)
        # Generous bound for a shared CI box; the 2ms fixed window it
        # replaces would blow well past this.
        assert adaptive < unbatched + 0.0015, (adaptive, unbatched)
