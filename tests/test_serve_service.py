"""Tests for the asyncio HTTP service: routing, micro-batching, hot swap."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.decomposition.dpar2 import dpar2
from repro.serve.queries import QueryEngine
from repro.serve.service import MicroBatcher, ModelHost, ServiceError, start_server_in_thread
from repro.serve.store import FactorStore
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig


@pytest.fixture(scope="module")
def tensor():
    return low_rank_irregular_tensor(
        [30, 45, 25, 40, 35], n_columns=16, rank=3, noise=0.02, random_state=4
    )


@pytest.fixture(scope="module")
def config():
    return DecompositionConfig(rank=4, max_iterations=6, random_state=0)


@pytest.fixture(scope="module")
def result(tensor, config):
    return dpar2(tensor, config)


@pytest.fixture
def store(result, config, tmp_path):
    registry = FactorStore(tmp_path / "registry")
    registry.publish(result, config=config)
    return registry


def _call(base_url, method, path, body=None, timeout=15):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(base_url + path, data=data, method=method)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


class TestModelHost:
    def test_refresh_and_current(self, store):
        host = ModelHost(store)
        engine = host.refresh()
        assert engine.version == 1
        assert host.current_version == 1
        assert host.engine() is engine  # no reload between publishes

    def test_lru_eviction_spares_current(self, store, result):
        host = ModelHost(store, lru_size=1)
        host.refresh()
        store.publish(result)
        store.publish(result)
        host.refresh()
        assert host.current_version == 3
        host.engine(1)  # load a pinned old version into the cache
        assert host.current_version == 3
        assert 3 in host.cached_versions()  # the live engine never evicts
        assert len(host.cached_versions()) == 1

    def test_unknown_version_maps_to_404(self, store):
        host = ModelHost(store)
        with pytest.raises(ServiceError) as err:
            host.engine(42)
        assert err.value.status == 404

    def test_empty_registry_maps_to_503(self, tmp_path):
        host = ModelHost(FactorStore(tmp_path / "empty"))
        with pytest.raises(ServiceError) as err:
            host.refresh()
        assert err.value.status == 503


class TestMicroBatcher:
    def test_coalesces_concurrent_submits(self):
        import asyncio

        calls = []

        def runner(payloads):
            calls.append(list(payloads))
            return [p * 10 for p in payloads]

        async def scenario():
            batcher = MicroBatcher(runner, window=0.01)
            return await asyncio.gather(*[batcher.submit(i) for i in range(5)])

        results = asyncio.run(scenario())
        assert results == [0, 10, 20, 30, 40]
        assert len(calls) == 1  # five submissions, one kernel call
        assert calls[0] == [0, 1, 2, 3, 4]

    def test_max_batch_flushes_immediately(self):
        import asyncio

        calls = []

        def runner(payloads):
            calls.append(list(payloads))
            return payloads

        async def scenario():
            batcher = MicroBatcher(runner, window=60.0, max_batch=2)
            return await asyncio.gather(*[batcher.submit(i) for i in range(4)])

        assert asyncio.run(scenario()) == [0, 1, 2, 3]
        assert [len(c) for c in calls] == [2, 2]  # never waited for the window

    def test_runner_failure_propagates(self):
        import asyncio

        def runner(payloads):
            raise RuntimeError("kernel exploded")

        async def scenario():
            batcher = MicroBatcher(runner, window=0.0)
            await batcher.submit(1)

        with pytest.raises(RuntimeError, match="exploded"):
            asyncio.run(scenario())

    def test_per_slot_exception_does_not_poison_batch(self):
        """A runner can fail one payload (an Exception in its slot) without
        failing the co-batched ones."""
        import asyncio

        def runner(payloads):
            return [
                ValueError(f"bad {p}") if p == 1 else p * 10 for p in payloads
            ]

        async def scenario():
            batcher = MicroBatcher(runner, window=0.01)
            return await asyncio.gather(
                *[batcher.submit(i) for i in range(3)],
                return_exceptions=True,
            )

        results = asyncio.run(scenario())
        assert results[0] == 0
        assert isinstance(results[1], ValueError)
        assert results[2] == 20


class TestHttpEndpoints:
    def test_health_model_versions(self, store):
        with start_server_in_thread(store) as handle:
            health = _call(handle.base_url, "GET", "/healthz")
            assert health["status"] == "ok"
            assert health["version"] == 1
            model = _call(handle.base_url, "GET", "/v1/model")
            assert model["rank"] == 4
            assert model["n_slices"] == 5
            versions = _call(handle.base_url, "GET", "/v1/versions")
            assert versions == {
                "versions": [1], "latest": 1, "serving": 1, "cached": [1],
            }

    def test_query_endpoints_match_engine(self, store, result, config, tensor):
        engine = QueryEngine(result, config=config, version=1)
        with start_server_in_thread(store) as handle:
            sim = _call(handle.base_url, "POST", "/v1/similar",
                        {"index": 0, "k": 3})
            neighbors, scores = engine.similar([0], k=3)
            assert [n["index"] for n in sim["neighbors"]] == neighbors[0].tolist()
            assert [n["score"] for n in sim["neighbors"]] == scores[0].tolist()

            batch = _call(handle.base_url, "POST", "/v1/similar",
                          {"indices": [1, 2], "k": 2, "mode": "feature"})
            neighbors, _ = engine.similar([1, 2], k=2, mode="feature")
            assert [n["index"] for n in batch["results"][1]["neighbors"]] == \
                neighbors[1].tolist()

            rec = _call(handle.base_url, "POST", "/v1/reconstruct",
                        {"slice": 1, "rows": [0, 2]})
            np.testing.assert_array_equal(
                np.asarray(rec["values"]), engine.reconstruct(1, rows=[0, 2])
            )

            X = np.asarray(tensor[2], dtype=np.float64)
            fold = _call(handle.base_url, "POST", "/v1/fold-in",
                         {"slice": X.tolist(), "seed": 3, "neighbors": 2})
            offline = engine.fold_in(X, seed=3)
            assert fold["weights"] == offline.weights.tolist()
            assert fold["neighbors"][0]["index"] == 2

            anomaly = _call(handle.base_url, "POST", "/v1/anomaly",
                            {"slice": X.tolist(), "seed": 3})
            assert anomaly["score"] == offline.relative_residual

    def test_error_statuses(self, store, tensor):
        with start_server_in_thread(store) as handle:
            cases = [
                ("GET", "/nope", None, 404),
                ("POST", "/v1/similar", {"k": 3}, 400),
                ("POST", "/v1/similar", {"index": 99}, 400),
                ("POST", "/v1/similar", {"index": 0, "version": 42}, 404),
                ("POST", "/v1/reconstruct", {}, 400),
                ("POST", "/v1/fold-in", {"slice": "nope"}, 400),
                ("POST", "/v1/fold-in",
                 {"slice": [[1.0] * (tensor.n_columns + 1)]}, 400),
            ]
            for method, path, body, expected in cases:
                with pytest.raises(urllib.error.HTTPError) as err:
                    _call(handle.base_url, method, path, body)
                assert err.value.code == expected, (method, path)
                assert "error" in json.loads(err.value.read())

    def test_micro_batched_answers_bitwise_equal_sequential(self, store):
        """Acceptance: coalesced concurrent requests return bit-for-bit the
        answers of one-at-a-time execution, while sharing kernel calls."""
        indices = [0, 1, 2, 3, 4, 0, 2]
        with start_server_in_thread(store, batch_window=0.25) as handle:
            barrier = threading.Barrier(len(indices))
            outcomes: dict[int, dict] = {}

            def fire(slot: int, index: int) -> None:
                barrier.wait()
                outcomes[slot] = _call(
                    handle.base_url, "POST", "/v1/similar",
                    {"index": index, "k": 3},
                )

            threads = [
                threading.Thread(target=fire, args=(slot, index))
                for slot, index in enumerate(indices)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(outcomes) == len(indices)
            health = _call(handle.base_url, "GET", "/healthz")
            assert health["batched_requests"] == len(indices)
            assert health["batches"] < len(indices)  # actually coalesced

        # Sequential reference on a batching-free server.
        with start_server_in_thread(store, batch_window=0.0) as handle:
            for slot, index in enumerate(indices):
                solo = _call(handle.base_url, "POST", "/v1/similar",
                             {"index": index, "k": 3})
                assert outcomes[slot] == solo  # bitwise: JSON floats round-trip

    def test_hot_swap_serves_both_versions_without_drops(
        self, store, result, config
    ):
        """Acceptance: publishing v2 must not drop in-flight v1 requests."""
        stop = threading.Event()
        failures: list[Exception] = []
        versions_seen: set[int] = set()

        with start_server_in_thread(store, poll_interval=0.05) as handle:
            def hammer() -> None:
                while not stop.is_set():
                    try:
                        body = _call(handle.base_url, "POST", "/v1/similar",
                                     {"index": 1, "k": 2})
                        versions_seen.add(body["version"])
                    except Exception as exc:  # any drop fails the test
                        failures.append(exc)
                        return

            workers = [threading.Thread(target=hammer) for _ in range(4)]
            for w in workers:
                w.start()
            try:
                store.publish(result, config=config)  # v2 goes live mid-traffic
                deadline = threading.Event()
                for _ in range(100):  # wait (≤5 s) for the poller to swap
                    if 2 in versions_seen:
                        break
                    deadline.wait(0.05)
            finally:
                stop.set()
                for w in workers:
                    w.join(timeout=10)
            assert not failures, failures
            assert versions_seen == {1, 2}  # served v1 throughout, then v2

            # The old version stays queryable when pinned explicitly.
            pinned = _call(handle.base_url, "POST", "/v1/similar",
                           {"index": 1, "k": 2, "version": 1})
            assert pinned["version"] == 1

    def test_bad_request_never_poisons_cobatched_ones(self, store, result):
        """An out-of-range index 400s on its own; a valid request sharing
        the same batching window still gets its answer."""
        with start_server_in_thread(store, batch_window=0.25) as handle:
            barrier = threading.Barrier(2)
            outcomes: dict[str, object] = {}

            def good() -> None:
                barrier.wait()
                outcomes["good"] = _call(handle.base_url, "POST", "/v1/similar",
                                         {"index": 0, "k": 2})

            def bad() -> None:
                barrier.wait()
                try:
                    _call(handle.base_url, "POST", "/v1/similar",
                          {"index": result.n_slices + 50, "k": 2})
                except urllib.error.HTTPError as exc:
                    outcomes["bad"] = exc.code

            threads = [threading.Thread(target=good),
                       threading.Thread(target=bad)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert outcomes["bad"] == 400
            assert outcomes["good"]["neighbors"]  # unaffected by the 400

    def test_explicit_reload_endpoint(self, store, result):
        with start_server_in_thread(store) as handle:  # no polling
            store.publish(result)
            reply = _call(handle.base_url, "POST", "/admin/reload", {})
            assert reply == {"version": 2, "swapped": True}
            again = _call(handle.base_url, "POST", "/admin/reload", {})
            assert again == {"version": 2, "swapped": False}
            assert _call(handle.base_url, "GET", "/healthz")["version"] == 2

    def test_registry_path_accepted(self, store):
        with start_server_in_thread(store.root) as handle:
            assert _call(handle.base_url, "GET", "/healthz")["status"] == "ok"
