"""Tests for DenseTensor, norms, and the random tensor constructors."""

import numpy as np
import pytest

from repro.tensor.dense import DenseTensor
from repro.tensor.norms import frobenius_norm, relative_error
from repro.tensor.random import (
    low_rank_irregular_tensor,
    random_dense_tensor,
    random_irregular_tensor,
)


class TestDenseTensor:
    def test_shape_and_data(self, rng):
        X = DenseTensor(rng.standard_normal((3, 4, 5)))
        assert X.shape == (3, 4, 5)
        assert X.nbytes == 3 * 4 * 5 * 8

    def test_rejects_matrix(self, rng):
        with pytest.raises(ValueError, match="3-order"):
            DenseTensor(rng.standard_normal((3, 4)))

    def test_rejects_nan(self):
        bad = np.ones((2, 2, 2))
        bad[0, 0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            DenseTensor(bad)

    def test_frontal_slice(self, rng):
        data = rng.standard_normal((3, 4, 5))
        X = DenseTensor(data)
        np.testing.assert_array_equal(X.frontal_slice(2), data[:, :, 2])

    def test_from_frontal_slices_roundtrip(self, rng):
        slices = [rng.standard_normal((3, 4)) for _ in range(5)]
        X = DenseTensor.from_frontal_slices(slices)
        for k in range(5):
            np.testing.assert_array_equal(X.frontal_slice(k), slices[k])

    def test_from_frontal_slices_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="shape"):
            DenseTensor.from_frontal_slices(
                [rng.standard_normal((3, 4)), rng.standard_normal((4, 4))]
            )

    def test_from_cp_factors(self, rng):
        A = rng.standard_normal((4, 2))
        B = rng.standard_normal((5, 2))
        C = rng.standard_normal((6, 2))
        X = DenseTensor.from_cp_factors((A, B, C))
        expected = np.einsum("ir,jr,kr->ijk", A, B, C)
        np.testing.assert_allclose(X.data, expected, atol=1e-10)

    def test_from_cp_factors_with_weights(self, rng):
        A = rng.standard_normal((3, 2))
        B = rng.standard_normal((3, 2))
        C = rng.standard_normal((3, 2))
        lam = np.array([2.0, 0.5])
        X = DenseTensor.from_cp_factors((A, B, C), lam)
        expected = np.einsum("r,ir,jr,kr->ijk", lam, A, B, C)
        np.testing.assert_allclose(X.data, expected, atol=1e-10)

    def test_from_cp_rank_mismatch(self, rng):
        with pytest.raises(ValueError, match="rank"):
            DenseTensor.from_cp_factors(
                (rng.standard_normal((3, 2)), rng.standard_normal((3, 3)),
                 rng.standard_normal((3, 2)))
            )

    def test_norm(self, rng):
        data = rng.standard_normal((2, 3, 4))
        assert DenseTensor(data).norm() == pytest.approx(np.linalg.norm(data.ravel()))


class TestNorms:
    def test_frobenius_matches_numpy(self, rng):
        A = rng.standard_normal((4, 6))
        assert frobenius_norm(A) == pytest.approx(np.linalg.norm(A))

    def test_frobenius_of_tensor(self, rng):
        X = rng.standard_normal((2, 3, 4))
        assert frobenius_norm(X) == pytest.approx(np.linalg.norm(X.ravel()))

    def test_relative_error_zero_for_identical(self, rng):
        A = rng.standard_normal((3, 3))
        assert relative_error(A, A) == 0.0

    def test_relative_error_scale(self, rng):
        A = rng.standard_normal((3, 3))
        assert relative_error(A, np.zeros_like(A)) == pytest.approx(1.0)

    def test_relative_error_zero_reference(self):
        assert relative_error(np.zeros((2, 2)), np.zeros((2, 2))) == 0.0
        assert relative_error(np.zeros((2, 2)), np.ones((2, 2))) == float("inf")

    def test_relative_error_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            relative_error(np.ones((2, 2)), np.ones((3, 2)))


class TestRandomConstructors:
    def test_dense_tensor_range(self):
        X = random_dense_tensor((4, 5, 6), random_state=0)
        assert X.shape == (4, 5, 6)
        assert np.all(X.data >= 0.0) and np.all(X.data < 1.0)

    def test_dense_deterministic(self):
        a = random_dense_tensor((3, 3, 3), random_state=1)
        b = random_dense_tensor((3, 3, 3), random_state=1)
        np.testing.assert_array_equal(a.data, b.data)

    def test_dense_bad_shape(self):
        with pytest.raises(ValueError, match="shape"):
            random_dense_tensor((3, 3))

    def test_irregular_row_profile(self):
        t = random_irregular_tensor([3, 9, 5], 7, random_state=0)
        assert t.row_counts == [3, 9, 5]
        assert t.n_columns == 7

    def test_low_rank_structure_is_exact(self):
        t = low_rank_irregular_tensor([20, 25], 15, rank=3, noise=0.0,
                                      random_state=0)
        for Xk in t:
            s = np.linalg.svd(Xk, compute_uv=False)
            assert s[3] < 1e-10 * s[0]  # numerically rank 3

    def test_low_rank_noise_added(self):
        clean = low_rank_irregular_tensor([20], 15, rank=3, noise=0.0,
                                          random_state=5)
        noisy = low_rank_irregular_tensor([20], 15, rank=3, noise=0.5,
                                          random_state=5)
        assert not np.allclose(clean[0], noisy[0])

    def test_low_rank_rank_exceeds_columns(self):
        with pytest.raises(ValueError, match="rank"):
            low_rank_irregular_tensor([20], 4, rank=6)

    def test_low_rank_slice_too_short(self):
        with pytest.raises(ValueError, match="rows"):
            low_rank_irregular_tensor([2], 10, rank=5)

    def test_low_rank_negative_noise(self):
        with pytest.raises(ValueError, match="noise"):
            low_rank_irregular_tensor([20], 10, rank=3, noise=-0.1)
