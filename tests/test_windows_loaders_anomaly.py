"""Tests for tensor windowing, file loaders, and anomaly scoring."""

import numpy as np
import pytest

from repro.analysis.anomaly import (
    anomaly_threshold,
    row_anomaly_scores,
    slice_anomaly_scores,
    top_anomalies,
)
from repro.data.loaders import (
    load_tensor_csv_dir,
    load_tensor_npz,
    save_tensor_csv_dir,
    save_tensor_npz,
)
from repro.decomposition.dpar2 import dpar2
from repro.tensor.irregular import IrregularTensor
from repro.tensor.windows import (
    row_range_window,
    split_train_tail,
    trailing_window,
)
from repro.util.config import DecompositionConfig


@pytest.fixture
def tensor(rng):
    return IrregularTensor(
        [rng.standard_normal((n, 6)) for n in (20, 35, 15, 40)]
    )


class TestTrailingWindow:
    def test_keeps_covering_slices(self, tensor):
        windowed = trailing_window(tensor, 20)
        assert windowed.kept == [0, 1, 3]
        assert windowed.tensor.row_counts == [20, 20, 20]

    def test_rows_are_trailing(self, tensor):
        windowed = trailing_window(tensor, 10)
        np.testing.assert_array_equal(windowed.tensor[1], tensor[1][-10:])

    def test_require_full_false_keeps_short(self, tensor):
        windowed = trailing_window(tensor, 20, require_full=False)
        assert windowed.kept == [0, 1, 2, 3]
        assert windowed.tensor.row_counts == [20, 20, 15, 20]

    def test_original_index(self, tensor):
        windowed = trailing_window(tensor, 30)
        assert windowed.kept == [1, 3]
        assert windowed.original_index(1) == 3

    def test_no_coverage_raises(self, tensor):
        with pytest.raises(ValueError, match="no slice covers"):
            trailing_window(tensor, 100)

    def test_bad_length(self, tensor):
        with pytest.raises(ValueError, match="positive"):
            trailing_window(tensor, 0)


class TestRowRangeWindow:
    def test_range_semantics(self, tensor):
        windowed = row_range_window(tensor, 5, 15)
        assert windowed.tensor.row_counts == [10] * len(windowed.kept)
        k0 = windowed.kept[0]
        np.testing.assert_array_equal(
            windowed.tensor[0], tensor[k0][-15:-5]
        )

    def test_start_zero_is_trailing(self, tensor):
        a = row_range_window(tensor, 0, 15)
        b = trailing_window(tensor, 15)
        np.testing.assert_array_equal(a.tensor[0], b.tensor[0])

    def test_invalid_range(self, tensor):
        with pytest.raises(ValueError, match="start"):
            row_range_window(tensor, 5, 5)

    def test_nothing_covers(self, tensor):
        with pytest.raises(ValueError, match="covers"):
            row_range_window(tensor, 0, 1000)


class TestSplitTrainTail:
    def test_shapes(self, tensor):
        heads, tails = split_train_tail(tensor, 5)
        assert tails.row_counts == [5, 5, 5, 5]
        assert heads.row_counts == [15, 30, 10, 35]

    def test_content(self, tensor):
        heads, tails = split_train_tail(tensor, 5)
        np.testing.assert_array_equal(tails[2], tensor[2][-5:])
        np.testing.assert_array_equal(heads[2], tensor[2][:-5])

    def test_too_short_rejected(self, tensor):
        with pytest.raises(ValueError, match="cannot hold out"):
            split_train_tail(tensor, 15)


class TestNpzRoundtrip:
    def test_roundtrip(self, tensor, tmp_path):
        path = tmp_path / "tensor.npz"
        save_tensor_npz(path, tensor)
        loaded = load_tensor_npz(path)
        assert loaded.n_slices == tensor.n_slices
        for a, b in zip(loaded, tensor):
            np.testing.assert_array_equal(a, b)

    def test_wrong_archive_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, x=np.ones(3))
        with pytest.raises(ValueError, match="not an irregular-tensor"):
            load_tensor_npz(path)


class TestCsvRoundtrip:
    def test_roundtrip(self, tensor, tmp_path):
        directory = tmp_path / "slices"
        save_tensor_csv_dir(directory, tensor)
        loaded, names = load_tensor_csv_dir(directory)
        assert len(names) == tensor.n_slices
        for a, b in zip(loaded, tensor):
            np.testing.assert_allclose(a, b, rtol=1e-9)

    def test_custom_names_and_header(self, tensor, tmp_path):
        directory = tmp_path / "slices"
        names = [f"stock_{c}" for c in "abcd"]
        header = [f"f{i}" for i in range(6)]
        paths = save_tensor_csv_dir(directory, tensor, names=names,
                                    header=header)
        assert all(p.endswith(".csv") for p in paths)
        loaded, loaded_names = load_tensor_csv_dir(directory, has_header=True)
        assert loaded_names == sorted(names)
        assert loaded.n_columns == 6

    def test_name_count_mismatch(self, tensor, tmp_path):
        with pytest.raises(ValueError, match="names"):
            save_tensor_csv_dir(tmp_path / "x", tensor, names=["a"])

    def test_duplicate_names(self, tensor, tmp_path):
        with pytest.raises(ValueError, match="unique"):
            save_tensor_csv_dir(tmp_path / "x", tensor,
                                names=["a", "a", "b", "c"])

    def test_header_length_mismatch(self, tensor, tmp_path):
        with pytest.raises(ValueError, match="header"):
            save_tensor_csv_dir(tmp_path / "x", tensor, header=["only_one"])

    def test_empty_dir_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="no .csv"):
            load_tensor_csv_dir(empty)

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_tensor_csv_dir(tmp_path / "nope")


class TestAnomalyScores:
    @pytest.fixture
    def planted(self, rng):
        """Low-rank tensor with one corrupted slice (corruption scaled to
        the data so it is an anomaly, not the dominant signal)."""
        from repro.tensor.random import low_rank_irregular_tensor

        tensor = low_rank_irregular_tensor(
            [30] * 8, 20, rank=3, noise=0.005, random_state=5
        )
        slices = [Xk.copy() for Xk in tensor]
        scale = 0.5 * slices[4].std()
        slices[4] = slices[4] + scale * rng.standard_normal(slices[4].shape)
        return IrregularTensor(slices), 4

    def test_corrupted_slice_scores_highest(self, planted):
        tensor, bad = planted
        config = DecompositionConfig(rank=3, max_iterations=20,
                                     random_state=0)
        result = dpar2(tensor, config)
        scores = slice_anomaly_scores(result, tensor)
        assert int(np.argmax(scores)) == bad

    def test_top_anomalies_ordering(self, planted):
        tensor, bad = planted
        result = dpar2(tensor, DecompositionConfig(rank=3, max_iterations=20,
                                                   random_state=0))
        top = top_anomalies(result, tensor, k=3)
        assert top[0][0] == bad
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_threshold_flags_only_the_bad_slice(self, planted):
        tensor, bad = planted
        result = dpar2(tensor, DecompositionConfig(rank=3, max_iterations=20,
                                                   random_state=0))
        scores = slice_anomaly_scores(result, tensor)
        threshold = anomaly_threshold(scores)
        flagged = [i for i, s in enumerate(scores) if s > threshold]
        assert flagged == [bad]

    def test_row_scores_localize(self, rng):
        """Corrupting a few rows must raise their row scores specifically.

        PARAFAC2's slice-specific Qk can absorb part of a row anomaly, so
        the assertion is statistical: all three corrupted rows in the top
        six, at least two in the top three."""
        from repro.tensor.random import low_rank_irregular_tensor

        tensor = low_rank_irregular_tensor([40] * 5, 16, rank=3,
                                           noise=0.005, random_state=6)
        slices = [Xk.copy() for Xk in tensor]
        scale = 2.0 * slices[2].std()
        slices[2][10:13] += scale * rng.standard_normal((3, 16))
        corrupted = IrregularTensor(slices)
        result = dpar2(corrupted, DecompositionConfig(rank=3,
                                                      max_iterations=20,
                                                      random_state=0))
        rows = row_anomaly_scores(result, corrupted, 2)
        top3 = set(int(i) for i in np.argsort(rows)[-3:])
        top6 = set(int(i) for i in np.argsort(rows)[-6:])
        assert {10, 11, 12} <= top6
        assert len({10, 11, 12} & top3) >= 2

    def test_slice_count_mismatch(self, planted):
        tensor, _ = planted
        result = dpar2(tensor, DecompositionConfig(rank=3, max_iterations=2,
                                                   random_state=0))
        with pytest.raises(ValueError, match="slices"):
            slice_anomaly_scores(result, tensor.subset([0, 1]))

    def test_row_scores_bad_slice_index(self, planted):
        tensor, _ = planted
        result = dpar2(tensor, DecompositionConfig(rank=3, max_iterations=2,
                                                   random_state=0))
        with pytest.raises(IndexError):
            row_anomaly_scores(result, tensor, 99)

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            anomaly_threshold([])
        with pytest.raises(ValueError, match="n_sigmas"):
            anomaly_threshold([1.0, 2.0], n_sigmas=0.0)
