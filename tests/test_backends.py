"""Tests for the pluggable execution backends (serial/thread/process).

The process-backend tests exercise real worker processes and shared-memory
shipping; they use deliberately tiny tensors so the suite stays fast on a
one-core container.
"""

import numpy as np
import pytest

from repro.decomposition.dpar2 import _batched_polar, compress_tensor, dpar2
from repro.decomposition.parafac2_als import parafac2_als
from repro.decomposition.spartan import spartan
from repro.parallel.backends import (
    BACKEND_NAMES,
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
)
from repro.parallel.shm import ArrayShipment, AttachedArrays, MmapArrayRef, ShmArrayRef
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig

ALL_BACKENDS = list(BACKEND_NAMES)


def _double(x):
    return x * 2


def _sum_pair(item):
    array, scalar = item
    return float(np.sum(array)) + scalar


def _identity(item):
    return item


@pytest.fixture(scope="module")
def tiny_tensor():
    return low_rank_irregular_tensor(
        [30, 45, 25, 40, 35], n_columns=16, rank=3, noise=0.02, random_state=3
    )


class TestRegistry:
    def test_names_cover_registry(self):
        assert set(BACKEND_NAMES) == set(BACKENDS)

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_get_backend_by_name(self, name):
        backend = get_backend(name, 2)
        try:
            assert backend.name == name
            assert backend.n_workers == 2
        finally:
            backend.close()

    def test_case_insensitive(self):
        assert isinstance(get_backend("  Serial "), SerialBackend)

    def test_instance_passthrough(self):
        backend = ThreadBackend(3)
        assert get_backend(backend, 99) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("gpu")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError, match="backend"):
            get_backend(42)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="n_workers"):
            ThreadBackend(0)


class TestMapSemantics:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_map_preserves_order(self, name):
        with get_backend(name, 2) as backend:
            assert backend.map(_double, list(range(9))) == [2 * x for x in range(9)]

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_map_partitioned_preserves_order(self, name):
        items = list(range(11))
        weights = [(i % 4) + 1 for i in items]
        with get_backend(name, 3) as backend:
            out = backend.map_partitioned(_double, items, weights)
        assert out == [2 * x for x in items]

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_array_payloads(self, name):
        items = [(np.full((10, 4), k, dtype=np.float64), k) for k in range(6)]
        expected = [40.0 * k + k for k in range(6)]
        with get_backend(name, 2) as backend:
            assert backend.map(_sum_pair, items) == expected
            assert backend.map_partitioned(_sum_pair, items, [10] * 6) == expected

    def test_weight_mismatch_rejected(self):
        with pytest.raises(ValueError, match="align"):
            SerialBackend().map_partitioned(_double, [1, 2], [1.0])

    def test_empty_items(self):
        with get_backend("thread", 2) as backend:
            assert backend.map(_double, []) == []

    def test_serial_ignores_worker_count(self):
        # SerialBackend with n_workers > 1 must still run inline.
        assert SerialBackend(4).map(_double, [1, 2, 3]) == [2, 4, 6]

    def test_context_manager_closes_pool(self):
        backend = ProcessBackend(2)
        with backend:
            backend.map(_double, list(range(4)))
            assert backend._pool is not None
        assert backend._pool is None

    def test_process_pool_reused_across_calls(self):
        with ProcessBackend(2) as backend:
            backend.map(_double, list(range(4)))
            pool = backend._pool
            backend.map(_double, list(range(4)))
            assert backend._pool is pool

    def test_process_worker_exception_propagates(self):
        def boom(x):  # pragma: no cover - executed in worker
            raise RuntimeError("boom")

        # A closure is unpicklable, which surfaces as an error from the
        # pool — either way the failure must propagate, not hang or leak.
        with ProcessBackend(2) as backend:
            with pytest.raises(Exception):
                backend.map(boom, list(range(8)))
            # the pool must still be usable afterwards
            assert backend.map(_double, [5, 6]) == [10, 12]


class TestSharedMemoryShipping:
    def test_roundtrip_preserves_values(self):
        payload = {"x": np.arange(12.0).reshape(3, 4), "tag": ("a", [1.5])}
        shipment = ArrayShipment()
        try:
            packed = shipment.pack(payload)
            assert isinstance(packed["x"], ShmArrayRef)
            holder = AttachedArrays()
            resolved = holder.resolve(packed)
            np.testing.assert_array_equal(resolved["x"], payload["x"])
            assert resolved["tag"] == payload["tag"]
            copied = holder.copy_if_shared(resolved)
            holder.release()
            # After release the copies must still be readable.
            np.testing.assert_array_equal(copied["x"], payload["x"])
        finally:
            shipment.cleanup()

    def test_memmap_ships_by_reference(self, tmp_path):
        array = np.arange(20.0).reshape(5, 4)
        np.save(tmp_path / "a.npy", array)
        mapped = np.load(tmp_path / "a.npy", mmap_mode="r")
        shipment = ArrayShipment()
        try:
            packed = shipment.pack((mapped, 7))
            assert isinstance(packed[0], MmapArrayRef)
            assert shipment._segments == []  # no shm segment was created
            holder = AttachedArrays()
            resolved = holder.resolve(packed)
            np.testing.assert_array_equal(resolved[0], array)
            holder.release()
        finally:
            shipment.cleanup()

    def test_empty_array_passes_through(self):
        shipment = ArrayShipment()
        try:
            packed = shipment.pack(np.empty((0, 3)))
            assert isinstance(packed, np.ndarray)
        finally:
            shipment.cleanup()


class TestBackendEquivalence:
    """Serial, thread, and process backends must agree to the bit."""

    def test_compress_tensor_identical(self, tiny_tensor):
        reference = compress_tensor(tiny_tensor, 3, random_state=11, backend="serial")
        for name in ("thread", "process"):
            other = compress_tensor(
                tiny_tensor, 3, n_threads=2, random_state=11, backend=name
            )
            for Ak, Bk in zip(reference.A, other.A):
                assert np.array_equal(Ak, Bk), name
            assert np.array_equal(reference.D, other.D), name
            assert np.array_equal(reference.E, other.E), name
            assert np.array_equal(reference.F_blocks, other.F_blocks), name

    def test_dpar2_identical(self, tiny_tensor):
        def run(name):
            return dpar2(
                tiny_tensor,
                DecompositionConfig(
                    rank=3,
                    max_iterations=4,
                    n_threads=2,
                    backend=name,
                    random_state=5,
                ),
            )

        reference = run("serial")
        for name in ("thread", "process"):
            other = run(name)
            assert np.array_equal(reference.H, other.H), name
            assert np.array_equal(reference.V, other.V), name
            assert np.array_equal(reference.S, other.S), name
            for Qa, Qb in zip(reference.Q, other.Q):
                assert np.array_equal(Qa, Qb), name

    def test_batched_polar_identical(self):
        rng = np.random.default_rng(0)
        stack = rng.standard_normal((16, 3, 3))
        reference = _batched_polar(stack, 1, backend="serial")
        for name in ("thread", "process"):
            out = _batched_polar(stack, 2, backend=name)
            assert np.array_equal(reference, out), name

    @pytest.mark.parametrize("solver", [parafac2_als, spartan])
    def test_baselines_identical_across_backends(self, tiny_tensor, solver):
        def run(name):
            return solver(
                tiny_tensor,
                DecompositionConfig(
                    rank=3,
                    max_iterations=3,
                    n_threads=2,
                    backend=name,
                    random_state=2,
                ),
            )

        reference = run("serial")
        for name in ("thread", "process"):
            other = run(name)
            assert np.array_equal(reference.H, other.H), name
            assert np.array_equal(reference.V, other.V), name
            for Qa, Qb in zip(reference.Q, other.Q):
                assert np.array_equal(Qa, Qb), name


class TestExecutorBackendParam:
    def test_parallel_map_accepts_backend_name(self):
        from repro.parallel.executor import parallel_map

        assert parallel_map(_double, [1, 2, 3], 2, backend="serial") == [2, 4, 6]

    def test_map_partitioned_accepts_instance(self):
        from repro.parallel.executor import map_partitioned

        with ThreadBackend(2) as backend:
            out = map_partitioned(_double, [3, 1], [3, 1], backend=backend)
        assert out == [6, 2]

    def test_executor_rejects_bad_thread_count(self):
        from repro.parallel.executor import parallel_map

        with pytest.raises(ValueError, match="n_threads"):
            parallel_map(_double, [1], n_threads=0)


def test_abstract_base_not_instantiable():
    with pytest.raises(TypeError):
        ExecutionBackend(1)
