"""Tests for the streaming DPar2 extension (the paper's future work)."""

import numpy as np
import pytest

from repro.decomposition.dpar2 import dpar2
from repro.decomposition.streaming import StreamingDpar2
from repro.tensor.irregular import IrregularTensor
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig


@pytest.fixture
def stream_config():
    return DecompositionConfig(rank=4, random_state=0)


@pytest.fixture
def stream_tensor():
    return low_rank_irregular_tensor(
        [40, 60, 35, 50, 45, 55], 24, rank=4, noise=0.02, random_state=1
    )


class TestAbsorb:
    def test_slice_count_grows(self, stream_config, rng):
        stream = StreamingDpar2(stream_config)
        for k in range(3):
            stream.absorb(rng.random((20, 10)), refresh=False)
            assert stream.n_slices == k + 1

    def test_column_mismatch_rejected(self, stream_config, rng):
        stream = StreamingDpar2(stream_config)
        stream.absorb(rng.random((20, 10)), refresh=False)
        with pytest.raises(ValueError, match="columns"):
            stream.absorb(rng.random((20, 12)), refresh=False)

    def test_result_before_absorb_raises(self, stream_config):
        with pytest.raises(RuntimeError, match="no slices"):
            StreamingDpar2(stream_config).compressed()

    def test_invalid_threshold(self, stream_config):
        with pytest.raises(ValueError, match="residual_threshold"):
            StreamingDpar2(stream_config, residual_threshold=1.5)

    def test_invalid_refresh_iterations(self, stream_config):
        with pytest.raises(ValueError, match="refresh_iterations"):
            StreamingDpar2(stream_config, refresh_iterations=-1)


class TestCompressedSnapshot:
    def test_shapes(self, stream_config, stream_tensor):
        stream = StreamingDpar2(stream_config)
        for Xk in stream_tensor:
            stream.absorb(Xk, refresh=False)
        compressed = stream.compressed()
        assert compressed.n_slices == stream_tensor.n_slices
        assert compressed.D.shape == (stream_tensor.n_columns, 4)
        assert compressed.E.shape == (4,)

    def test_reconstruction_tracks_data(self, stream_config, stream_tensor):
        """Per-slice error must sit near the rank-4 truncation floor (the
        planted noise leaves ~28% of the norm outside the rank-4 model)."""
        stream = StreamingDpar2(stream_config, residual_threshold=0.01)
        for Xk in stream_tensor:
            stream.absorb(Xk, refresh=False)
        compressed = stream.compressed()
        for k, Xk in enumerate(stream_tensor):
            rel = np.linalg.norm(
                compressed.reconstruct_slice(k) - Xk
            ) / np.linalg.norm(Xk)
            assert rel < 0.35

    def test_D_orthonormal(self, stream_config, stream_tensor):
        stream = StreamingDpar2(stream_config)
        for Xk in stream_tensor:
            stream.absorb(Xk, refresh=False)
        D = stream.compressed().D
        np.testing.assert_allclose(D.T @ D, np.eye(D.shape[1]), atol=1e-8)


class TestModelQuality:
    def test_matches_batch_fitness(self, stream_config, stream_tensor):
        stream = StreamingDpar2(stream_config, refresh_iterations=8)
        for Xk in stream_tensor:
            stream.absorb(Xk, refresh=False)
        streaming_fit = stream.fitness(stream_tensor)

        batch = dpar2(
            stream_tensor,
            stream_config.with_(max_iterations=8),
        )
        batch_fit = batch.fitness(stream_tensor)
        assert streaming_fit > batch_fit - 0.05

    def test_incremental_refresh(self, stream_config, stream_tensor):
        """Refreshing after every absorb must also produce a valid model."""
        stream = StreamingDpar2(stream_config, refresh_iterations=3)
        for Xk in stream_tensor:
            stream.absorb(Xk)  # refresh=True default
        result = stream.result()
        assert result.n_slices == stream_tensor.n_slices
        assert stream.fitness(stream_tensor) > 0.5

    def test_result_cached_until_next_absorb(self, stream_config, rng):
        stream = StreamingDpar2(stream_config)
        stream.absorb(rng.random((20, 10)))
        first = stream.result()
        assert stream.result() is first
        stream.absorb(rng.random((25, 10)))
        assert stream.result() is not first

    def test_basis_growth_on_novel_subspace(self, rng):
        """A slice living in a new right-subspace must trigger basis growth
        rather than being projected away.  Rank 8 so the grown basis can
        cover both disjoint 4-dimensional subspaces."""
        config = DecompositionConfig(rank=8, random_state=0)
        stream = StreamingDpar2(config, residual_threshold=0.05)
        J = 16
        # The first slice lives in columns 0..3, the novel one in 8..11.
        base = np.zeros((30, J))
        base[:, :4] = rng.random((30, 4))
        stream.absorb(base, refresh=False)
        novel = np.zeros((30, J))
        novel[:, 8:12] = rng.random((30, 4))
        stream.absorb(novel, refresh=False)
        compressed = stream.compressed()
        rel = np.linalg.norm(
            compressed.reconstruct_slice(1) - novel
        ) / np.linalg.norm(novel)
        assert rel < 0.1


class TestStreamOrderRobustness:
    def test_permuted_arrival_similar_quality(self, stream_config,
                                              stream_tensor):
        orders = [list(range(6)), [3, 0, 5, 1, 4, 2]]
        fits = []
        for order in orders:
            stream = StreamingDpar2(stream_config, refresh_iterations=8)
            for idx in order:
                stream.absorb(stream_tensor[idx], refresh=False)
            permuted = IrregularTensor(
                [stream_tensor[idx] for idx in order]
            )
            fits.append(stream.fitness(permuted))
        assert abs(fits[0] - fits[1]) < 0.1


class TestAbsorbMany:
    def test_batch_matches_slice_count(self, stream_config, rng):
        stream = StreamingDpar2(stream_config)
        stream.absorb_many([rng.random((20, 10)) for _ in range(4)])
        assert stream.n_slices == 4

    def test_empty_batch_is_noop(self, stream_config):
        stream = StreamingDpar2(stream_config)
        stream.absorb_many([])
        assert stream.n_slices == 0

    def test_column_mismatch_rejected(self, stream_config, rng):
        stream = StreamingDpar2(stream_config)
        with pytest.raises(ValueError, match="columns"):
            stream.absorb_many([rng.random((20, 10)), rng.random((20, 12))])

    def test_backends_agree_bitwise(self, stream_tensor):
        """Batch ingestion is schedule-independent: every backend yields the
        same model state for the same seed."""
        states = {}
        for backend in ("serial", "thread", "process"):
            config = DecompositionConfig(
                rank=4, n_threads=2, backend=backend, random_state=0
            )
            stream = StreamingDpar2(config)
            stream.absorb_many(list(stream_tensor.slices), refresh=False)
            states[backend] = stream.compressed()
        for backend in ("thread", "process"):
            np.testing.assert_array_equal(
                states["serial"].D, states[backend].D
            )
            np.testing.assert_array_equal(
                states["serial"].F_blocks, states[backend].F_blocks
            )

    def test_quality_comparable_to_sequential(self, stream_config, stream_tensor):
        batched = StreamingDpar2(stream_config)
        batched.absorb_many(list(stream_tensor.slices))
        assert batched.fitness(stream_tensor) > 0.8


class TestShortSlices:
    """Slices with fewer rows than the model rank must not corrupt state.

    Regression: a short slice yields a lower-rank stage-1 factorization;
    without padding, the shared-basis coefficient blocks end up with mixed
    widths and ``compressed()`` crashes on ``np.stack``.
    """

    def test_absorb_short_slice(self, rng):
        stream = StreamingDpar2(DecompositionConfig(rank=4, random_state=0))
        stream.absorb(rng.random((20, 10)), refresh=False)
        stream.absorb(rng.random((3, 10)), refresh=False)
        compressed = stream.compressed()
        assert compressed.n_slices == 2
        assert compressed.F_blocks.shape == (2, 4, 4)

    def test_absorb_many_short_slice(self, rng):
        stream = StreamingDpar2(DecompositionConfig(rank=4, random_state=0))
        stream.absorb_many([rng.random((20, 10)), rng.random((3, 10))])
        assert stream.n_slices == 2
        # The 3-row slice caps the refreshed PARAFAC2 model at rank 3
        # (Qk cannot have 4 orthonormal columns in 3 rows); the compressed
        # stream state itself stays at the full rank 4.
        result = stream.result()
        assert result.V.shape == (10, 3)
        assert stream.compressed().rank == 4

    def test_short_first_slice(self, rng):
        stream = StreamingDpar2(DecompositionConfig(rank=4, random_state=0))
        stream.absorb(rng.random((2, 10)), refresh=False)
        stream.absorb(rng.random((30, 10)), refresh=False)
        assert stream.compressed().n_slices == 2
