"""Fault-injection harness tests and crash-recovery contracts.

Three layers are exercised under deterministic injected faults
(:mod:`repro.util.faults`):

* the process shard transport — worker crash/hang/corrupt replies recover
  by respawn-and-replay, bitwise-identically to a no-fault run;
* the durable stores — a writer SIGKILLed mid-``FactorStore.publish`` or
  mid-``MmapSliceStore`` append never corrupts what readers see;
* the streaming decomposition — a crash mid-``absorb_many`` resumes from
  the last checkpoint and converges to the same bits.

Subprocess cases ship their plan through the ``REPRO_FAULTS`` environment
variable, exactly as ``bench_shard --inject`` does.
"""

import hashlib
import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.decomposition.sharded import sharded_dpar2
from repro.decomposition.streaming import StreamingDpar2
from repro.parallel.sharding import ProcessShardRunner, ShardWorkerError
from repro.serve.store import FactorStore
from repro.tensor.irregular import IrregularTensor
from repro.tensor.mmap_store import MmapSliceStore
from repro.util import faults
from repro.util.config import DecompositionConfig
from repro.util.faults import FaultInjected, FaultPlan, FaultSpec

# --------------------------------------------------------------------- #
# harness semantics
# --------------------------------------------------------------------- #


class TestFaultPlan:
    def test_spec_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="x", kind="meltdown")

    def test_json_round_trip(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(site="shard.call.*", kind="crash", shard=1, at=(2, 5)),
                FaultSpec(
                    site="serve.dispatch", kind="slow",
                    at=(), probability=0.5, generations=None, seconds=0.01,
                ),
            ),
            seed=42,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_wildcard_shard_and_generation_matching(self):
        spec = FaultSpec(site="shard.call.*", kind="crash", shard=1)
        assert spec.matches("shard.call.sweep_phase1", 1, 0)
        assert not spec.matches("shard.reply.sweep_phase1", 1, 0)
        assert not spec.matches("shard.call.sweep_phase1", 0, 0)
        # generations defaults to (0,): a respawned worker runs clean.
        assert not spec.matches("shard.call.sweep_phase1", 1, 1)
        every = FaultSpec(site="shard.call.*", kind="crash", generations=None)
        assert every.matches("shard.call.finalize", 3, 7)

    def test_occurrence_selection_is_counted_per_site(self):
        plan = FaultPlan(specs=(FaultSpec(site="s", kind="error", at=(2,)),))
        with faults.injected(plan):
            faults.check("s")  # occurrence 1: silent
            with pytest.raises(FaultInjected):
                faults.check("s")  # occurrence 2 fires
            faults.check("s")  # occurrence 3: silent again
            assert [f["occurrence"] for f in faults.fired()] == [2]

    def test_probability_firing_is_deterministic(self):
        plan = FaultPlan(
            specs=(FaultSpec(site="s", kind="error", at=(), probability=0.5),),
            seed=9,
        )

        def pattern():
            hits = []
            with faults.injected(plan):
                for _ in range(64):
                    try:
                        faults.check("s")
                        hits.append(0)
                    except FaultInjected:
                        hits.append(1)
            return hits

        first = pattern()
        assert first == pattern()
        assert 0 < sum(first) < 64  # actually probabilistic, not all-or-nothing

    def test_corrupt_bytes_deterministic_and_scoped(self):
        blob = bytes(range(256)) * 3
        plan = FaultPlan(specs=(FaultSpec(site="reply", kind="corrupt"),), seed=1)
        with faults.injected(plan):
            damaged = faults.corrupt_bytes("reply", blob)
        with faults.injected(plan):
            again = faults.corrupt_bytes("reply", blob)
        assert damaged != blob and damaged == again
        with faults.injected(plan):
            untouched = faults.corrupt_bytes("other-site", blob)
        assert untouched == blob
        assert faults.corrupt_bytes("reply", blob) == blob  # no active plan

    def test_injected_restores_previous_state(self):
        outer = FaultPlan(specs=(FaultSpec(site="a", kind="error"),))
        inner = FaultPlan(specs=(FaultSpec(site="b", kind="error"),))
        with faults.injected(outer):
            with faults.injected(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_check_is_noop_without_plan(self):
        faults.check("anything.at.all")  # must not raise


# --------------------------------------------------------------------- #
# process shard transport recovery
# --------------------------------------------------------------------- #


class _CounterShard:
    """Minimal stateful shard: recovery must restore ``total`` exactly."""

    def __init__(self, payload):
        self.base = payload["base"]
        self.total = float(payload["base"].sum())

    def startup(self):
        return self.total

    def accumulate(self, value):
        self.total += float(value) * float(self.base[0])
        return self.total

    def pid(self):
        return os.getpid()

    def die_noisily(self):
        os.write(2, b"shard-stderr-marker\n")
        os._exit(3)


def _make_counter(payload):
    return _CounterShard(payload)


def _counter_payloads():
    return [{"base": np.arange(1.0, 5.0) * (shard + 1)} for shard in range(2)]


def _run_accumulate_sequence(**runner_options):
    runner_options.setdefault("call_timeout", 30.0)
    runner_options.setdefault("heartbeat_interval", 0.05)
    with ProcessShardRunner(
        _make_counter, _counter_payloads(), **runner_options
    ) as runner:
        transcript = [runner.start()]
        for value in (1.5, -2.0, 3.25):
            transcript.append(runner.call("accumulate", value))
        return transcript, runner.fault_stats


class TestProcessRunnerRecovery:
    def test_no_fault_baseline_has_zero_restarts(self):
        _, stats = _run_accumulate_sequence()
        assert stats == {"worker_restarts": 0, "replayed_calls": 0, "events": []}

    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(site="shard.call.startup", kind="crash", shard=0),
            FaultSpec(site="shard.call.accumulate", kind="crash", shard=1, at=(2,)),
            FaultSpec(
                site="shard.call.accumulate", kind="hang",
                shard=0, at=(3,), seconds=60.0,
            ),
            FaultSpec(site="shard.reply.accumulate", kind="corrupt", shard=1, at=(1,)),
        ],
        ids=["crash-startup", "crash-midcall", "hang", "corrupt-reply"],
    )
    def test_recovery_is_bitwise_identical(self, spec):
        baseline, _ = _run_accumulate_sequence()
        timeout = 1.0 if spec.kind == "hang" else 30.0
        with faults.injected(FaultPlan(specs=(spec,))):
            injected, stats = _run_accumulate_sequence(call_timeout=timeout)
        assert injected == baseline
        assert stats["worker_restarts"] == 1
        assert len(stats["events"]) == 1
        event = stats["events"][0]
        expected_kind = {"crash": "died", "corrupt": "corrupt"}.get(
            spec.kind, spec.kind
        )
        assert event["kind"] == expected_kind
        assert event["shard"] == spec.shard

    def test_replay_restores_worker_state(self):
        # Crash on the *third* accumulate: the respawned worker must replay
        # the first two to rebuild its running total before re-running it.
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="shard.call.accumulate", kind="crash", shard=0, at=(3,)
                ),
            )
        )
        baseline, _ = _run_accumulate_sequence()
        with faults.injected(plan):
            injected, stats = _run_accumulate_sequence()
        assert injected == baseline
        # startup + 2 completed accumulates replayed (startup not counted).
        assert stats["replayed_calls"] == 2

    def test_deterministic_error_raises_without_respawn(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="shard.call.accumulate", kind="error", shard=1, at=(1,)
                ),
            )
        )
        with faults.injected(plan):
            with ProcessShardRunner(
                _make_counter, _counter_payloads(), heartbeat_interval=0.05
            ) as runner:
                runner.start()
                with pytest.raises(ShardWorkerError) as excinfo:
                    runner.call("accumulate", 1.0)
                assert excinfo.value.kind == "error"
                assert excinfo.value.shard == 1
                assert excinfo.value.call == "accumulate"
                assert "FaultInjected" in str(excinfo.value)
                assert runner.fault_stats["worker_restarts"] == 0

    def test_respawn_budget_exhaustion(self):
        # generations=None: the crash re-fires in every respawned worker,
        # so the budget must run out and surface a typed error.
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="shard.call.accumulate", kind="crash",
                    shard=0, generations=None,
                ),
            )
        )
        with faults.injected(plan):
            with ProcessShardRunner(
                _make_counter, _counter_payloads(),
                heartbeat_interval=0.05, max_respawns=2,
            ) as runner:
                runner.start()
                with pytest.raises(ShardWorkerError) as excinfo:
                    runner.call("accumulate", 1.0)
        assert excinfo.value.kind == "died"
        assert "respawn budget exhausted" in str(excinfo.value)

    def test_worker_stderr_attached_to_error(self):
        with ProcessShardRunner(
            _make_counter, _counter_payloads(),
            heartbeat_interval=0.05, max_respawns=1,
        ) as runner:
            runner.start()
            with pytest.raises(ShardWorkerError) as excinfo:
                runner.call("die_noisily")
        assert excinfo.value.kind == "died"
        assert "shard-stderr-marker" in excinfo.value.stderr

    def test_close_reaps_workers(self):
        runner = ProcessShardRunner(
            _make_counter, _counter_payloads(), heartbeat_interval=0.05
        )
        runner.start()
        pids = runner.call("pid")
        runner.close()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        runner.close()  # idempotent


# --------------------------------------------------------------------- #
# sharded DPar2 under injected faults
# --------------------------------------------------------------------- #


def _factor_digest(result) -> str:
    digest = hashlib.sha256()
    for Qk in result.Q:
        digest.update(np.ascontiguousarray(Qk).tobytes())
    for factor in (result.H, result.S, result.V):
        digest.update(np.ascontiguousarray(factor).tobytes())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def small_tensor():
    rng = np.random.default_rng(3)
    return IrregularTensor(
        [rng.standard_normal((n, 12)) for n in (14, 9, 20, 11, 16, 7)]
    )


def _sharded_config():
    return DecompositionConfig(
        rank=3, max_iterations=3, random_state=11,
        shards=2, shard_backend="process", shard_cells=4,
    )


class TestShardedDpar2UnderFaults:
    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(site="shard.call.startup", kind="crash", shard=1),
            FaultSpec(site="shard.call.sweep_phase1", kind="crash", shard=0, at=(2,)),
            FaultSpec(site="shard.call.sweep_phase3", kind="crash", shard=1, at=(1,)),
            FaultSpec(site="shard.call.finalize", kind="crash", shard=0),
            FaultSpec(site="shard.reply.sweep_phase2", kind="corrupt", shard=1),
        ],
        ids=[
            "crash-startup", "crash-sweep1", "crash-sweep3",
            "crash-finalize", "corrupt-reply",
        ],
    )
    def test_bitwise_identical_after_recovery(self, small_tensor, spec):
        baseline = sharded_dpar2(small_tensor, _sharded_config())
        with faults.injected(FaultPlan(specs=(spec,))):
            recovered = sharded_dpar2(small_tensor, _sharded_config())
        assert _factor_digest(recovered) == _factor_digest(baseline)
        sharding = recovered.stats["sharding"]
        assert sharding["worker_restarts"] == 1
        assert len(sharding["faults"]["events"]) == 1
        assert baseline.stats["sharding"]["worker_restarts"] == 0

    def test_recovery_does_not_inflate_allreduce_accounting(self, small_tensor):
        baseline = sharded_dpar2(small_tensor, _sharded_config())
        spec = FaultSpec(site="shard.call.sweep_phase2", kind="crash", shard=0, at=(2,))
        with faults.injected(FaultPlan(specs=(spec,))):
            recovered = sharded_dpar2(small_tensor, _sharded_config())
        assert (
            recovered.stats["sharding"]["allreduce_bytes_per_sweep_per_shard"]
            == baseline.stats["sharding"]["allreduce_bytes_per_sweep_per_shard"]
        )
        assert recovered.stats["sharding"]["faults"]["replayed_calls"] > 0


# --------------------------------------------------------------------- #
# durable stores: writers killed mid-publish / mid-append
# --------------------------------------------------------------------- #


def _run_killed_subprocess(script: str, plan: FaultPlan, *argv: str):
    """Run ``script`` with ``plan`` in REPRO_FAULTS; assert it was SIGKILLed."""
    env = dict(os.environ)
    env["REPRO_FAULTS"] = plan.to_json()
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    proc = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(script), *argv],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"expected SIGKILL, got {proc.returncode}\n"
        f"stdout: {proc.stdout}\nstderr: {proc.stderr}"
    )


_PUBLISH_SCRIPT = """
import sys
import numpy as np
from repro.decomposition.dpar2 import dpar2
from repro.serve.store import FactorStore
from repro.tensor.irregular import IrregularTensor
from repro.util.config import DecompositionConfig

rng = np.random.default_rng(5)
tensor = IrregularTensor([rng.standard_normal((n, 6)) for n in (8, 10, 7)])
result = dpar2(tensor, DecompositionConfig(rank=2, max_iterations=2, random_state=5))
FactorStore(sys.argv[1]).publish(result)
print("published")  # unreachable under the injected crash
"""


class TestStoreCrashSafety:
    @pytest.fixture()
    def seeded_registry(self, tmp_path):
        rng = np.random.default_rng(5)
        tensor = IrregularTensor([rng.standard_normal((n, 6)) for n in (8, 10, 7)])
        from repro.decomposition.dpar2 import dpar2

        result = dpar2(
            tensor, DecompositionConfig(rank=2, max_iterations=2, random_state=5)
        )
        store = FactorStore(tmp_path / "registry")
        store.publish(result)
        return store

    def test_publisher_killed_before_rename_leaves_v1_live(self, seeded_registry):
        plan = FaultPlan(specs=(FaultSpec(site="store.publish.staged", kind="crash"),))
        _run_killed_subprocess(_PUBLISH_SCRIPT, plan, str(seeded_registry.root))
        reopened = FactorStore(seeded_registry.root)
        assert reopened.versions() == [1]
        assert reopened.latest_version() == 1
        assert reopened.latest().result.rank == 2  # previous version loads fine

    def test_publisher_killed_before_pointer_flip_keeps_v1_live(
        self, seeded_registry
    ):
        plan = FaultPlan(specs=(FaultSpec(site="store.publish.renamed", kind="crash"),))
        _run_killed_subprocess(_PUBLISH_SCRIPT, plan, str(seeded_registry.root))
        reopened = FactorStore(seeded_registry.root)
        # The rename completed, so v2 exists, is complete, and is pinnable
        # — but the pointer flip is the commit point, and it never ran:
        # readers keep serving v1.
        assert reopened.versions() == [1, 2]
        assert reopened.latest_version() == 1
        assert reopened.latest().result.rank == 2
        assert reopened.get(2).result.rank == 2

    @pytest.mark.parametrize(
        "site", ["mmap_store.append.data", "mmap_store.append.manifest"]
    )
    def test_mmap_writer_killed_mid_append(self, tmp_path, site):
        rng = np.random.default_rng(7)
        store_dir = tmp_path / "slices"
        MmapSliceStore.create(store_dir, [rng.random((5, 4)), rng.random((6, 4))])
        before = MmapSliceStore.open(store_dir)
        baseline = [before.load_slice(k, mmap=False) for k in range(2)]

        plan = FaultPlan(specs=(FaultSpec(site=site, kind="crash"),))
        script = """
        import sys
        import numpy as np
        from repro.tensor.mmap_store import MmapSliceStore

        store = MmapSliceStore.open(sys.argv[1])
        store.append(np.random.default_rng(8).random((7, 4)))
        print("appended")  # unreachable under the injected crash
        """
        _run_killed_subprocess(script, plan, str(store_dir))

        reopened = MmapSliceStore.open(store_dir)  # manifest still consistent
        assert len(reopened) == 2
        for k, expected in enumerate(baseline):
            np.testing.assert_array_equal(
                reopened.load_slice(k, mmap=False), expected
            )


# --------------------------------------------------------------------- #
# streaming: checkpoint / resume
# --------------------------------------------------------------------- #


def _stream_slices(count: int):
    rng = np.random.default_rng(13)
    return [rng.standard_normal((10 + (k % 3), 8)) for k in range(count)]


def _stream_config():
    return DecompositionConfig(rank=3, max_iterations=4, random_state=2)


class TestStreamingCheckpointResume:
    def test_resume_is_bitwise_identical(self, tmp_path):
        slices = _stream_slices(10)

        plain = StreamingDpar2(
            _stream_config(),
            checkpoint_dir=tmp_path / "a", checkpoint_every=3,
        )
        plain.absorb_many(slices)
        expected = _factor_digest(plain.result())

        interrupted = StreamingDpar2(
            _stream_config(),
            checkpoint_dir=tmp_path / "b", checkpoint_every=3,
        )
        interrupted.absorb_many(slices[:6])
        del interrupted  # "crash": all in-memory state is lost

        resumed = StreamingDpar2.resume_from(tmp_path / "b")
        assert resumed.n_slices == 6
        assert resumed.stats["checkpoint_resumes"] == 1
        resumed.absorb_many(slices[6:])
        assert _factor_digest(resumed.result()) == expected

    def test_sigkill_mid_absorb_resumes_bitwise(self, tmp_path):
        slices = _stream_slices(8)
        baseline = StreamingDpar2(
            _stream_config(),
            checkpoint_dir=tmp_path / "base", checkpoint_every=2,
        )
        baseline.absorb_many(slices)
        expected = _factor_digest(baseline.result())

        # The worker is SIGKILLed entering its third absorb chunk, i.e.
        # after 4 slices and 2 durable checkpoints.
        plan = FaultPlan(
            specs=(FaultSpec(site="streaming.absorb", kind="crash", at=(3,)),)
        )
        script = """
        import sys
        import numpy as np
        from repro.decomposition.streaming import StreamingDpar2
        from repro.util.config import DecompositionConfig

        rng = np.random.default_rng(13)
        slices = [rng.standard_normal((10 + (k % 3), 8)) for k in range(8)]
        stream = StreamingDpar2(
            DecompositionConfig(rank=3, max_iterations=4, random_state=2),
            checkpoint_dir=sys.argv[1], checkpoint_every=2,
        )
        stream.absorb_many(slices)
        print("absorbed")  # unreachable under the injected crash
        """
        ckpt_dir = tmp_path / "crashed"
        _run_killed_subprocess(script, plan, str(ckpt_dir))

        resumed = StreamingDpar2.resume_from(ckpt_dir)
        assert resumed.n_slices == 4
        resumed.absorb_many(slices[resumed.n_slices:])
        assert _factor_digest(resumed.result()) == expected

    def test_checkpoints_pruned_and_counted(self, tmp_path):
        stream = StreamingDpar2(
            _stream_config(),
            checkpoint_dir=tmp_path, checkpoint_every=2, keep_checkpoints=2,
        )
        stream.absorb_many(_stream_slices(8))
        assert stream.stats["checkpoints_written"] == 4
        kept = sorted(p.name for p in tmp_path.iterdir() if p.name.startswith("ckpt-"))
        assert len(kept) == 2
        pointer = (tmp_path / "LATEST").read_text().strip()
        assert f"ckpt-{int(pointer):07d}" == kept[-1]

    def test_stats_flow_into_result_and_publish_meta(self, tmp_path):
        stream = StreamingDpar2(
            _stream_config(), checkpoint_dir=tmp_path / "ck", checkpoint_every=2
        )
        stream.absorb_many(_stream_slices(4))
        stats = stream.result().stats["streaming"]
        assert stats["checkpoints_written"] == 2
        assert stats["checkpoint_resumes"] == 0
        store = FactorStore(tmp_path / "registry")
        version = stream.publish_to(store)
        meta = store.get(version).meta
        assert meta["checkpoint_resumes"] == 0
        assert meta["worker_restarts"] == 0


# --------------------------------------------------------------------- #
# env bootstrap
# --------------------------------------------------------------------- #


class TestEnvBootstrap:
    def test_plan_activates_from_environment(self, tmp_path):
        plan = FaultPlan(specs=(FaultSpec(site="boot.site", kind="error"),), seed=3)
        env = dict(os.environ)
        env["REPRO_FAULTS"] = plan.to_json()
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        script = (
            "from repro.util import faults\n"
            "plan = faults.active_plan()\n"
            "assert plan is not None and plan.seed == 3, plan\n"
            "try:\n"
            "    faults.check('boot.site')\n"
            "except faults.FaultInjected:\n"
            "    print('fired')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "fired"

    def test_garbage_env_is_ignored(self):
        env = dict(os.environ)
        env["REPRO_FAULTS"] = "{not json"
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        proc = subprocess.run(
            [
                sys.executable, "-c",
                "from repro.util import faults; "
                "assert faults.active_plan() is None; print('clean')",
            ],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "clean"


def test_plan_json_is_valid_json():
    plan = FaultPlan(specs=(FaultSpec(site="x", kind="crash"),), seed=4)
    payload = json.loads(plan.to_json())
    assert payload["seed"] == 4
    assert payload["specs"][0]["site"] == "x"
