"""Tests for mode-n unfolding/folding (Kolda & Bader convention)."""

import numpy as np
import pytest

from repro.tensor.matricization import fold, unfold


@pytest.fixture
def cube():
    # X[i, j, k] = 100*i + 10*j + k, shape (2, 3, 4): easy to verify indexing.
    I, J, K = 2, 3, 4
    X = np.zeros((I, J, K))
    for i in range(I):
        for j in range(J):
            for k in range(K):
                X[i, j, k] = 100 * i + 10 * j + k
    return X


class TestUnfoldShapes:
    def test_mode_1(self, cube):
        assert unfold(cube, 1).shape == (2, 12)

    def test_mode_2(self, cube):
        assert unfold(cube, 2).shape == (3, 8)

    def test_mode_3(self, cube):
        assert unfold(cube, 3).shape == (4, 6)


class TestKoldaConvention:
    """Column index must advance the *lower* mode fastest."""

    def test_mode_1_ordering(self, cube):
        M = unfold(cube, 1)
        # column j + J*k holds X[:, j, k]
        for j in range(3):
            for k in range(4):
                np.testing.assert_array_equal(M[:, j + 3 * k], cube[:, j, k])

    def test_mode_2_ordering(self, cube):
        M = unfold(cube, 2)
        for i in range(2):
            for k in range(4):
                np.testing.assert_array_equal(M[:, i + 2 * k], cube[i, :, k])

    def test_mode_3_ordering(self, cube):
        M = unfold(cube, 3)
        for i in range(2):
            for j in range(3):
                np.testing.assert_array_equal(M[:, i + 2 * j], cube[i, j, :])


class TestFold:
    @pytest.mark.parametrize("mode", [1, 2, 3])
    def test_roundtrip(self, cube, mode):
        M = unfold(cube, mode)
        np.testing.assert_array_equal(fold(M, mode, cube.shape), cube)

    def test_wrong_shape_rejected(self, cube):
        M = unfold(cube, 1)
        with pytest.raises(ValueError, match="inconsistent"):
            fold(M, 2, cube.shape)

    def test_vector_rejected(self):
        with pytest.raises(ValueError, match="matrix"):
            fold(np.ones(6), 1, (1, 2, 3))


class TestValidation:
    def test_bad_mode_rejected(self, cube):
        with pytest.raises(ValueError, match="mode"):
            unfold(cube, 0)
        with pytest.raises(ValueError, match="mode"):
            unfold(cube, 4)

    def test_matrix_input_rejected(self):
        with pytest.raises(ValueError, match="3-order"):
            unfold(np.ones((3, 3)), 1)
