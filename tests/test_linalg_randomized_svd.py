"""Tests for the randomized SVD (Algorithm 1)."""

import numpy as np
import pytest

from repro.linalg.randomized_svd import randomized_svd
from tests.conftest import assert_orthonormal_columns


def low_rank_matrix(rows, cols, rank, rng, noise=0.0):
    base = rng.standard_normal((rows, rank)) @ rng.standard_normal((rank, cols))
    if noise:
        base = base + noise * rng.standard_normal((rows, cols))
    return base


class TestShapes:
    def test_factor_shapes(self, rng):
        A = rng.standard_normal((30, 20))
        out = randomized_svd(A, 5, random_state=rng)
        assert out.U.shape == (30, 5)
        assert out.singular_values.shape == (5,)
        assert out.V.shape == (20, 5)
        assert out.rank == 5

    def test_rank_capped_by_dimensions(self, rng):
        A = rng.standard_normal((6, 4))
        out = randomized_svd(A, 10, random_state=rng)
        assert out.rank == 4

    def test_wide_matrix(self, rng):
        A = rng.standard_normal((10, 50))
        out = randomized_svd(A, 3, random_state=rng)
        assert out.U.shape == (10, 3)
        assert out.V.shape == (50, 3)


class TestOrthogonality:
    def test_U_orthonormal(self, rng):
        out = randomized_svd(rng.standard_normal((40, 25)), 6, random_state=rng)
        assert_orthonormal_columns(out.U)

    def test_V_orthonormal(self, rng):
        out = randomized_svd(rng.standard_normal((40, 25)), 6, random_state=rng)
        assert_orthonormal_columns(out.V)

    def test_singular_values_sorted_nonnegative(self, rng):
        out = randomized_svd(rng.standard_normal((40, 25)), 8, random_state=rng)
        sv = out.singular_values
        assert np.all(sv >= 0)
        assert np.all(np.diff(sv) <= 1e-12)


class TestAccuracy:
    def test_exact_on_low_rank_input(self, rng):
        A = low_rank_matrix(50, 30, 4, rng)
        out = randomized_svd(A, 4, random_state=rng)
        np.testing.assert_allclose(out.reconstruct(), A, atol=1e-8)

    def test_close_to_exact_svd_on_noisy_input(self, rng):
        A = low_rank_matrix(60, 40, 5, rng, noise=0.01)
        approx = randomized_svd(A, 5, power_iterations=2, random_state=rng)
        exact_error = np.linalg.norm(A - _best_rank(A, 5))
        rand_error = np.linalg.norm(A - approx.reconstruct())
        assert rand_error <= 1.1 * exact_error + 1e-9

    def test_power_iterations_help_on_flat_spectrum(self, rng):
        U = np.linalg.qr(rng.standard_normal((80, 80)))[0]
        V = np.linalg.qr(rng.standard_normal((60, 60)))[0]
        sv = np.concatenate([np.ones(10) * 10, np.ones(50) * 8])
        A = U[:, :60] @ np.diag(sv) @ V.T
        err0 = np.linalg.norm(
            A - randomized_svd(A, 10, power_iterations=0, random_state=0).reconstruct()
        )
        err3 = np.linalg.norm(
            A - randomized_svd(A, 10, power_iterations=3, random_state=0).reconstruct()
        )
        assert err3 <= err0 + 1e-9

    def test_oversampling_helps(self, rng):
        A = low_rank_matrix(60, 40, 15, rng, noise=0.05)
        err_none = np.linalg.norm(
            A - randomized_svd(A, 8, oversampling=0, power_iterations=0,
                               random_state=3).reconstruct()
        )
        err_big = np.linalg.norm(
            A - randomized_svd(A, 8, oversampling=20, power_iterations=0,
                               random_state=3).reconstruct()
        )
        assert err_big <= err_none + 1e-9


class TestDeterminism:
    def test_same_seed_same_result(self, rng):
        A = rng.standard_normal((25, 18))
        a = randomized_svd(A, 5, random_state=11)
        b = randomized_svd(A, 5, random_state=11)
        np.testing.assert_array_equal(a.U, b.U)
        np.testing.assert_array_equal(a.singular_values, b.singular_values)


class TestValidation:
    def test_rejects_vector(self, rng):
        with pytest.raises(ValueError, match="2-D"):
            randomized_svd(np.ones(5), 2)

    def test_rejects_zero_rank(self, rng):
        with pytest.raises(ValueError, match="positive"):
            randomized_svd(np.ones((4, 4)), 0)

    def test_rejects_negative_oversampling(self, rng):
        with pytest.raises(ValueError, match="oversampling"):
            randomized_svd(np.ones((4, 4)), 2, oversampling=-1)

    def test_rejects_negative_power_iterations(self, rng):
        with pytest.raises(ValueError, match="power_iterations"):
            randomized_svd(np.ones((4, 4)), 2, power_iterations=-1)

    def test_rejects_nan(self):
        bad = np.ones((4, 4))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            randomized_svd(bad, 2)


class TestResultContainer:
    def test_sigma_matrix_is_diagonal(self, rng):
        out = randomized_svd(rng.standard_normal((10, 8)), 3, random_state=rng)
        sigma = out.sigma_matrix()
        np.testing.assert_array_equal(sigma, np.diag(out.singular_values))

    def test_reconstruct_shape(self, rng):
        out = randomized_svd(rng.standard_normal((10, 8)), 3, random_state=rng)
        assert out.reconstruct().shape == (10, 8)


def _best_rank(A, rank):
    U, s, Vt = np.linalg.svd(A, full_matrices=False)
    return (U[:, :rank] * s[:rank]) @ Vt[:rank]
