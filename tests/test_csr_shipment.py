"""CSR slices ship to process workers as component buffers, not pickles."""

import numpy as np
import pytest

from repro.decomposition.dpar2 import compress_tensor
from repro.parallel.shm import (
    ArrayShipment,
    AttachedArrays,
    CsrRef,
    MmapArrayRef,
    ShmArrayRef,
)
from repro.sparse.csr import CsrMatrix
from repro.tensor.mmap_store import MmapSliceStore
from repro.tensor.random import low_rank_irregular_tensor


@pytest.fixture
def csr(rng):
    from repro.sparse.coo import CooMatrix

    dense = rng.random((6, 8))
    dense[dense < 0.7] = 0.0
    return CooMatrix.from_dense(dense).to_csr()


class TestPackResolve:
    def test_in_ram_csr_ships_as_shared_memory(self, csr):
        with ArrayShipment() as shipment:
            packed = shipment.pack((csr, "tag"))
            ref = packed[0]
            assert isinstance(ref, CsrRef)
            # The bulk components travel as segment refs — no CsrMatrix
            # object (and no ndarray payload) left in the pickled structure.
            assert isinstance(ref.data, ShmArrayRef)
            assert isinstance(ref.indices, ShmArrayRef)
            assert isinstance(ref.indptr, ShmArrayRef)

            holder = AttachedArrays()
            try:
                resolved, tag = holder.resolve(packed)
                assert tag == "tag"
                assert isinstance(resolved, CsrMatrix)
                assert resolved.shape == csr.shape
                np.testing.assert_array_equal(resolved.indptr, csr.indptr)
                np.testing.assert_array_equal(resolved.indices, csr.indices)
                np.testing.assert_array_equal(resolved.data, csr.data)
                np.testing.assert_array_equal(resolved.to_dense(), csr.to_dense())
            finally:
                holder.release()

    def test_store_backed_data_ships_as_path_descriptor(self, csr, tmp_path):
        """Memmap-backed CSR components never transit the parent at all."""
        store = MmapSliceStore.create(tmp_path / "sp", [csr])
        mapped = store.load_slice(0)
        assert isinstance(mapped.data, np.memmap)
        with ArrayShipment() as shipment:
            ref = shipment.pack(mapped)
            assert isinstance(ref, CsrRef)
            assert isinstance(ref.data, MmapArrayRef)
            holder = AttachedArrays()
            try:
                resolved = holder.resolve(ref)
                np.testing.assert_array_equal(resolved.to_dense(), csr.to_dense())
            finally:
                holder.release()

    def test_result_views_are_copied_before_release(self, csr):
        """A worker result aliasing a segment must be deep-copied before the
        segment unmaps — including CSR results."""
        with ArrayShipment() as shipment:
            packed = shipment.pack(csr)
            holder = AttachedArrays()
            resolved = holder.resolve(packed)
            safe = holder.copy_if_shared(resolved)
            holder.release()
        # The original views are dead; the copy must still be readable.
        np.testing.assert_array_equal(safe.to_dense(), csr.to_dense())


class TestProcessBackendSparse:
    def test_per_slice_process_compression_matches_serial(self):
        """The per-slice stage-1 path (the one that actually ships slices to
        workers) gives identical factors whether CSR slices travel through
        shared memory or never leave the parent."""
        tensor = low_rank_irregular_tensor(
            [18, 26, 18, 22], n_columns=12, rank=3, noise=0.02, random_state=7
        ).sparsify(1.0)  # force every slice to CSR
        assert tensor.has_sparse_slices
        reference = compress_tensor(
            tensor, 3, random_state=5, backend="serial",
            stage1_batching="per-slice",
        )
        shipped = compress_tensor(
            tensor, 3, random_state=5, backend="process", n_threads=2,
            stage1_batching="per-slice",
        )
        for Ak, Bk in zip(reference.A, shipped.A):
            assert np.array_equal(Ak, Bk)
        assert np.array_equal(reference.D, shipped.D)
        assert np.array_equal(reference.F_blocks, shipped.F_blocks)
