"""Documentation gates: intra-repo links and serve-API docstrings.

CI runs ``tools/check_docs_links.py`` directly (docs job) and ruff's
pydocstyle ``D1`` codes over ``src/repro/serve/`` (lint job).  These
tests keep both gates enforceable from the tier-1 suite alone, so a
container without ruff still catches a missing docstring or a broken
link before it reaches CI.
"""

from __future__ import annotations

import inspect
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs_links  # noqa: E402

DOCS = ["docs/architecture.md", "docs/serving.md", "docs/benchmarks.md"]


class TestDocsTree:
    def test_docs_files_exist(self):
        for rel in DOCS:
            path = REPO_ROOT / rel
            assert path.is_file(), f"missing {rel}"
            assert path.stat().st_size > 1000, f"{rel} is a stub"

    def test_readme_links_every_docs_page(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for rel in DOCS:
            assert f"({rel})" in readme, f"README does not link {rel}"

    def test_no_broken_intra_repo_links(self):
        problems = []
        for path in check_docs_links.default_files():
            problems.extend(check_docs_links.check_file(path))
        assert not problems, "\n".join(problems)

    def test_link_checker_flags_a_broken_link(self, tmp_path):
        bad = tmp_path / "bad.md"
        bad.write_text("see [gone](no/such/file.md)\n", encoding="utf-8")
        # tmp_path is outside the repo, so fake an in-repo location.
        doc = REPO_ROOT / "docs" / "_linkcheck_selftest.md"
        doc.write_text(bad.read_text(encoding="utf-8"), encoding="utf-8")
        try:
            problems = check_docs_links.check_file(doc)
        finally:
            doc.unlink()
        assert len(problems) == 1 and "no/such/file.md" in problems[0]


def _defined_in_source(func) -> bool:
    """True for functions ruff would see (dataclass-generated ones have no source)."""
    try:
        inspect.getsource(func)
    except (OSError, TypeError):
        return False
    return True


def _public_members(cls) -> list[tuple[str, object]]:
    members = []
    for name, member in vars(cls).items():
        if name.startswith("_") and name not in ("__len__", "__repr__", "__iter__"):
            continue
        if isinstance(member, (staticmethod, classmethod)):
            member = member.__func__
        if isinstance(member, property):
            members.append((f"{cls.__name__}.{name}", member))
        elif inspect.isfunction(member) and _defined_in_source(member):
            members.append((f"{cls.__name__}.{name}", member))
    return members


class TestServeDocstrings:
    """Fallback for the ruff ``D1`` gate: docstring *presence* on the
    public serve API, checkable without ruff installed."""

    def test_public_serve_api_is_documented(self):
        import repro.serve as serve

        assert serve.__doc__ and len(serve.__doc__) > 40
        undocumented = []
        for name in serve.__all__:
            obj = getattr(serve, name)
            if not (getattr(obj, "__doc__", None) or "").strip():
                undocumented.append(name)
            if inspect.isclass(obj):
                for qualname, member in _public_members(obj):
                    if isinstance(member, property):
                        doc = member.fget.__doc__ if member.fget else None
                    else:
                        doc = member.__doc__
                    if not (doc or "").strip():
                        undocumented.append(qualname)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_serve_modules_have_docstrings(self):
        from repro.serve import queries, service, store

        for module in (queries, service, store):
            assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_cli_serve_commands_have_help(self):
        from repro import cli

        parser = cli.build_parser()
        sub = next(
            a for a in parser._actions
            if a.__class__.__name__ == "_SubParsersAction"
        )
        for command in ("publish", "serve", "query"):
            assert command in sub.choices, f"missing CLI subcommand {command}"
            assert sub.choices[command].description or sub.choices[command].format_help()
