"""Tests for the discovery pipeline: correlation, similarity, kNN, RWR."""

import numpy as np
import pytest

from repro.analysis.correlation import (
    correlation_matrix,
    feature_correlation,
    model_feature_correlation,
    pearson_correlation,
)
from repro.analysis.knn import top_k_neighbors
from repro.analysis.rwr import (
    random_walk_with_restart,
    row_normalize,
    rwr_ranking,
)
from repro.analysis.similarity import (
    similarity_graph,
    similarity_matrix,
    slice_similarity,
)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_input_is_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_matches_numpy(self, rng):
        x = rng.standard_normal(50)
        y = rng.standard_normal(50)
        assert pearson_correlation(x, y) == pytest.approx(
            np.corrcoef(x, y)[0, 1]
        )

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(ValueError, match="two samples"):
            pearson_correlation([1], [2])


class TestCorrelationMatrix:
    def test_unit_diagonal_symmetric(self, rng):
        C = correlation_matrix(rng.standard_normal((5, 20)))
        np.testing.assert_allclose(np.diag(C), 1.0)
        np.testing.assert_allclose(C, C.T)

    def test_bounds(self, rng):
        C = correlation_matrix(rng.standard_normal((6, 10)))
        assert np.all(C >= -1.0) and np.all(C <= 1.0)

    def test_feature_selection(self, rng):
        V = rng.standard_normal((8, 5))
        full = feature_correlation(V)
        sub = feature_correlation(V, [1, 3])
        assert sub.shape == (2, 2)
        assert sub[0, 1] == pytest.approx(full[1, 3])

    def test_bad_index(self, rng):
        with pytest.raises(IndexError, match="out of range"):
            feature_correlation(rng.standard_normal((4, 3)), [9])


class TestModelFeatureCorrelation:
    def test_matches_reconstruction_gram(self, rng):
        """Correlation must equal that of the stacked reconstructed slices
        (up to the per-slice Qk, which cancels)."""
        from repro.linalg.qr import random_orthonormal

        R, J, K = 3, 6, 4
        H = rng.standard_normal((R, R))
        V = rng.standard_normal((J, R))
        S = np.abs(rng.standard_normal((K, R))) + 0.2
        slices = []
        for k in range(K):
            Qk = random_orthonormal(10, R, rng)
            slices.append(Qk @ (H * S[k]) @ V.T)
        stacked = np.concatenate(slices, axis=0)
        gram = stacked.T @ stacked
        d = np.sqrt(np.diag(gram))
        expected = gram / np.outer(d, d)
        got = model_feature_correlation(V, H, S)
        np.testing.assert_allclose(got, expected, atol=1e-8)

    def test_unit_diagonal(self, rng):
        C = model_feature_correlation(
            rng.standard_normal((5, 3)),
            rng.standard_normal((3, 3)),
            np.abs(rng.standard_normal((4, 3))),
        )
        np.testing.assert_allclose(np.diag(C), 1.0, atol=1e-10)

    def test_selection(self, rng):
        V = rng.standard_normal((6, 3))
        H = rng.standard_normal((3, 3))
        S = np.ones((2, 3))
        full = model_feature_correlation(V, H, S)
        sub = model_feature_correlation(V, H, S, [0, 5])
        assert sub[0, 1] == pytest.approx(full[0, 5])

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="inconsistent"):
            model_feature_correlation(
                rng.standard_normal((5, 3)),
                rng.standard_normal((2, 2)),
                np.ones((4, 3)),
            )


class TestSliceSimilarity:
    def test_identical_slices_similarity_one(self, rng):
        U = rng.standard_normal((10, 3))
        assert slice_similarity(U, U) == pytest.approx(1.0)

    def test_decreasing_in_distance(self, rng):
        U = rng.standard_normal((10, 3))
        near = U + 0.01
        far = U + 10.0
        assert slice_similarity(U, near) > slice_similarity(U, far)

    def test_gamma_sharpens(self, rng):
        U = rng.standard_normal((10, 3))
        other = U + 0.5
        assert slice_similarity(U, other, gamma=1.0) < slice_similarity(
            U, other, gamma=0.001
        )

    def test_range(self, rng):
        a = rng.standard_normal((8, 2))
        b = rng.standard_normal((8, 2))
        s = slice_similarity(a, b)
        assert 0.0 < s <= 1.0

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="shapes differ"):
            slice_similarity(rng.standard_normal((5, 2)),
                             rng.standard_normal((6, 2)))

    def test_bad_gamma(self, rng):
        U = rng.standard_normal((5, 2))
        with pytest.raises(ValueError, match="gamma"):
            slice_similarity(U, U, gamma=0.0)


class TestSimilarityMatrices:
    def test_matrix_symmetric_unit_diagonal(self, rng):
        factors = [rng.standard_normal((6, 2)) for _ in range(4)]
        S = similarity_matrix(factors)
        np.testing.assert_allclose(S, S.T)
        np.testing.assert_allclose(np.diag(S), 1.0)

    def test_graph_zero_diagonal(self, rng):
        factors = [rng.standard_normal((6, 2)) for _ in range(4)]
        A = similarity_graph(factors)
        np.testing.assert_array_equal(np.diag(A), 0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            similarity_matrix([])


class TestKnn:
    @pytest.fixture
    def sims(self):
        return np.array([
            [1.0, 0.9, 0.2, 0.5],
            [0.9, 1.0, 0.3, 0.1],
            [0.2, 0.3, 1.0, 0.8],
            [0.5, 0.1, 0.8, 1.0],
        ])

    def test_order(self, sims):
        out = top_k_neighbors(sims, 0, k=3)
        assert [i for i, _ in out] == [1, 3, 2]

    def test_excludes_query(self, sims):
        out = top_k_neighbors(sims, 2, k=3)
        assert 2 not in [i for i, _ in out]

    def test_k_clipped(self, sims):
        assert len(top_k_neighbors(sims, 0, k=100)) == 3

    def test_scores_returned(self, sims):
        out = top_k_neighbors(sims, 0, k=1)
        assert out[0] == (1, 0.9)

    def test_tie_broken_by_index(self):
        S = np.ones((3, 3))
        out = top_k_neighbors(S, 0, k=2)
        assert [i for i, _ in out] == [1, 2]

    def test_query_out_of_range(self, sims):
        with pytest.raises(IndexError):
            top_k_neighbors(sims, 7)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError, match="square"):
            top_k_neighbors(np.ones((2, 3)), 0)

    def test_bad_k(self, sims):
        with pytest.raises(ValueError, match="k must be"):
            top_k_neighbors(sims, 0, k=0)


class TestRwr:
    def test_row_normalize_sums_to_one(self, rng):
        A = np.abs(rng.standard_normal((5, 5)))
        np.testing.assert_allclose(row_normalize(A).sum(axis=1), 1.0)

    def test_row_normalize_dangling_uniform(self):
        A = np.zeros((3, 3))
        A[0, 1] = 1.0
        out = row_normalize(A)
        np.testing.assert_allclose(out[1], 1.0 / 3.0)
        np.testing.assert_allclose(out[2], 1.0 / 3.0)

    def test_row_normalize_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            row_normalize(np.array([[-1.0, 0.0], [0.0, 0.0]]))

    def test_scores_are_distribution(self, rng):
        A = np.abs(rng.standard_normal((6, 6)))
        np.fill_diagonal(A, 0.0)
        r = random_walk_with_restart(A, 0)
        assert np.all(r >= 0)
        assert r.sum() == pytest.approx(1.0, abs=1e-6)

    def test_query_has_high_score(self, rng):
        A = np.abs(rng.standard_normal((6, 6)))
        np.fill_diagonal(A, 0.0)
        r = random_walk_with_restart(A, 2, restart_probability=0.5)
        assert np.argmax(r) == 2

    def test_satisfies_fixed_point(self, rng):
        A = np.abs(rng.standard_normal((5, 5)))
        np.fill_diagonal(A, 0.0)
        c = 0.15
        r = random_walk_with_restart(A, 1, restart_probability=c,
                                     max_iterations=500, tolerance=1e-14)
        q = np.zeros(5)
        q[1] = 1.0
        fixed = (1 - c) * row_normalize(A).T @ r + c * q
        np.testing.assert_allclose(r, fixed, atol=1e-10)

    def test_two_cliques_prefer_own_clique(self):
        """RWR must rank same-clique nodes above the far clique."""
        n = 6
        A = np.zeros((n, n))
        for i in range(3):
            for j in range(3):
                if i != j:
                    A[i, j] = 1.0
                    A[i + 3, j + 3] = 1.0
        A[2, 3] = A[3, 2] = 0.05  # weak bridge
        ranking = rwr_ranking(A, 0, k=5)
        top_two = [i for i, _ in ranking[:2]]
        assert set(top_two) == {1, 2}

    def test_restart_probability_validated(self, rng):
        A = np.abs(rng.standard_normal((4, 4)))
        with pytest.raises(ValueError):
            random_walk_with_restart(A, 0, restart_probability=1.5)

    def test_query_out_of_range(self, rng):
        A = np.abs(rng.standard_normal((4, 4)))
        with pytest.raises(IndexError):
            random_walk_with_restart(A, 9)

    def test_ranking_excludes_query(self, rng):
        A = np.abs(rng.standard_normal((5, 5)))
        np.fill_diagonal(A, 0.0)
        out = rwr_ranking(A, 3, k=4)
        assert 3 not in [i for i, _ in out]
