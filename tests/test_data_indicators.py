"""Tests for the technical-indicator library."""

import numpy as np
import pytest

from repro.data import indicators as ind


@pytest.fixture
def ohlcv(rng):
    T = 120
    returns = 0.01 * rng.standard_normal(T)
    close = 100.0 * np.exp(np.cumsum(returns))
    spread = 0.01 * close * (1 + rng.random(T))
    high = close + spread * rng.random(T)
    low = close - spread * rng.random(T)
    open_ = low + (high - low) * rng.random(T)
    volume = rng.uniform(1e5, 1e6, T)
    return np.column_stack([open_, high, low, close, volume])


class TestMovingAverages:
    def test_sma_constant_series(self):
        np.testing.assert_allclose(ind.sma(np.full(20, 7.0), 5), 7.0)

    def test_sma_matches_naive(self, rng):
        x = rng.standard_normal(50)
        out = ind.sma(x, 7)
        for i in range(6, 50):
            assert out[i] == pytest.approx(x[i - 6 : i + 1].mean())

    def test_sma_warmup_is_expanding_mean(self, rng):
        x = rng.standard_normal(20)
        out = ind.sma(x, 10)
        assert out[0] == pytest.approx(x[0])
        assert out[3] == pytest.approx(x[:4].mean())

    def test_ema_constant_series(self):
        np.testing.assert_allclose(ind.ema(np.full(15, 3.0), 4), 3.0)

    def test_ema_recursion(self, rng):
        x = rng.standard_normal(10)
        out = ind.ema(x, 4)
        alpha = 2.0 / 5.0
        expected = x[0]
        for i in range(1, 10):
            expected = alpha * x[i] + (1 - alpha) * expected
            assert out[i] == pytest.approx(expected)

    def test_wma_weights_recent_more(self):
        # Rising series: WMA should exceed SMA because recent values weigh more.
        x = np.arange(30, dtype=float)
        assert ind.wma(x, 10)[-1] > ind.sma(x, 10)[-1]

    def test_wma_matches_naive(self, rng):
        x = rng.standard_normal(30)
        out = ind.wma(x, 5)
        w = np.arange(1, 6, dtype=float)
        w /= w.sum()
        for i in range(4, 30):
            assert out[i] == pytest.approx(float(x[i - 4 : i + 1] @ w))

    def test_window_one_is_identity(self, rng):
        x = rng.standard_normal(10)
        np.testing.assert_allclose(ind.sma(x, 1), x)
        np.testing.assert_allclose(ind.wma(x, 1), x)

    def test_window_larger_than_series_clipped(self, rng):
        x = rng.standard_normal(5)
        out = ind.sma(x, 50)
        assert out.shape == x.shape

    def test_invalid_window(self, rng):
        with pytest.raises(ValueError, match="window"):
            ind.sma(rng.standard_normal(5), 0)


class TestPaperIndicators:
    """OBV, ATR, MACD, STOCH — the four analyzed in Fig. 12."""

    def test_obv_accumulates_signed_volume(self):
        close = np.array([10.0, 11.0, 10.5, 10.5, 12.0])
        volume = np.array([100.0, 200.0, 300.0, 400.0, 500.0])
        out = ind.obv(close, volume)
        np.testing.assert_allclose(out, [0.0, 200.0, -100.0, -100.0, 400.0])

    def test_obv_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths"):
            ind.obv(np.ones(3), np.ones(4))

    def test_true_range_dominates_high_low(self, ohlcv):
        tr = ind.true_range(ohlcv[:, 1], ohlcv[:, 2], ohlcv[:, 3])
        assert np.all(tr >= ohlcv[:, 1] - ohlcv[:, 2] - 1e-12)

    def test_atr_positive(self, ohlcv):
        atr = ind.atr(ohlcv[:, 1], ohlcv[:, 2], ohlcv[:, 3])
        assert np.all(atr > 0)

    def test_atr_tracks_volatility_level(self, rng):
        quiet = ind.atr(
            np.full(50, 101.0), np.full(50, 99.0), np.full(50, 100.0)
        )
        wild = ind.atr(
            np.full(50, 110.0), np.full(50, 90.0), np.full(50, 100.0)
        )
        assert wild[-1] > quiet[-1]

    def test_macd_zero_on_constant_series(self):
        np.testing.assert_allclose(ind.macd(np.full(60, 5.0)), 0.0, atol=1e-12)

    def test_macd_positive_in_uptrend(self):
        close = np.exp(np.linspace(0, 1, 100))
        assert ind.macd(close)[-1] > 0

    def test_macd_fast_slow_order_enforced(self):
        with pytest.raises(ValueError, match="below"):
            ind.macd(np.ones(50), fast=26, slow=12)

    def test_macd_signal_smooths_macd(self, ohlcv):
        close = ohlcv[:, 3]
        line = ind.macd(close)
        signal = ind.macd_signal(close)
        assert np.std(np.diff(signal)) <= np.std(np.diff(line)) + 1e-12

    def test_stoch_bounds(self, ohlcv):
        out = ind.stochastic_oscillator(ohlcv[:, 1], ohlcv[:, 2], ohlcv[:, 3])
        assert np.all(out >= 0.0) and np.all(out <= 100.0)

    def test_stoch_flat_window_is_50(self):
        out = ind.stochastic_oscillator(
            np.full(10, 5.0), np.full(10, 5.0), np.full(10, 5.0)
        )
        np.testing.assert_allclose(out, 50.0)

    def test_stoch_at_window_high(self):
        high = np.array([10.0, 12.0, 14.0])
        low = np.array([8.0, 9.0, 10.0])
        close = high.copy()  # closes at the top of the range
        out = ind.stochastic_oscillator(high, low, close, window=3)
        assert out[-1] == pytest.approx(100.0)


class TestOscillators:
    def test_rsi_bounds(self, ohlcv):
        out = ind.rsi(ohlcv[:, 3])
        assert np.all(out >= 0.0) and np.all(out <= 100.0)

    def test_rsi_100_on_monotone_up(self):
        assert ind.rsi(np.arange(1.0, 40.0))[-1] == pytest.approx(100.0)

    def test_rsi_0_on_monotone_down(self):
        assert ind.rsi(np.arange(40.0, 1.0, -1.0))[-1] == pytest.approx(0.0)

    def test_rsi_flat_is_50(self):
        np.testing.assert_allclose(ind.rsi(np.full(30, 2.0)), 50.0)

    def test_momentum(self):
        x = np.arange(20, dtype=float)
        np.testing.assert_allclose(ind.momentum(x, 5)[5:], 5.0)

    def test_rate_of_change(self):
        x = np.full(20, 10.0)
        x[10:] = 11.0
        out = ind.rate_of_change(x, 10)
        assert out[10] == pytest.approx(10.0)

    def test_williams_r_is_shifted_stoch(self, ohlcv):
        h, l, c = ohlcv[:, 1], ohlcv[:, 2], ohlcv[:, 3]
        np.testing.assert_allclose(
            ind.williams_r(h, l, c),
            ind.stochastic_oscillator(h, l, c) - 100.0,
        )

    def test_cci_zero_on_constant(self):
        out = ind.cci(np.full(30, 5.0), np.full(30, 5.0), np.full(30, 5.0))
        np.testing.assert_allclose(out, 0.0)

    def test_trix_zero_on_constant(self):
        np.testing.assert_allclose(ind.trix(np.full(60, 9.0)), 0.0, atol=1e-12)

    def test_mfi_bounds(self, ohlcv):
        out = ind.mfi(ohlcv[:, 1], ohlcv[:, 2], ohlcv[:, 3], ohlcv[:, 4])
        assert np.all(out >= 0.0) and np.all(out <= 100.0)


class TestBandsAndVolatility:
    def test_bollinger_ordering(self, ohlcv):
        mid, upper, lower = ind.bollinger_bands(ohlcv[:, 3])
        assert np.all(upper >= mid) and np.all(mid >= lower)

    def test_bollinger_width_scales_with_nstd(self, ohlcv):
        _, u1, l1 = ind.bollinger_bands(ohlcv[:, 3], n_std=1.0)
        _, u2, l2 = ind.bollinger_bands(ohlcv[:, 3], n_std=2.0)
        assert np.all((u2 - l2) >= (u1 - l1) - 1e-12)

    def test_rolling_std_constant_is_zero(self):
        np.testing.assert_allclose(ind.rolling_std(np.full(20, 4.0), 5), 0.0)

    def test_rolling_std_matches_numpy(self, rng):
        x = rng.standard_normal(40)
        out = ind.rolling_std(x, 8)
        for i in range(7, 40):
            assert out[i] == pytest.approx(np.std(x[i - 7 : i + 1]))

    def test_pvt_constant_price_is_zero(self):
        out = ind.price_volume_trend(np.full(10, 5.0), np.ones(10) * 100)
        np.testing.assert_allclose(out, 0.0)


class TestFeatureMatrix:
    def test_exactly_83_indicators(self):
        assert len(ind.indicator_names()) == 83

    def test_exactly_88_features(self):
        assert len(ind.feature_names()) == 88

    def test_names_are_unique(self):
        names = ind.feature_names()
        assert len(names) == len(set(names))

    def test_matrix_shape(self, ohlcv):
        out = ind.compute_feature_matrix(ohlcv)
        assert out.shape == (len(ohlcv), 88)

    def test_matrix_finite(self, ohlcv):
        assert np.all(np.isfinite(ind.compute_feature_matrix(ohlcv)))

    def test_basic_columns_passthrough(self, ohlcv):
        out = ind.compute_feature_matrix(ohlcv)
        np.testing.assert_array_equal(out[:, :5], ohlcv)

    def test_wrong_column_count_rejected(self, rng):
        with pytest.raises(ValueError, match=r"\(T, 5\)"):
            ind.compute_indicator_matrix(rng.standard_normal((10, 4)))

    def test_nan_input_rejected(self):
        bad = np.ones((10, 5))
        bad[3, 2] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            ind.compute_indicator_matrix(bad)
