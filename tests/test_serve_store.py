"""Tests for the model payload format and the versioned FactorStore."""

import json

import numpy as np
import pytest

from repro.decomposition.dpar2 import dpar2
from repro.decomposition.streaming import StreamingDpar2
from repro.serve.store import (
    MODEL_MANIFEST_NAME,
    SCHEMA_VERSION,
    FactorStore,
    read_model,
    write_model,
)
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig


@pytest.fixture(scope="module")
def tensor():
    return low_rank_irregular_tensor(
        [30, 45, 25, 40], n_columns=16, rank=3, noise=0.02, random_state=4
    )


@pytest.fixture(scope="module")
def config():
    return DecompositionConfig(rank=4, max_iterations=6, random_state=0)


@pytest.fixture(scope="module")
def result(tensor, config):
    return dpar2(tensor, config)


class TestModelPayload:
    def test_roundtrip_factors(self, result, config, tmp_path):
        write_model(tmp_path / "m", result, config=config)
        artifact = read_model(tmp_path / "m")
        assert np.array_equal(np.asarray(artifact.result.H), result.H)
        assert np.array_equal(np.asarray(artifact.result.S), result.S)
        assert np.array_equal(np.asarray(artifact.result.V), result.V)
        for Qa, Qb in zip(artifact.result.Q, result.Q):
            assert np.array_equal(np.asarray(Qa), Qb)
        assert artifact.result.method == result.method
        assert artifact.result.n_iterations == result.n_iterations
        assert artifact.result.converged == result.converged
        assert len(artifact.result.history) == len(result.history)
        assert artifact.schema_version == SCHEMA_VERSION

    def test_config_and_dtype_roundtrip(self, tensor, tmp_path):
        config = DecompositionConfig(
            rank=3, max_iterations=2, dtype="float32", random_state=5,
            backend="serial",
        )
        result = dpar2(tensor, config)
        assert result.H.dtype == np.float32
        result.save(tmp_path / "m32", config=config)
        artifact = read_model(tmp_path / "m32")
        assert artifact.dtype == np.dtype(np.float32)
        assert artifact.config == config  # frozen dataclass equality
        assert artifact.result.H.dtype == np.float32

    def test_mmap_backed_load(self, result, tmp_path):
        write_model(tmp_path / "m", result)
        artifact = read_model(tmp_path / "m")
        assert isinstance(artifact.result.H, np.memmap)
        assert all(isinstance(Qk, np.memmap) for Qk in artifact.result.Q)
        in_ram = read_model(tmp_path / "m", mmap=False)
        assert not isinstance(in_ram.result.H, np.memmap)

    def test_save_load_methods(self, result, tmp_path):
        result.save(tmp_path / "m")
        loaded = type(result).load(tmp_path / "m")
        assert np.array_equal(np.asarray(loaded.V), result.V)

    def test_payloads_are_immutable(self, result, tmp_path):
        write_model(tmp_path / "m", result)
        with pytest.raises(FileExistsError, match="immutable"):
            write_model(tmp_path / "m", result)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no model payload"):
            read_model(tmp_path / "nowhere")

    def test_unknown_schema_version_rejected(self, result, tmp_path):
        write_model(tmp_path / "m", result)
        manifest_path = tmp_path / "m" / MODEL_MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="schema version"):
            read_model(tmp_path / "m")

    def test_missing_segment_rejected(self, result, tmp_path):
        write_model(tmp_path / "m", result)
        (tmp_path / "m" / "V.npy").unlink()
        with pytest.raises(ValueError, match="segment missing"):
            read_model(tmp_path / "m")

    def test_dtype_mismatch_rejected(self, result, tmp_path):
        write_model(tmp_path / "m", result)
        np.save(tmp_path / "m" / "H.npy", result.H.astype(np.float32))
        with pytest.raises(ValueError, match="corrupt"):
            read_model(tmp_path / "m")


class TestFactorStore:
    def test_publish_and_latest(self, result, config, tmp_path):
        store = FactorStore(tmp_path / "reg")
        assert store.latest_version() is None
        with pytest.raises(LookupError, match="no published versions"):
            store.latest()
        v1 = store.publish(result, config=config, extra={"dataset": "demo"})
        assert v1 == 1
        v2 = store.publish(result)
        assert v2 == 2
        assert store.versions() == [1, 2]
        assert store.latest_version() == 2
        artifact = store.latest()
        assert artifact.version == 2
        assert store.get(1).meta["dataset"] == "demo"

    def test_get_unknown_version(self, result, tmp_path):
        store = FactorStore(tmp_path / "reg")
        store.publish(result)
        with pytest.raises(KeyError, match="not in registry"):
            store.get(7)

    def test_reopen_existing_registry(self, result, tmp_path):
        store = FactorStore(tmp_path / "reg")
        store.publish(result)
        reopened = FactorStore(tmp_path / "reg")
        assert reopened.versions() == [1]
        assert np.array_equal(
            np.asarray(reopened.latest().result.H), result.H
        )

    def test_not_a_registry_rejected(self, tmp_path):
        (tmp_path / "registry.json").write_text('{"format": "other"}')
        with pytest.raises(ValueError, match="not a"):
            FactorStore(tmp_path)

    def test_stale_latest_pointer_falls_back(self, result, tmp_path):
        """A crashed publisher may leave LATEST behind the version dirs (or
        pointing at a pruned one); readers fall back to the newest complete
        version."""
        store = FactorStore(tmp_path / "reg")
        store.publish(result)
        store.publish(result)
        (store.root / "LATEST").write_text("99\n")
        assert store.latest_version() == 2
        (store.root / "LATEST").unlink()
        assert store.latest_version() == 2

    def test_half_written_version_invisible(self, result, tmp_path):
        """A version directory without a manifest (mid-publish crash before
        the rename) must not be listed or served."""
        store = FactorStore(tmp_path / "reg")
        store.publish(result)
        (store.version_dir(2)).mkdir()
        assert store.versions() == [1]
        assert store.latest_version() == 1

    def test_prune_keeps_newest_and_live(self, result, tmp_path):
        store = FactorStore(tmp_path / "reg")
        for _ in range(4):
            store.publish(result)
        removed = store.prune(keep=2)
        assert removed == [1, 2]
        assert store.versions() == [3, 4]
        assert store.latest().version == 4

    def test_streaming_publish_to(self, tensor, tmp_path):
        config = DecompositionConfig(rank=3, max_iterations=3, random_state=0)
        stream = StreamingDpar2(config, refresh_iterations=2)
        store = FactorStore(tmp_path / "reg")
        stream.absorb_many(list(tensor.slices[:2]), refresh=False)
        v1 = stream.publish_to(store)
        stream.absorb_many(list(tensor.slices[2:]), refresh=False)
        v2 = stream.publish_to(store, extra={"checkpoint": "final"})
        assert (v1, v2) == (1, 2)
        assert store.get(1).result.n_slices == 2
        final = store.get(2)
        assert final.result.n_slices == tensor.n_slices
        assert final.meta["source"] == "streaming"
        assert final.meta["checkpoint"] == "final"
        assert final.config == config
