"""Tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_matrix,
    check_positive_int,
    check_probability,
    check_rank,
)


class TestCheckMatrix:
    def test_accepts_list_of_lists(self):
        out = check_matrix([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_returns_contiguous(self):
        fortran = np.asfortranarray(np.ones((3, 4)))
        out = check_matrix(fortran)
        assert out.flags["C_CONTIGUOUS"]

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_matrix(np.ones(5))

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_matrix(np.ones((2, 2, 2)))

    def test_rejects_nan(self):
        bad = np.ones((2, 2))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN or Inf"):
            check_matrix(bad)

    def test_rejects_inf(self):
        bad = np.ones((2, 2))
        bad[1, 1] = np.inf
        with pytest.raises(ValueError, match="NaN or Inf"):
            check_matrix(bad)

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_matrix(np.empty((0, 3)))

    def test_allow_empty(self):
        out = check_matrix(np.empty((0, 3)), allow_empty=True)
        assert out.shape == (0, 3)

    def test_rejects_strings(self):
        with pytest.raises(TypeError, match="convertible"):
            check_matrix([["a", "b"]])

    def test_error_uses_name(self):
        with pytest.raises(ValueError, match="myarg"):
            check_matrix(np.ones(3), name="myarg")


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3) == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int32(5)) == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive_int(0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive_int(-2)

    def test_rejects_float(self):
        with pytest.raises(TypeError, match="int"):
            check_positive_int(2.0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError, match="int"):
            check_positive_int(True)


class TestCheckRank:
    def test_plain(self):
        assert check_rank(5) == 5

    def test_cap_respected(self):
        with pytest.raises(ValueError, match="exceeds"):
            check_rank(10, max_allowed=8)

    def test_cap_boundary_ok(self):
        assert check_rank(8, max_allowed=8) == 8


class TestCheckProbability:
    def test_bounds_inclusive(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0

    def test_midpoint(self):
        assert check_probability(0.5) == 0.5

    def test_above_one_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_probability(1.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_probability(-0.1)

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeError):
            check_probability("half")
