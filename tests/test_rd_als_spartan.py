"""Tests for the RD-ALS and SPARTan baselines."""

import numpy as np
import pytest

from repro.decomposition.rd_als import rd_als
from repro.decomposition.spartan import spartan
from repro.sparse.ops import dense_to_sparse
from repro.util.config import DecompositionConfig
from tests.conftest import assert_valid_parafac2_result


class TestRdAls:
    def test_result_structure(self, small_tensor, default_config):
        result = rd_als(small_tensor, default_config)
        assert result.method == "rd_als"
        assert_valid_parafac2_result(result, small_tensor)

    def test_fits_noiseless_data(self, noiseless_tensor):
        config = DecompositionConfig(rank=3, max_iterations=100,
                                     tolerance=1e-12, random_state=0)
        result = rd_als(noiseless_tensor, config)
        assert result.fitness(noiseless_tensor) > 0.995

    def test_has_preprocessing(self, small_tensor, default_config):
        result = rd_als(small_tensor, default_config)
        assert result.preprocess_seconds > 0.0
        assert 0 < result.preprocessed_bytes < small_tensor.nbytes

    def test_criterion_monotone(self, structured_tensor, default_config):
        result = rd_als(structured_tensor, default_config)
        values = [r.criterion for r in result.history]
        for earlier, later in zip(values, values[1:]):
            assert later <= earlier + 1e-6 * max(abs(earlier), 1.0)

    def test_criterion_is_true_error(self, structured_tensor, default_config):
        """RD-ALS's criterion must equal the exact reconstruction error."""
        result = rd_als(structured_tensor, default_config)
        final = result.history[-1].criterion
        exact = result.residual_squared(structured_tensor)
        assert final == pytest.approx(exact, rel=1e-6)

    def test_comparable_fitness_to_als(self, structured_tensor):
        from repro.decomposition.parafac2_als import parafac2_als

        config = DecompositionConfig(rank=4, max_iterations=30, random_state=0)
        fit_rd = rd_als(structured_tensor, config).fitness(structured_tensor)
        fit_als = parafac2_als(structured_tensor, config).fitness(structured_tensor)
        assert abs(fit_rd - fit_als) < 0.05

    def test_V_shape_lifted_back(self, small_tensor, default_config):
        result = rd_als(small_tensor, default_config)
        assert result.V.shape == (small_tensor.n_columns, result.rank)


class TestSpartan:
    def test_result_structure(self, small_tensor, default_config):
        result = spartan(small_tensor, default_config)
        assert result.method == "spartan"
        assert_valid_parafac2_result(result, small_tensor)

    def test_fits_noiseless_data(self, noiseless_tensor):
        config = DecompositionConfig(rank=3, max_iterations=100,
                                     tolerance=1e-12, random_state=0)
        result = spartan(noiseless_tensor, config)
        assert result.fitness(noiseless_tensor) > 0.995

    def test_matches_parafac2_als_exactly(self, structured_tensor):
        """Same maths, same init, same seed -> same trajectory."""
        from repro.decomposition.parafac2_als import parafac2_als

        config = DecompositionConfig(rank=4, max_iterations=10,
                                     tolerance=0.0, random_state=3)
        a = parafac2_als(structured_tensor, config)
        b = spartan(structured_tensor, config)
        np.testing.assert_allclose(a.V, b.V, atol=1e-8)
        np.testing.assert_allclose(a.S, b.S, atol=1e-8)
        assert a.fitness(structured_tensor) == pytest.approx(
            b.fitness(structured_tensor), abs=1e-8
        )

    def test_sparse_slices_accepted(self, rng):
        dense_slices = []
        for n in (12, 15, 10):
            Xk = rng.standard_normal((n, 8))
            Xk[np.abs(Xk) < 0.8] = 0.0
            dense_slices.append(Xk)
        sparse_slices = [dense_to_sparse(Xk) for Xk in dense_slices]

        config = DecompositionConfig(rank=3, max_iterations=10,
                                     tolerance=0.0, random_state=0)
        dense_result = spartan(dense_slices, config)
        sparse_result = spartan(sparse_slices, config)
        np.testing.assert_allclose(dense_result.V, sparse_result.V, atol=1e-8)
        np.testing.assert_allclose(dense_result.S, sparse_result.S, atol=1e-8)

    def test_threaded_matches_sequential(self, structured_tensor):
        config = DecompositionConfig(rank=4, max_iterations=8,
                                     tolerance=0.0, random_state=1)
        seq = spartan(structured_tensor, config)
        par = spartan(structured_tensor, config.with_(n_threads=4))
        np.testing.assert_allclose(seq.V, par.V, atol=1e-8)
        np.testing.assert_allclose(seq.H, par.H, atol=1e-8)

    def test_empty_slice_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            spartan([], DecompositionConfig(rank=2))

    def test_column_mismatch_rejected(self, rng):
        slices = [rng.standard_normal((5, 4)), rng.standard_normal((5, 6))]
        with pytest.raises(ValueError, match="columns"):
            spartan(slices, DecompositionConfig(rank=2))
