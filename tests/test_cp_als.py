"""Tests for CP-ALS: the standalone solver and the shared inner-step kernels."""

import numpy as np
import pytest

from repro.decomposition.cp_als import (
    cp_als,
    cp_single_iteration,
    normalize_columns,
    slice_mttkrp,
)
from repro.tensor.dense import DenseTensor
from repro.tensor.products import khatri_rao


class TestNormalizeColumns:
    def test_unit_norms(self, rng):
        A = rng.standard_normal((10, 4)) * 5
        normalized, norms = normalize_columns(A)
        np.testing.assert_allclose(
            np.linalg.norm(normalized, axis=0), np.ones(4), atol=1e-12
        )

    def test_reconstruction(self, rng):
        A = rng.standard_normal((10, 4))
        normalized, norms = normalize_columns(A)
        np.testing.assert_allclose(normalized * norms, A, atol=1e-12)

    def test_zero_column_untouched(self):
        A = np.zeros((5, 2))
        A[:, 0] = 1.0
        normalized, norms = normalize_columns(A)
        np.testing.assert_array_equal(normalized[:, 1], np.zeros(5))
        assert norms[1] == 1.0


class TestSliceMttkrp:
    """slice_mttkrp must equal the naive unfold @ khatri_rao computation."""

    @pytest.fixture
    def setup(self, rng):
        R, J, K = 4, 7, 6
        slices = [rng.standard_normal((R, J)) for _ in range(K)]
        Y = DenseTensor.from_frontal_slices(slices)
        H = rng.standard_normal((R, R))
        V = rng.standard_normal((J, R))
        W = rng.standard_normal((K, R))
        return slices, Y, H, V, W

    def test_mode_1(self, setup):
        slices, Y, H, V, W = setup
        expected = Y.unfold(1) @ khatri_rao(W, V)
        np.testing.assert_allclose(
            slice_mttkrp(slices, H, V, W, mode=1), expected, atol=1e-10
        )

    def test_mode_2(self, setup):
        slices, Y, H, V, W = setup
        expected = Y.unfold(2) @ khatri_rao(W, H)
        np.testing.assert_allclose(
            slice_mttkrp(slices, H, V, W, mode=2), expected, atol=1e-10
        )

    def test_mode_3(self, setup):
        slices, Y, H, V, W = setup
        expected = Y.unfold(3) @ khatri_rao(V, H)
        np.testing.assert_allclose(
            slice_mttkrp(slices, H, V, W, mode=3), expected, atol=1e-10
        )

    def test_bad_mode(self, setup):
        slices, _, H, V, W = setup
        with pytest.raises(ValueError, match="mode"):
            slice_mttkrp(slices, H, V, W, mode=4)


class TestCpSingleIteration:
    def test_monotone_error_decrease(self, rng):
        """One ALS sweep must not increase the fit error."""
        A = rng.standard_normal((5, 3))
        B = rng.standard_normal((8, 3))
        C = rng.standard_normal((6, 3))
        X = DenseTensor.from_cp_factors((A, B, C))
        unf = (X.unfold(1), X.unfold(2), X.unfold(3))

        H = rng.standard_normal((5, 3))
        V = rng.standard_normal((8, 3))
        W = rng.standard_normal((6, 3))

        def error(H, V, W):
            approx = DenseTensor.from_cp_factors((H, V, W)).data
            return np.linalg.norm(X.data - approx)

        prev = error(H, V, W)
        for _ in range(5):
            H, V, W = cp_single_iteration(unf, H, V, W)
            cur = error(H, V, W)
            assert cur <= prev + 1e-8
            prev = cur

    def test_normalization_flag(self, rng):
        X = DenseTensor(rng.standard_normal((4, 5, 6)))
        unf = (X.unfold(1), X.unfold(2), X.unfold(3))
        H0 = rng.standard_normal((4, 2))
        V0 = rng.standard_normal((5, 2))
        W0 = rng.standard_normal((6, 2))
        H, V, W = cp_single_iteration(unf, H0, V0, W0, normalize=True)
        np.testing.assert_allclose(np.linalg.norm(H, axis=0), 1.0, atol=1e-10)
        np.testing.assert_allclose(np.linalg.norm(V, axis=0), 1.0, atol=1e-10)


class TestCpAls:
    def test_recovers_exact_cp_tensor(self, rng):
        A = rng.standard_normal((8, 3))
        B = rng.standard_normal((9, 3))
        C = rng.standard_normal((7, 3))
        X = DenseTensor.from_cp_factors((A, B, C))
        result = cp_als(X, 3, max_iterations=200, random_state=0)
        assert result.fitness(X) > 0.999

    def test_result_structure(self, rng):
        X = DenseTensor(rng.random((6, 5, 4)))
        result = cp_als(X, 2, max_iterations=10, random_state=0)
        assert result.rank == 2
        assert result.factors[0].shape == (6, 2)
        assert result.factors[1].shape == (5, 2)
        assert result.factors[2].shape == (4, 2)
        assert result.weights.shape == (2,)
        assert result.n_iterations <= 10

    def test_fit_history_monotone(self, rng):
        X = DenseTensor(rng.random((6, 6, 6)))
        result = cp_als(X, 3, max_iterations=30, random_state=1)
        fits = result.fit_history
        for earlier, later in zip(fits, fits[1:]):
            assert later >= earlier - 1e-7

    def test_convergence_flag(self, rng):
        A = rng.standard_normal((6, 2))
        B = rng.standard_normal((6, 2))
        C = rng.standard_normal((6, 2))
        X = DenseTensor.from_cp_factors((A, B, C))
        result = cp_als(X, 2, max_iterations=500, tolerance=1e-10,
                        random_state=0)
        assert result.converged

    def test_reconstruct_shape(self, rng):
        X = DenseTensor(rng.random((3, 4, 5)))
        result = cp_als(X, 2, max_iterations=5, random_state=0)
        assert result.reconstruct().shape == (3, 4, 5)

    def test_accepts_raw_array(self, rng):
        result = cp_als(rng.random((4, 4, 4)), 2, max_iterations=3,
                        random_state=0)
        assert result.rank == 2

    def test_invalid_rank(self, rng):
        with pytest.raises(ValueError, match="rank"):
            cp_als(DenseTensor(rng.random((3, 3, 3))), 0)
