"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.tensor.random import low_rank_irregular_tensor, random_irregular_tensor
from repro.util.config import DecompositionConfig


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_tensor():
    """A small uniform-random irregular tensor (no planted structure)."""
    return random_irregular_tensor([15, 25, 20, 30], n_columns=12, random_state=0)


@pytest.fixture
def structured_tensor():
    """An irregular tensor with exact rank-4 PARAFAC2 structure + mild noise."""
    return low_rank_irregular_tensor(
        [40, 60, 35, 50, 45], n_columns=24, rank=4, noise=0.02, random_state=1
    )


@pytest.fixture
def noiseless_tensor():
    """Exact rank-3 PARAFAC2 data — solvers should fit it almost perfectly."""
    return low_rank_irregular_tensor(
        [30, 45, 38], n_columns=20, rank=3, noise=0.0, random_state=2
    )


@pytest.fixture
def default_config():
    return DecompositionConfig(rank=4, max_iterations=20, random_state=7)


def make_irregular(row_counts, n_columns, seed=0):
    """Non-fixture helper for parametrized tests."""
    return random_irregular_tensor(row_counts, n_columns, random_state=seed)


def assert_orthonormal_columns(matrix, atol=1e-8):
    gram = matrix.T @ matrix
    np.testing.assert_allclose(gram, np.eye(matrix.shape[1]), atol=atol)


def assert_valid_parafac2_result(result, tensor):
    """Structural invariants every solver's output must satisfy."""
    assert result.n_slices == tensor.n_slices
    assert result.V.shape == (tensor.n_columns, result.rank)
    assert result.H.shape == (result.rank, result.rank)
    assert result.S.shape == (tensor.n_slices, result.rank)
    for k, Qk in enumerate(result.Q):
        assert Qk.shape == (tensor.row_counts[k], result.rank)
        assert_orthonormal_columns(Qk, atol=1e-6)
    assert np.isfinite(result.fitness(tensor))
