"""Tests for repro.util.rng."""

import numpy as np
import pytest

from repro.util.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_numpy_integer_seed(self):
        gen = as_generator(np.int64(3))
        assert isinstance(gen, np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            as_generator(-1)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError, match="random_state"):
            as_generator("seed")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            as_generator(1.5)


class TestSpawnGenerators:
    def test_count(self):
        children = spawn_generators(0, 5)
        assert len(children) == 5

    def test_children_are_independent_generators(self):
        children = spawn_generators(0, 3)
        draws = [child.random(4) for child in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_given_seed(self):
        a = [g.random(3) for g in spawn_generators(9, 4)]
        b = [g.random(3) for g in spawn_generators(9, 4)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_generators(0, -1)
