"""Property-based tests (hypothesis) for the core invariants.

These stress the substrates with generated inputs: products and unfoldings
must satisfy their algebraic identities, partitioning must be a permutation
that never loses to round-robin, SVDs must reconstruct within the
Eckart-Young bound, and the sparse kernels must agree with dense numpy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.randomized_svd import randomized_svd
from repro.linalg.truncated_svd import truncated_svd
from repro.parallel.partition import (
    greedy_partition,
    partition_imbalance,
    round_robin_partition,
)
from repro.sparse.coo import CooMatrix
from repro.tensor.matricization import fold, unfold
from repro.tensor.products import hadamard, khatri_rao, kronecker, vec

finite = st.floats(min_value=-100, max_value=100, allow_nan=False,
                   allow_infinity=False, width=64)
small_dim = st.integers(min_value=1, max_value=6)


def matrix_strategy(rows=small_dim, cols=small_dim):
    return st.tuples(rows, cols).flatmap(
        lambda shape: arrays(np.float64, shape, elements=finite)
    )


@st.composite
def matrix_pair_same_cols(draw):
    cols = draw(small_dim)
    a = draw(arrays(np.float64, (draw(small_dim), cols), elements=finite))
    b = draw(arrays(np.float64, (draw(small_dim), cols), elements=finite))
    return a, b


class TestProductProperties:
    @settings(max_examples=40, deadline=None)
    @given(matrix_pair_same_cols())
    def test_khatri_rao_columns_are_kroneckers(self, pair):
        a, b = pair
        out = khatri_rao(a, b)
        for r in range(a.shape[1]):
            np.testing.assert_allclose(
                out[:, r], np.kron(a[:, r], b[:, r]), atol=1e-9
            )

    @settings(max_examples=40, deadline=None)
    @given(matrix_strategy(), matrix_strategy())
    def test_kronecker_matches_numpy(self, a, b):
        np.testing.assert_allclose(kronecker(a, b), np.kron(a, b), atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(matrix_strategy())
    def test_hadamard_with_ones_is_identity(self, a):
        np.testing.assert_array_equal(hadamard(a, np.ones_like(a)), a)

    @settings(max_examples=40, deadline=None)
    @given(matrix_strategy())
    def test_vec_roundtrip(self, a):
        np.testing.assert_array_equal(
            vec(a).reshape(a.shape, order="F"), a
        )

    @settings(max_examples=30, deadline=None)
    @given(matrix_pair_same_cols())
    def test_khatri_rao_gram_identity(self, pair):
        a, b = pair
        kr = khatri_rao(a, b)
        np.testing.assert_allclose(
            kr.T @ kr, (a.T @ a) * (b.T @ b), atol=1e-7
        )


class TestMatricizationProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.tuples(small_dim, small_dim, small_dim).flatmap(
            lambda shape: arrays(np.float64, shape, elements=finite)
        ),
        st.integers(min_value=1, max_value=3),
    )
    def test_unfold_fold_roundtrip(self, tensor, mode):
        np.testing.assert_array_equal(
            fold(unfold(tensor, mode), mode, tensor.shape), tensor
        )

    @settings(max_examples=40, deadline=None)
    @given(
        st.tuples(small_dim, small_dim, small_dim).flatmap(
            lambda shape: arrays(np.float64, shape, elements=finite)
        ),
        st.integers(min_value=1, max_value=3),
    )
    def test_unfold_preserves_norm(self, tensor, mode):
        np.testing.assert_allclose(
            np.linalg.norm(unfold(tensor, mode)),
            np.linalg.norm(tensor.ravel()),
            atol=1e-9,
        )


class TestPartitionProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False),
                 min_size=0, max_size=40),
        st.integers(min_value=1, max_value=8),
    )
    def test_partition_is_permutation(self, weights, n_parts):
        parts = greedy_partition(weights, n_parts)
        flat = sorted(idx for group in parts for idx in group)
        assert flat == list(range(len(weights)))

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.1, max_value=1000, allow_nan=False),
                 min_size=1, max_size=40),
        st.integers(min_value=1, max_value=8),
    )
    def test_greedy_close_to_round_robin_or_better(self, weights, n_parts):
        """Round-robin can win by luck on tiny instances, but greedy can
        never lose by more than the Graham slack (m-1)*max_w/total — a
        provable consequence of the list-scheduling bound."""
        greedy = partition_imbalance(
            weights, greedy_partition(weights, n_parts)
        )
        naive = partition_imbalance(
            weights, round_robin_partition(len(weights), n_parts)
        )
        slack = (n_parts - 1) * max(weights) / max(sum(weights), 1e-12)
        assert greedy <= naive + slack + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.1, max_value=1000, allow_nan=False),
                 min_size=1, max_size=30),
        st.integers(min_value=1, max_value=6),
    )
    def test_graham_bound(self, weights, n_parts):
        """Graham's list-scheduling guarantee: the max load of any greedy
        assignment is at most mean load + (1 - 1/m) * max weight."""
        parts = greedy_partition(weights, n_parts)
        loads = [sum(weights[i] for i in group) for group in parts]
        bound = sum(weights) / n_parts + (1 - 1 / n_parts) * max(weights)
        assert max(loads) <= bound + 1e-9


class TestSvdProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=2, max_value=12),
            st.integers(min_value=2, max_value=12),
        ).flatmap(lambda s: arrays(np.float64, s, elements=finite)),
        st.integers(min_value=1, max_value=4),
    )
    def test_truncated_svd_eckart_young(self, matrix, rank):
        out = truncated_svd(matrix, rank)
        s = np.linalg.svd(matrix, compute_uv=False)
        r = min(rank, *matrix.shape)
        optimal = np.sqrt(np.sum(s[r:] ** 2))
        actual = np.linalg.norm(matrix - out.reconstruct())
        assert actual <= optimal + 1e-6 * max(1.0, np.linalg.norm(matrix))

    @settings(max_examples=20, deadline=None)
    @given(
        st.tuples(
            st.integers(min_value=3, max_value=15),
            st.integers(min_value=3, max_value=15),
        ).flatmap(lambda s: arrays(np.float64, s, elements=finite)),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2 ** 31 - 1),
    )
    def test_randomized_svd_orthonormal_factors(self, matrix, rank, seed):
        out = randomized_svd(matrix, rank, random_state=seed)
        r = out.rank
        np.testing.assert_allclose(out.U.T @ out.U, np.eye(r), atol=1e-7)
        np.testing.assert_allclose(out.V.T @ out.V, np.eye(r), atol=1e-7)
        assert np.all(out.singular_values >= -1e-12)


class TestSparseProperties:
    @settings(max_examples=40, deadline=None)
    @given(matrix_strategy(
        rows=st.integers(min_value=1, max_value=8),
        cols=st.integers(min_value=1, max_value=8),
    ))
    def test_coo_csr_dense_roundtrip(self, dense):
        csr = CooMatrix.from_dense(dense).to_csr()
        np.testing.assert_allclose(csr.to_dense(), dense, atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(matrix_strategy(
        rows=st.integers(min_value=1, max_value=8),
        cols=st.integers(min_value=1, max_value=8),
    ))
    def test_csr_matvec_matches_dense(self, dense):
        csr = CooMatrix.from_dense(dense).to_csr()
        x = np.arange(dense.shape[1], dtype=np.float64)
        np.testing.assert_allclose(csr.matvec(x), dense @ x,
                                   rtol=1e-9, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(matrix_strategy(
        rows=st.integers(min_value=1, max_value=8),
        cols=st.integers(min_value=1, max_value=8),
    ))
    def test_csr_transpose_involution(self, dense):
        csr = CooMatrix.from_dense(dense).to_csr()
        np.testing.assert_allclose(
            csr.transpose().transpose().to_dense(), csr.to_dense(),
            atol=1e-12,
        )


class TestIndicatorProperties:
    price = arrays(
        np.float64,
        st.integers(min_value=2, max_value=60),
        elements=st.floats(min_value=1.0, max_value=1000.0,
                           allow_nan=False),
    )

    @settings(max_examples=40, deadline=None)
    @given(price, st.integers(min_value=1, max_value=20))
    def test_sma_within_data_range(self, close, window):
        from repro.data.indicators import sma

        out = sma(close, window)
        assert np.all(out >= close.min() - 1e-9)
        assert np.all(out <= close.max() + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(price, st.integers(min_value=1, max_value=20))
    def test_ema_within_data_range(self, close, window):
        from repro.data.indicators import ema

        out = ema(close, window)
        assert np.all(out >= close.min() - 1e-9)
        assert np.all(out <= close.max() + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(price, st.integers(min_value=1, max_value=15))
    def test_rsi_bounds(self, close, window):
        from repro.data.indicators import rsi

        out = rsi(close, window)
        assert np.all(out >= -1e-9) and np.all(out <= 100.0 + 1e-9)
