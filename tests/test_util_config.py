"""Tests for repro.util.config.DecompositionConfig."""

import pytest

from repro.util.config import DecompositionConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = DecompositionConfig()
        assert config.rank == 10
        assert config.max_iterations == 32
        assert config.oversampling == 5
        assert config.power_iterations == 1

    def test_frozen(self):
        config = DecompositionConfig()
        with pytest.raises(AttributeError):
            config.rank = 20


class TestValidation:
    def test_zero_rank_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            DecompositionConfig(rank=0)

    def test_zero_iterations_allowed(self):
        # "Preprocess only" runs are legal; solvers skip the sweep loop.
        assert DecompositionConfig(max_iterations=0).max_iterations == 0

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError, match="max_iterations"):
            DecompositionConfig(max_iterations=-1)

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError, match="n_threads"):
            DecompositionConfig(n_threads=0)

    def test_negative_oversampling_rejected(self):
        with pytest.raises(ValueError, match="oversampling"):
            DecompositionConfig(oversampling=-1)

    def test_negative_power_iterations_rejected(self):
        with pytest.raises(ValueError, match="power_iterations"):
            DecompositionConfig(power_iterations=-1)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            DecompositionConfig(tolerance=-1e-3)

    def test_zero_tolerance_allowed(self):
        assert DecompositionConfig(tolerance=0.0).tolerance == 0.0

    def test_zero_oversampling_allowed(self):
        assert DecompositionConfig(oversampling=0).oversampling == 0


class TestBackendValidation:
    """Backend typos must fail at construction, not deep inside a solver."""

    def test_default_is_thread(self):
        assert DecompositionConfig().backend == "thread"

    def test_known_backends_accepted(self):
        for name in ("serial", "thread", "process"):
            assert DecompositionConfig(backend=name).backend == name

    def test_backend_normalized(self):
        assert DecompositionConfig(backend="  Process ").backend == "process"

    def test_unknown_backend_rejected_with_options(self):
        with pytest.raises(ValueError, match="serial, thread, process"):
            DecompositionConfig(backend="gpu")

    def test_non_string_backend_rejected(self):
        with pytest.raises(TypeError, match="backend"):
            DecompositionConfig(backend=7)

    def test_with_validates_backend(self):
        with pytest.raises(ValueError, match="backend"):
            DecompositionConfig().with_(backend="cluster")


class TestComputeBackendValidation:
    """Compute-backend typos and impossible combos fail at construction."""

    def test_default_is_numpy(self):
        assert DecompositionConfig().compute_backend == "numpy"

    def test_known_names_accepted_without_importing_libraries(self):
        # Validation is by name only — torch/cupy need not be installed to
        # *construct* a config naming them.
        for name in ("numpy", "torch", "torch-cuda", "cupy"):
            assert DecompositionConfig(compute_backend=name).compute_backend == name

    def test_name_normalized(self):
        assert (
            DecompositionConfig(compute_backend=" Torch ").compute_backend
            == "torch"
        )

    def test_unknown_backend_rejected_with_options(self):
        with pytest.raises(ValueError, match="numpy, torch, torch-cuda, cupy"):
            DecompositionConfig(compute_backend="tensorflow")

    def test_non_string_rejected(self):
        with pytest.raises(TypeError, match="compute_backend"):
            DecompositionConfig(compute_backend=3)

    def test_process_backend_with_device_compute_rejected(self):
        with pytest.raises(ValueError, match="process"):
            DecompositionConfig(backend="process", compute_backend="torch")

    def test_process_backend_with_numpy_compute_allowed(self):
        config = DecompositionConfig(backend="process", compute_backend="numpy")
        assert config.backend == "process"

    def test_serial_and_thread_allowed_with_device_compute(self):
        for backend in ("serial", "thread"):
            config = DecompositionConfig(
                backend=backend, compute_backend="torch-cuda"
            )
            assert config.compute_backend == "torch-cuda"

    def test_with_validates_combination(self):
        config = DecompositionConfig(backend="process")
        with pytest.raises(ValueError, match="process"):
            config.with_(compute_backend="torch")

    def test_array_module_resolves_numpy(self):
        assert DecompositionConfig().array_module.is_numpy


class TestWith:
    def test_with_replaces_field(self):
        config = DecompositionConfig(rank=10)
        assert config.with_(rank=15).rank == 15

    def test_with_keeps_other_fields(self):
        config = DecompositionConfig(rank=10, n_threads=4)
        assert config.with_(rank=15).n_threads == 4

    def test_with_returns_new_object(self):
        config = DecompositionConfig()
        assert config.with_(rank=5) is not config

    def test_with_validates(self):
        with pytest.raises(ValueError):
            DecompositionConfig().with_(rank=-1)
