"""Serving-layer robustness: deadlines, shedding, body caps, drain, quarantine.

Covers the fault surface of :mod:`repro.serve.service`:

* request deadlines answer 503 + ``Retry-After`` and count under
  ``/healthz`` ``faults.timeouts``;
* an oversized ``Content-Length`` answers 413 without the body ever being
  read;
* a full micro-batch queue sheds with 503 + ``Retry-After``;
* SIGTERM triggers a graceful drain — in-flight requests are answered,
  the process exits 0 (exercised over real HTTP against a real
  ``repro serve`` subprocess);
* a published version whose engine build fails is quarantined and the
  previous version keeps serving; ``/admin/reload`` retries it.
"""

import asyncio
import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.decomposition.dpar2 import dpar2
from repro.serve.service import (
    DEFAULT_MAX_BODY_BYTES,
    MicroBatcher,
    ServiceError,
    start_server_in_thread,
)
from repro.serve.store import FactorStore
from repro.tensor.irregular import IrregularTensor
from repro.util import faults
from repro.util.config import DecompositionConfig
from repro.util.faults import FaultPlan, FaultSpec


def _call(base_url: str, method: str, path: str, body: dict | None = None):
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(base_url + path, data=data, method=method)
    request.add_header("Content-Type", "application/json")
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read())


@pytest.fixture(scope="module")
def tensor():
    rng = np.random.default_rng(0)
    return IrregularTensor([rng.standard_normal((n, 8)) for n in (12, 15, 9, 20)])


@pytest.fixture(scope="module")
def result(tensor):
    return dpar2(
        tensor, DecompositionConfig(rank=3, max_iterations=4, random_state=0)
    )


@pytest.fixture()
def store(tmp_path, result):
    registry = FactorStore(tmp_path / "registry")
    registry.publish(result)
    return registry


# --------------------------------------------------------------------- #
# request deadlines
# --------------------------------------------------------------------- #


class TestRequestDeadline:
    def test_slow_dispatch_answers_503_with_retry_after(self, store):
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    site="serve.dispatch", kind="slow", at=(1,), seconds=5.0
                ),
            )
        )
        with start_server_in_thread(store, request_timeout=0.3) as handle:
            with faults.injected(plan):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _call(handle.base_url, "GET", "/healthz")
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"] == "1"
            body = json.loads(excinfo.value.read())
            assert "deadline" in body["error"]
            # The connection survives a deadline (framing is intact) and
            # the counter is visible on the next request.
            health = _call(handle.base_url, "GET", "/healthz")
            assert health["faults"]["timeouts"] == 1

    def test_fast_requests_unaffected_by_deadline(self, store):
        with start_server_in_thread(store, request_timeout=5.0) as handle:
            health = _call(handle.base_url, "GET", "/healthz")
            assert health["status"] == "ok"
            assert health["faults"]["timeouts"] == 0

    def test_injected_hang_is_cancelled_not_blocking(self, store):
        # A hang must not wedge the event loop: the deadline machinery
        # itself runs on that loop, so this doubles as a regression test
        # that injection sleeps asynchronously in async context.
        plan = FaultPlan(
            specs=(FaultSpec(site="serve.dispatch", kind="hang", at=(1,)),)
        )
        with start_server_in_thread(store, request_timeout=0.2) as handle:
            started = time.monotonic()
            with faults.injected(plan):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _call(handle.base_url, "GET", "/healthz")
            assert excinfo.value.code == 503
            assert time.monotonic() - started < 10.0


# --------------------------------------------------------------------- #
# body-size cap
# --------------------------------------------------------------------- #


class TestBodyCap:
    def test_default_cap_is_8mib(self):
        assert DEFAULT_MAX_BODY_BYTES == 8 << 20

    def test_oversized_content_length_gets_413_without_body(self, store):
        with start_server_in_thread(store, max_body_bytes=1024) as handle:
            # Raw socket: declare a huge body and send none of it — the
            # server must answer from the headers alone.
            with socket.create_connection(("127.0.0.1", handle.port), timeout=10) as sock:
                sock.sendall(
                    b"POST /v1/similar HTTP/1.1\r\n"
                    b"Host: localhost\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 10000000\r\n"
                    b"\r\n"
                )
                response = http.client.HTTPResponse(sock, method="POST")
                response.begin()
                assert response.status == 413
                body = json.loads(response.read())
                assert "exceeds" in body["error"]
                # Framing is lost (unread body), so the server closes.
                assert response.getheader("Connection") == "close"

    def test_body_within_cap_is_served(self, store, result):
        with start_server_in_thread(store, max_body_bytes=1 << 20) as handle:
            reply = _call(
                handle.base_url, "POST", "/v1/similar", {"index": 0, "k": 2}
            )
            assert len(reply["neighbors"]) == 2

    def test_cap_disabled_with_none(self, store):
        with start_server_in_thread(store, max_body_bytes=None) as handle:
            payload = {"index": 0, "k": 2, "pad": "x" * 100_000}
            reply = _call(handle.base_url, "POST", "/v1/similar", payload)
            assert reply["neighbors"]


# --------------------------------------------------------------------- #
# queue shedding
# --------------------------------------------------------------------- #


class TestShedding:
    def test_batcher_sheds_past_max_queue(self):
        async def scenario():
            batcher = MicroBatcher(
                lambda items: [item * 2 for item in items],
                window=5.0, max_batch=16, adaptive=False, max_queue=2,
            )
            first = asyncio.ensure_future(batcher.submit(1))
            second = asyncio.ensure_future(batcher.submit(2))
            await asyncio.sleep(0.05)  # both parked behind the open window
            with pytest.raises(ServiceError) as excinfo:
                await batcher.submit(3)
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after == 1
            assert batcher.shed == 1
            batcher._flush()  # don't sit out the 5 s window in a test
            assert await first == 2
            assert await second == 4
            assert batcher.stats()["shed"] == 1

        asyncio.run(scenario())

    def test_max_queue_validation(self):
        with pytest.raises(ValueError, match="max_queue"):
            MicroBatcher(lambda items: items, max_queue=0)

    def test_shed_counter_reported_in_healthz(self, store):
        with start_server_in_thread(store, max_queue=4) as handle:
            health = _call(handle.base_url, "GET", "/healthz")
            assert health["faults"]["shed"] == 0
            assert health["batching"]["similar"]["shed"] == 0


# --------------------------------------------------------------------- #
# graceful drain
# --------------------------------------------------------------------- #


class TestGracefulDrain:
    def test_in_thread_drain_answers_in_flight_request(self, store):
        # A fixed 1.5 s batching window holds the query in flight long
        # enough to drain around it.
        handle = start_server_in_thread(
            store, batch_window=1.5, adaptive_batching=False, drain_timeout=10.0
        )
        outcome = {}

        def query():
            outcome["reply"] = _call(
                handle.base_url, "POST", "/v1/similar", {"index": 0, "k": 2}
            )

        thread = threading.Thread(target=query)
        thread.start()
        time.sleep(0.4)  # request is now parked in the batch window
        handle._loop.call_soon_threadsafe(handle.app.begin_drain)
        thread.join(timeout=15)
        assert outcome["reply"]["neighbors"]  # answered, not dropped
        handle._thread.join(timeout=15)
        assert not handle._thread.is_alive()  # run() returned after drain

    def test_sigterm_drains_real_server_and_exits_zero(self, store):
        # End-to-end over real HTTP: `repro serve` in a subprocess, one
        # request held in flight by a fixed batch window, SIGTERM mid-
        # flight.  The request must be answered and the exit code must
        # be 0.
        port = _free_port()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-c",
                "import sys; from repro.cli import main; sys.exit(main())",
                "serve", "--registry", str(store.root),
                "--port", str(port), "--poll-interval", "0",
                "--batch-window-ms", "1500", "--fixed-batch-window",
                "--drain-timeout", "10",
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        base_url = f"http://127.0.0.1:{port}"
        try:
            _wait_for_healthz(base_url)
            outcome = {}

            def query():
                try:
                    outcome["reply"] = _call(
                        base_url, "POST", "/v1/similar", {"index": 0, "k": 2}
                    )
                except Exception as exc:  # noqa: BLE001 - recorded for assert
                    outcome["error"] = exc

            thread = threading.Thread(target=query)
            thread.start()
            time.sleep(0.4)  # in flight, parked in the 1.5 s window
            proc.send_signal(signal.SIGTERM)
            thread.join(timeout=20)
            returncode = proc.wait(timeout=20)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert "error" not in outcome, outcome.get("error")
        assert outcome["reply"]["neighbors"]  # in-flight request answered
        assert returncode == 0  # graceful exit after drain

    def test_sigterm_on_idle_server_exits_zero_promptly(self, store):
        port = _free_port()
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-c",
                "import sys; from repro.cli import main; sys.exit(main())",
                "serve", "--registry", str(store.root),
                "--port", str(port), "--poll-interval", "0",
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            _wait_for_healthz(f"http://127.0.0.1:{port}")
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_for_healthz(base_url: str, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if _call(base_url, "GET", "/healthz")["status"] == "ok":
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.05)
    raise RuntimeError(f"server at {base_url} never became healthy")


# --------------------------------------------------------------------- #
# version quarantine
# --------------------------------------------------------------------- #


class TestQuarantine:
    def test_corrupt_latest_version_falls_back_to_previous(
        self, store, result, tmp_path
    ):
        version = store.publish(result)
        manifest = store.version_dir(version) / "model.json"
        good_manifest = manifest.read_text()
        manifest.write_text("{corrupt json")

        with start_server_in_thread(store) as handle:
            health = _call(handle.base_url, "GET", "/healthz")
            assert health["version"] == 1  # previous version serves
            assert str(version) in health["faults"]["quarantined"]

            # Reload retries the quarantined version; still broken → the
            # verdict is re-recorded and v1 keeps serving.
            reply = _call(handle.base_url, "POST", "/admin/reload", {})
            assert reply["version"] == 1
            assert str(version) in reply["quarantined"]

            # Repair the payload in place; reload now adopts it.
            manifest.write_text(good_manifest)
            reply = _call(handle.base_url, "POST", "/admin/reload", {})
            assert reply == {
                "version": version, "swapped": True, "quarantined": {},
            }
            assert _call(handle.base_url, "GET", "/healthz")["version"] == version

    def test_queries_keep_answering_while_latest_is_quarantined(
        self, store, result
    ):
        version = store.publish(result)
        (store.version_dir(version) / "H.npy").write_bytes(b"not an npy file")
        with start_server_in_thread(store) as handle:
            reply = _call(
                handle.base_url, "POST", "/v1/similar", {"index": 0, "k": 2}
            )
            assert reply["version"] == 1
            assert reply["neighbors"]

    def test_all_versions_broken_fails_startup(self, tmp_path, result):
        registry = FactorStore(tmp_path / "broken")
        version = registry.publish(result)
        (registry.version_dir(version) / "model.json").write_text("{nope")
        with pytest.raises(Exception, match="failed to load"):
            start_server_in_thread(registry)


# --------------------------------------------------------------------- #
# /healthz fault counters
# --------------------------------------------------------------------- #


class TestHealthzFaults:
    def test_faults_block_shape(self, store):
        with start_server_in_thread(store) as handle:
            block = _call(handle.base_url, "GET", "/healthz")["faults"]
            assert block == {
                "timeouts": 0,
                "shed": 0,
                "drains": 0,
                "draining": False,
                "worker_restarts": 0,
                "checkpoint_resumes": 0,
                "quarantined": {},
            }

    def test_served_version_meta_counters_surface(self, store, result):
        store.publish(
            result, extra={"worker_restarts": 3, "checkpoint_resumes": 1}
        )
        with start_server_in_thread(store) as handle:
            block = _call(handle.base_url, "GET", "/healthz")["faults"]
            assert block["worker_restarts"] == 3
            assert block["checkpoint_resumes"] == 1
