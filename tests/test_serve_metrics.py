"""Tests for ``GET /metrics`` and the registry-backed serve counters."""

import json
import urllib.request

import pytest

from repro.decomposition.dpar2 import dpar2
from repro.obs.metrics import MetricsRegistry
from repro.serve.service import MicroBatcher, start_server_in_thread
from repro.serve.store import FactorStore
from repro.tensor.random import low_rank_irregular_tensor
from repro.util.config import DecompositionConfig

#: Exact key layout of /healthz — the schema operators' dashboards parse.
#: The registry migration must never change it (byte-identical rendering).
HEALTHZ_KEYS = ["status", "version", "uptime_seconds", "connections",
                "requests_served", "batches", "batched_requests", "batching",
                "faults", "engine"]
BATCHER_KEYS = ["batches", "requests", "shed", "queue_depth", "last_batch",
                "ewma_depth", "window_cap_ms", "current_window_ms"]
FAULT_KEYS = ["timeouts", "shed", "drains", "draining", "worker_restarts",
              "checkpoint_resumes", "quarantined"]
TRANSFER_KEYS = ["h2d_calls", "h2d_bytes", "d2h_calls", "d2h_bytes"]


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    tensor = low_rank_irregular_tensor(
        [25, 30, 20, 35], n_columns=14, rank=3, noise=0.02, random_state=3
    )
    config = DecompositionConfig(rank=3, max_iterations=5, random_state=0)
    result = dpar2(tensor, config)
    registry = FactorStore(tmp_path_factory.mktemp("registry"))
    registry.publish(result, config=config)
    return registry


def _get(base_url, path):
    with urllib.request.urlopen(base_url + path, timeout=15) as response:
        return response.headers, response.read()


def _post(base_url, path, body):
    request = urllib.request.Request(
        base_url + path, data=json.dumps(body).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=15) as response:
        return json.loads(response.read())


def _sample_value(text: str, prefix: str) -> float:
    for line in text.splitlines():
        if line.startswith(prefix) and not line.startswith("#"):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"no sample starting with {prefix!r}")


class TestMetricsEndpoint:
    def test_scrape_over_http(self, store):
        with start_server_in_thread(store) as handle:
            headers, body = _get(handle.base_url, "/metrics")
            assert headers["Content-Type"] == (
                "text/plain; version=0.0.4; charset=utf-8"
            )
            text = body.decode()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "# TYPE repro_serve_request_seconds histogram" in text
        assert 'repro_serve_request_seconds_bucket{path="/metrics",le="+Inf"}' in text

    def test_counters_move_between_scrapes(self, store):
        with start_server_in_thread(store) as handle:
            _, first = _get(handle.base_url, "/metrics")
            _post(handle.base_url, "/v1/similar", {"index": 0, "k": 2})
            _get(handle.base_url, "/healthz")
            _, second = _get(handle.base_url, "/metrics")
        before = _sample_value(first.decode(), "repro_serve_requests_total")
        after = _sample_value(second.decode(), "repro_serve_requests_total")
        assert after >= before + 2  # the similar POST and the healthz GET
        batched = _sample_value(
            second.decode(), 'repro_serve_batched_requests_total{batcher="similar"}'
        )
        assert batched >= 1
        healthz_count = _sample_value(
            second.decode(), 'repro_serve_request_seconds_count{path="/healthz"}'
        )
        assert healthz_count >= 1

    def test_every_line_parses_as_exposition(self, store):
        with start_server_in_thread(store) as handle:
            _get(handle.base_url, "/healthz")
            _, body = _get(handle.base_url, "/metrics")
        for line in body.decode().splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                assert len(line.split(" ", 3)) == 4
                continue
            name_part, _, value = line.rpartition(" ")
            assert name_part
            float(value)  # every sample value is a number

    def test_apps_have_isolated_registries(self, store):
        with start_server_in_thread(store) as one, start_server_in_thread(store) as two:
            _post(one.base_url, "/v1/similar", {"index": 0, "k": 2})
            assert one.app.metrics is not two.app.metrics
            similar = 'repro_serve_batched_requests_total{batcher="similar"}'
            _, busy = _get(one.base_url, "/metrics")
            _, idle = _get(two.base_url, "/metrics")
        assert _sample_value(busy.decode(), similar) >= 1
        assert _sample_value(idle.decode(), similar) == 0


class TestHealthzSchema:
    def test_golden_key_layout(self, store):
        with start_server_in_thread(store) as handle:
            _post(handle.base_url, "/v1/similar", {"index": 0, "k": 2})
            _, body = _get(handle.base_url, "/healthz")
        health = json.loads(body)
        assert list(health) == HEALTHZ_KEYS
        assert list(health["batching"]) == ["similar", "fold_in"]
        assert list(health["batching"]["similar"]) == BATCHER_KEYS
        assert list(health["batching"]["fold_in"]) == BATCHER_KEYS
        assert list(health["faults"]) == FAULT_KEYS
        assert list(health["engine"]) == ["compute_backend", "transfers"]
        assert list(health["engine"]["transfers"]) == TRANSFER_KEYS

    def test_healthz_counters_read_from_registry(self, store):
        with start_server_in_thread(store) as handle:
            _post(handle.base_url, "/v1/similar", {"index": 0, "k": 2})
            _, body = _get(handle.base_url, "/healthz")
            registry = handle.app.metrics
        health = json.loads(body)
        snap = registry.snapshot()
        similar = next(
            sample
            for sample in snap["repro_serve_batched_requests_total"]["samples"]
            if sample["labels"] == {"batcher": "similar"}
        )
        assert health["batching"]["similar"]["requests"] == similar["value"]
        # /healthz counted itself into the request counter before rendering.
        served = snap["repro_serve_requests_total"]["samples"][0]["value"]
        assert health["requests_served"] == served

    def test_counter_types_stay_ints(self, store):
        with start_server_in_thread(store) as handle:
            _, body = _get(handle.base_url, "/healthz")
        health = json.loads(body)
        for key in ("connections", "requests_served", "batches", "batched_requests"):
            assert isinstance(health[key], int)
        for key in ("timeouts", "shed", "drains"):
            assert isinstance(health["faults"][key], int)


class TestMicroBatcherMetrics:
    def test_standalone_batchers_stay_isolated(self):
        first = MicroBatcher(lambda payloads: payloads)
        second = MicroBatcher(lambda payloads: payloads)
        first._m_batches.inc()
        assert first.batches == 1
        assert second.batches == 0

    def test_stats_json_matches_stats(self):
        batcher = MicroBatcher(lambda payloads: payloads)
        batcher._m_batches.inc(2)
        batcher._m_requests.inc(5)
        batcher.last_batch_size = 3
        assert json.loads(batcher.stats_json()) == batcher.stats()

    def test_registry_backed_batcher_publishes_counters(self):
        registry = MetricsRegistry()
        batcher = MicroBatcher(
            lambda payloads: payloads, metrics=registry, name="similar"
        )
        batcher._m_requests.inc(4)
        sample = registry.snapshot()["repro_serve_batched_requests_total"]["samples"]
        assert sample[0]["labels"] == {"batcher": "similar"}
        assert sample[0]["value"] == 4
        assert batcher.requests == 4
