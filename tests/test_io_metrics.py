"""Tests for model persistence (repro.io) and factor metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import (
    congruence,
    factor_match_score,
    parafac2_factor_match,
    subspace_angle,
)
from repro.decomposition.dpar2 import compress_tensor, dpar2
from repro.io import load_compressed, load_result, save_compressed, save_result
from repro.util.config import DecompositionConfig


@pytest.fixture
def fitted(structured_tensor):
    config = DecompositionConfig(rank=4, max_iterations=6, random_state=0)
    return dpar2(structured_tensor, config)


class TestResultRoundtrip:
    def test_factors_preserved(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_result(path, fitted)
        loaded = load_result(path)
        np.testing.assert_array_equal(loaded.H, fitted.H)
        np.testing.assert_array_equal(loaded.V, fitted.V)
        np.testing.assert_array_equal(loaded.S, fitted.S)
        for Qa, Qb in zip(loaded.Q, fitted.Q):
            np.testing.assert_array_equal(Qa, Qb)

    def test_metadata_preserved(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_result(path, fitted)
        loaded = load_result(path)
        assert loaded.method == fitted.method
        assert loaded.n_iterations == fitted.n_iterations
        assert loaded.converged == fitted.converged
        assert loaded.preprocessed_bytes == fitted.preprocessed_bytes

    def test_history_preserved(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_result(path, fitted)
        loaded = load_result(path)
        assert len(loaded.history) == len(fitted.history)
        assert loaded.history[0].criterion == pytest.approx(
            fitted.history[0].criterion
        )

    def test_fitness_identical_after_roundtrip(self, fitted, tmp_path,
                                               structured_tensor):
        path = tmp_path / "model.npz"
        save_result(path, fitted)
        loaded = load_result(path)
        assert loaded.fitness(structured_tensor) == pytest.approx(
            fitted.fitness(structured_tensor)
        )

    def test_wrong_kind_rejected(self, fitted, structured_tensor, tmp_path):
        path = tmp_path / "compressed.npz"
        save_compressed(path, compress_tensor(structured_tensor, 4,
                                              random_state=0))
        with pytest.raises(ValueError, match="expected"):
            load_result(path)

    def test_non_model_archive_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, x=np.ones(3))
        with pytest.raises(ValueError, match="not a repro model"):
            load_result(path)


class TestCompressedRoundtrip:
    def test_roundtrip(self, structured_tensor, tmp_path):
        compressed = compress_tensor(structured_tensor, 4, random_state=0)
        path = tmp_path / "compressed.npz"
        save_compressed(path, compressed)
        loaded = load_compressed(path)
        np.testing.assert_array_equal(loaded.D, compressed.D)
        np.testing.assert_array_equal(loaded.E, compressed.E)
        np.testing.assert_array_equal(loaded.F_blocks, compressed.F_blocks)
        for Aa, Ab in zip(loaded.A, compressed.A):
            np.testing.assert_array_equal(Aa, Ab)

    def test_loaded_compression_drives_dpar2(self, structured_tensor,
                                             tmp_path):
        compressed = compress_tensor(structured_tensor, 4, random_state=0)
        path = tmp_path / "compressed.npz"
        save_compressed(path, compressed)
        loaded = load_compressed(path)
        config = DecompositionConfig(rank=4, max_iterations=5,
                                     tolerance=0.0, random_state=0)
        a = dpar2(structured_tensor, config, compressed=compressed)
        b = dpar2(structured_tensor, config, compressed=loaded)
        np.testing.assert_allclose(a.V, b.V, atol=1e-12)


class TestCongruence:
    def test_identical_factors(self, rng):
        A = rng.standard_normal((10, 3))
        assert congruence(A, A) == pytest.approx(1.0)

    def test_permutation_invariant(self, rng):
        A = rng.standard_normal((10, 3))
        assert congruence(A, A[:, [2, 0, 1]]) == pytest.approx(1.0)

    def test_sign_invariant(self, rng):
        A = rng.standard_normal((10, 3))
        B = A * np.array([1.0, -1.0, 1.0])
        assert congruence(A, B) == pytest.approx(1.0)

    def test_scale_invariant(self, rng):
        A = rng.standard_normal((10, 3))
        assert congruence(A, A * 7.3) == pytest.approx(1.0)

    def test_unrelated_factors_low(self, rng):
        A = rng.standard_normal((200, 3))
        B = rng.standard_normal((200, 3))
        assert congruence(A, B) < 0.5

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError, match="shapes differ"):
            congruence(rng.standard_normal((5, 2)),
                       rng.standard_normal((5, 3)))


class TestSubspaceAngle:
    def test_same_subspace_zero(self, rng):
        A = rng.standard_normal((10, 3))
        mixing = rng.standard_normal((3, 3)) + 3 * np.eye(3)
        assert subspace_angle(A, A @ mixing) == pytest.approx(0.0, abs=1e-6)

    def test_orthogonal_subspaces(self):
        A = np.eye(6)[:, :2]
        B = np.eye(6)[:, 3:5]
        assert subspace_angle(A, B) == pytest.approx(np.pi / 2)

    def test_row_mismatch(self, rng):
        with pytest.raises(ValueError, match="different spaces"):
            subspace_angle(rng.standard_normal((5, 2)),
                           rng.standard_normal((6, 2)))


class TestFactorMatchScore:
    def test_identical(self, rng):
        factors = (rng.standard_normal((8, 3)), rng.standard_normal((5, 3)))
        assert factor_match_score(factors, factors) == pytest.approx(1.0)

    def test_permuted(self, rng):
        A = rng.standard_normal((8, 3))
        B = rng.standard_normal((5, 3))
        perm = [1, 2, 0]
        score = factor_match_score((A, B), (A[:, perm], B[:, perm]))
        assert score == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            factor_match_score((), ())

    def test_rank_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="column count"):
            factor_match_score(
                (rng.standard_normal((5, 2)),),
                (rng.standard_normal((5, 3)),),
            )


class TestParafac2FactorMatch:
    def test_same_seed_runs_match(self, structured_tensor):
        config = DecompositionConfig(rank=4, max_iterations=10,
                                     random_state=0)
        a = dpar2(structured_tensor, config)
        b = dpar2(structured_tensor, config)
        assert parafac2_factor_match(a, b) == pytest.approx(1.0)

    def test_methods_recover_same_structure(self):
        """On clean low-rank data, DPar2 and PARAFAC2-ALS must converge to
        essentially the same V/S factors."""
        from repro.decomposition.parafac2_als import parafac2_als
        from repro.tensor.random import low_rank_irregular_tensor

        tensor = low_rank_irregular_tensor([40, 50, 45], 25, rank=3,
                                           noise=0.0, random_state=4)
        config = DecompositionConfig(rank=3, max_iterations=80,
                                     tolerance=1e-12, power_iterations=2,
                                     random_state=4)
        fast = dpar2(tensor, config)
        exact = parafac2_als(tensor, config)
        assert parafac2_factor_match(fast, exact) > 0.9
