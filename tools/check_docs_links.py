"""Fail on broken intra-repo links in README.md and docs/.

Scans markdown files for inline links/images ``[text](target)`` and
verifies every *intra-repo* target resolves to an existing file:

* ``http(s)://`` and ``mailto:`` targets are skipped (external);
* targets that resolve outside the repository root are skipped — the CI
  badge's ``../../actions/...`` path is a GitHub-side URL, not a file;
* ``#fragment`` suffixes are checked against the GitHub-style anchor
  slugs of the target file's headings (pure ``#anchor`` links check the
  current file).

Usage::

    python tools/check_docs_links.py            # README.md + docs/*.md
    python tools/check_docs_links.py FILE...    # explicit file list

Exits non-zero listing every broken link.  Used by the CI docs job and
``tests/test_docs.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links and images.  [text](target "title") keeps only the target.
_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
_INLINE_CODE = re.compile(r"`[^`]*`")


def _anchor_slug(heading: str) -> str:
    """GitHub's heading → anchor transform (close enough for our docs)."""
    text = re.sub(r"[`*_\[\]()]", "", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors_of(path: Path) -> set[str]:
    return {
        _anchor_slug(match)
        for match in _HEADING.findall(path.read_text(encoding="utf-8"))
    }


def check_file(path: Path) -> list[str]:
    """Return a list of broken-link descriptions for one markdown file."""
    text = path.read_text(encoding="utf-8")
    # Links inside code blocks/spans are examples, not navigation.
    text = _CODE_FENCE.sub("", text)
    text = _INLINE_CODE.sub("", text)
    problems = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        raw, _, fragment = target.partition("#")
        if not raw:  # same-file anchor
            if fragment and _anchor_slug(fragment) not in _anchors_of(path):
                problems.append(f"{path}: broken anchor #{fragment}")
            continue
        resolved = (path.parent / raw).resolve()
        if REPO_ROOT not in resolved.parents and resolved != REPO_ROOT:
            continue  # points outside the repo (e.g. the CI badge URL)
        if not resolved.exists():
            problems.append(f"{path}: broken link -> {target}")
            continue
        if fragment and resolved.suffix == ".md":
            if _anchor_slug(fragment) not in _anchors_of(resolved):
                problems.append(f"{path}: broken anchor -> {target}")
    return problems


def default_files() -> list[Path]:
    """README.md plus every markdown file under docs/."""
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("**/*.md")))
    return [f for f in files if f.exists()]


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    files = [Path(a).resolve() for a in argv] if argv else default_files()
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(f"BROKEN: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"docs links ok ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
