"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the single substrate every tier records into — the
decomposition sweeps, the shard transports, the streaming updater, and
the serving front all create their metrics here and the Prometheus
``/metrics`` endpoint (:mod:`repro.obs.exposition`) renders whatever is
registered.  Design constraints, in order:

* **Cheap on the hot path.**  ``Counter.inc`` is one attribute add;
  ``Histogram.observe`` is one ``bisect`` over a handful of bounds.  A
  registry constructed with ``enabled=False`` hands out shared null
  metrics whose methods are empty — instrumented code needs no ``if``
  guards, and the overhead contract (``benchmarks/bench_kernels.py``
  gates enabled-vs-disabled at <= 5% on the sweep hot path) stays
  honest.
* **Deterministic, JSON-safe snapshots.**  :meth:`MetricsRegistry.snapshot`
  returns plain dicts/lists/numbers with families sorted by name and
  samples sorted by label set, so two snapshots of identical state
  serialize byte-identically.
* **Stdlib only.**  No prometheus_client; the exposition renderer lives
  in this package.

Metric names follow ``repro_<tier>_<what>[_<unit>][_total]`` — see
``docs/observability.md`` for the full naming scheme.

Mutation is not locked: under CPython the single bytecode-level add is
safe enough for monitoring counters, and every writer in this repo
mutates from one thread per metric (the event loop, the sweep loop, or
the coordinator).  Registration *is* locked, since lazily-created
metrics can race across threads.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Default histogram bounds (seconds) — tuned for request/kernel
#: latencies from sub-millisecond batched kernels up to multi-second
#: decomposition sweeps.  The implicit ``+Inf`` bucket is always added.
DEFAULT_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Counter:
    """A monotonically increasing count.

    Attributes
    ----------
    value:
        Current total.  Stays an ``int`` as long as every increment is an
        ``int`` (the repo-wide convention), so JSON rendering never grows
        a spurious ``.0``.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter.

        Parameters
        ----------
        amount:
            Increment; negative values raise ``ValueError`` because a
            counter that can go down is a gauge.
        """
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down — or track a live callable.

    Parameters
    ----------
    callback:
        Optional zero-argument callable; when given, reads of ``value``
        invoke it instead of returning stored state (used for occupancy
        gauges like batcher queue depth, where the truthful value is
        whatever the queue holds *at scrape time*).
    """

    __slots__ = ("_value", "_callback")

    def __init__(self, callback=None) -> None:
        self._value: int | float = 0
        self._callback = callback

    def set(self, value: int | float) -> None:
        """Replace the gauge value (ignored while a callback is bound)."""
        self._value = value

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` to the stored value."""
        self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        """Subtract ``amount`` from the stored value."""
        self._value -= amount

    @property
    def value(self) -> int | float:
        """Current value — the callback's answer when one is bound."""
        if self._callback is not None:
            return self._callback()
        return self._value


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (<=) semantics.

    Parameters
    ----------
    buckets:
        Strictly increasing finite upper bounds.  An implicit ``+Inf``
        bucket always terminates the list.

    Attributes
    ----------
    bounds:
        The finite bucket bounds, as given.
    counts:
        Per-bucket observation counts (``len(bounds) + 1`` slots, the
        last being the ``+Inf`` overflow).  *Not* cumulative — the
        exposition layer accumulates.
    sum:
        Sum of every observed value.
    count:
        Total number of observations.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets=DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its ``le`` bucket."""
        self.sum += value
        self.count += 1
        self.counts[bisect_left(self.bounds, value)] += 1


class _NullCounter:
    """No-op stand-in handed out by a disabled registry."""

    __slots__ = ()
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Discard the increment."""


class _NullGauge:
    """No-op stand-in handed out by a disabled registry."""

    __slots__ = ()
    value = 0

    def set(self, value: int | float) -> None:
        """Discard the value."""

    def inc(self, amount: int | float = 1) -> None:
        """Discard the increment."""

    def dec(self, amount: int | float = 1) -> None:
        """Discard the decrement."""


class _NullHistogram:
    """No-op stand-in handed out by a disabled registry."""

    __slots__ = ()
    bounds = ()
    counts = ()
    sum = 0.0
    count = 0

    def observe(self, value: float) -> None:
        """Discard the observation."""


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _labels_key(labels: dict | None) -> tuple:
    """Normalize a labels dict to a hashable, sorted identity key."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Registry of named metric families, each fanned out by label set.

    A *family* is one metric name with one kind (counter / gauge /
    histogram) and one help string; each distinct label set under the
    name is its own metric object.  Asking twice for the same
    ``(name, labels)`` returns the same object, so instrumented code can
    re-resolve its metrics without caching handles (though hot paths
    should cache anyway — resolution is a dict lookup plus key build).

    Parameters
    ----------
    enabled:
        When False the registry hands out shared null metrics with empty
        method bodies and snapshots as ``{}`` — the "observability off"
        configuration the overhead gate benchmarks against.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: dict[str, dict] = {}

    # ------------------------------------------------------------------ #

    def _get(self, kind: str, name: str, help_text: str, labels, factory):
        if not self.enabled:
            return {
                "counter": _NULL_COUNTER,
                "gauge": _NULL_GAUGE,
                "histogram": _NULL_HISTOGRAM,
            }[kind]
        key = _labels_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = {"kind": kind, "help": help_text, "children": {}}
                self._families[name] = family
            elif family["kind"] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family['kind']}, "
                    f"asked for {kind}"
                )
            child = family["children"].get(key)
            if child is None:
                child = factory()
                family["children"][key] = child
            return child

    def counter(self, name: str, help_text: str = "", *, labels: dict | None = None):
        """Return (creating if needed) the counter for ``(name, labels)``."""
        return self._get("counter", name, help_text, labels, Counter)

    def gauge(
        self,
        name: str,
        help_text: str = "",
        *,
        labels: dict | None = None,
        callback=None,
    ):
        """Return (creating if needed) the gauge for ``(name, labels)``.

        Parameters
        ----------
        name, help_text, labels:
            Family name, help string, and label set.
        callback:
            Optional live-value callable, bound only at creation time
            (re-resolving an existing gauge ignores it).
        """
        return self._get("gauge", name, help_text, labels, lambda: Gauge(callback))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        *,
        labels: dict | None = None,
        buckets=DEFAULT_LATENCY_BUCKETS,
    ):
        """Return (creating if needed) the histogram for ``(name, labels)``."""
        return self._get(
            "histogram", name, help_text, labels, lambda: Histogram(buckets)
        )

    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """Return a JSON-safe snapshot, deterministic in key order.

        Families sort by name; samples within a family sort by label
        set.  Histogram samples carry *cumulative* ``le`` bucket counts
        (Prometheus semantics) plus ``sum`` and ``count``; the ``+Inf``
        bucket equals ``count``.

        Returns
        -------
        dict
            ``{name: {"type", "help", "samples": [{"labels", ...}]}}``
            with only ints, floats, strings, lists, and dicts inside.
        """
        with self._lock:
            families = [
                (name, fam["kind"], fam["help"], sorted(fam["children"].items()))
                for name, fam in sorted(self._families.items())
            ]
        out: dict = {}
        for name, kind, help_text, children in families:
            samples = []
            for key, metric in children:
                labels = {k: v for k, v in key}
                if kind == "histogram":
                    cumulative: dict[str, int] = {}
                    running = 0
                    for bound, n in zip(metric.bounds, metric.counts):
                        running += n
                        cumulative[_format_bound(bound)] = running
                    cumulative["+Inf"] = metric.count
                    samples.append(
                        {
                            "labels": labels,
                            "buckets": cumulative,
                            "sum": metric.sum,
                            "count": metric.count,
                        }
                    )
                else:
                    samples.append({"labels": labels, "value": metric.value})
            out[name] = {"type": kind, "help": help_text, "samples": samples}
        return out

    def reset(self) -> None:
        """Drop every registered family (test isolation helper)."""
        with self._lock:
            self._families.clear()


def _format_bound(bound: float) -> str:
    """Render a finite bucket bound the way Prometheus clients do."""
    if bound == int(bound):
        return str(int(bound)) + ".0"
    return repr(bound)


_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """Return the process-wide default registry.

    The decomposition, sharding, and streaming tiers record here; a
    served app owns its own registry (one server per process in
    production makes that the same thing) but can be handed this one.
    """
    return _DEFAULT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; return the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Temporarily install ``registry`` as the process-wide default.

    Parameters
    ----------
    registry:
        The registry active inside the ``with`` block (yielded back).
    """
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
