"""Prometheus text-exposition rendering for a :class:`MetricsRegistry`.

Implements the subset of the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ the
repo's metrics need: ``# HELP`` / ``# TYPE`` headers, counter and gauge
samples, and histogram families expanded into cumulative
``_bucket{le=...}`` series plus ``_sum`` and ``_count``.  The output is
what ``GET /metrics`` on the serve transport returns, with content type
:data:`CONTENT_TYPE`.

Rendering is deterministic: families sort by name and samples by label
set (inherited from :meth:`MetricsRegistry.snapshot`), so two renders of
identical state are byte-identical — which lets tests golden-check the
format and lets ``diff`` compare scrapes.
"""

from __future__ import annotations

__all__ = ["CONTENT_TYPE", "render"]

#: Content-Type header value for the exposition body.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_help(text: str) -> str:
    """Escape a HELP string (backslash and newline, per the format spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    """Escape a label value (backslash, quote, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels_text(labels: dict, extra: tuple | None = None) -> str:
    """Render a label dict (plus an optional ``(name, value)``) as ``{...}``."""
    pairs = [(k, str(v)) for k, v in labels.items()]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _num(value) -> str:
    """Render a sample value: ints plain, floats via ``repr``."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render(registry) -> str:
    """Render ``registry`` in Prometheus text exposition format.

    Parameters
    ----------
    registry:
        A :class:`~repro.obs.metrics.MetricsRegistry` (anything with a
        compatible ``snapshot()``).

    Returns
    -------
    str
        The exposition body, ending in a newline (empty string for an
        empty or disabled registry).
    """
    lines: list[str] = []
    for name, family in registry.snapshot().items():
        kind = family["type"]
        help_text = family["help"]
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if kind == "histogram":
                for bound, cumulative in sample["buckets"].items():
                    lines.append(
                        f"{name}_bucket{_labels_text(labels, ('le', bound))} "
                        f"{cumulative}"
                    )
                lines.append(f"{name}_sum{_labels_text(labels)} {_num(sample['sum'])}")
                lines.append(
                    f"{name}_count{_labels_text(labels)} {_num(sample['count'])}"
                )
            else:
                lines.append(f"{name}{_labels_text(labels)} {_num(sample['value'])}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"
