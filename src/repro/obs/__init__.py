"""Unified observability substrate: metrics registry, trace spans, exposition.

Three stdlib-only pieces, wired through every stateful tier (see
``docs/observability.md``):

* :mod:`repro.obs.metrics` — process-wide registry of counters, gauges,
  and fixed-bucket histograms; cheap no-ops when disabled; deterministic
  JSON-safe snapshots.
* :mod:`repro.obs.trace` — hierarchical spans with explicit parent ids
  and monotonic timing, emitted to a JSONL sink (``REPRO_TRACE`` env or
  ``--trace`` CLI flags); off by default at one ``None`` check per site.
* :mod:`repro.obs.exposition` — Prometheus text rendering backing the
  serve transport's ``GET /metrics`` endpoint.
"""

from repro.obs import exposition, trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "trace",
    "exposition",
]
