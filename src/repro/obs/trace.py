"""Hierarchical trace spans with a JSONL event sink.

A *span* is one timed region of work with a name, a small attribute
dict, and an explicit parent — the span that was open (in the same
thread) when it started.  Nesting follows the call structure of the
instrumented code: ``run -> sweep -> phase`` on the decomposition side,
``absorb -> checkpoint`` on the streaming side, ``request -> batch ->
kernel`` on the serving side.

Tracing is **off by default** and costs one ``None`` check per
instrumented site while off (:func:`span` returns a shared null
context manager).  It turns on process-wide via::

    REPRO_TRACE=/tmp/run.jsonl python -m repro ...   # env bootstrap
    repro decompose --trace /tmp/run.jsonl ...       # CLI flag

Each completed span appends one JSON line to the sink::

    {"id": 3, "parent": 1, "name": "sweep", "start": 0.0012,
     "dur": 0.0431, "attrs": {"iteration": 0}}

Determinism is part of the contract: span ids are a sequence counter
assigned at span *entry*, so the same code path produces the same ids,
ordering, and parentage on every run — only ``start``/``dur`` vary.
Lines are emitted at span *exit* (children before parents); rebuilding
the tree sorts by id.  ``repro trace summarize`` renders the tree with
aggregate timings (:func:`summarize`).

The tracer never touches RNG state or array values, so factors stay
bitwise-identical with tracing enabled (CI-gated in
``tests/test_obs_trace.py``).
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.util.timing import Stopwatch

__all__ = ["Tracer", "Span", "start", "stop", "active", "enabled", "span", "summarize"]


class Span:
    """One timed region: context manager that emits on exit.

    Created through :func:`span` / :meth:`Tracer.span`; the id and
    parent are bound at ``__enter__`` so entry order — not construction
    order — numbers the tree.

    Attributes
    ----------
    name:
        Span name (dotted, e.g. ``"dpar2.sweep"``).
    attrs:
        JSON-safe annotations; extend via :meth:`annotate`.
    span_id, parent_id:
        Assigned at entry (``parent_id`` is ``None`` for roots).
    """

    __slots__ = (
        "_tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "_watch",
        "_interval",
        "_start",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self._watch = Stopwatch()
        self._interval = None
        self._start = 0.0

    def annotate(self, **attrs) -> None:
        """Merge JSON-safe key/values into the span's attributes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        """Open the span: assign its id, record its parent, start timing."""
        self.span_id, self.parent_id, self._start = self._tracer._open(self)
        self._interval = self._watch.span()
        self._interval.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Close the span and emit its JSONL line (exceptions propagate)."""
        self._interval.__exit__(None, None, None)
        self._interval = None
        self._tracer._close(self, self._watch.elapsed)
        return False


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()
    span_id = None
    parent_id = None

    def annotate(self, **attrs) -> None:
        """Discard the annotations."""

    def __enter__(self) -> "_NullSpan":
        """No-op enter."""
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """No-op exit (exceptions propagate)."""
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Owns the span-id sequence, per-thread span stacks, and the sink.

    Parameters
    ----------
    path:
        JSONL sink file, truncated on open.  Lines are flushed as they
        are written so a crashed run still leaves a readable prefix.

    Notes
    -----
    Ids are allocated under a lock (deterministic without threads;
    merely consistent with them), and each thread keeps its own open
    stack so spans on worker threads parent correctly within their
    thread instead of interleaving with the main thread's stack.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._file = open(self.path, "w", encoding="utf-8")
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()
        self._t0 = time.perf_counter()

    # ------------------------------------------------------------------ #

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, span_obj: Span) -> tuple[int, int | None, float]:
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack.append(span_obj)
        return span_id, parent, time.perf_counter() - self._t0

    def _close(self, span_obj: Span, duration: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span_obj:
            stack.pop()
        else:  # out-of-order exit: drop it wherever it sits
            try:
                stack.remove(span_obj)
            except ValueError:
                pass
        line = json.dumps(
            {
                "id": span_obj.span_id,
                "parent": span_obj.parent_id,
                "name": span_obj.name,
                "start": round(span_obj._start, 9),
                "dur": round(duration, 9),
                "attrs": span_obj.attrs,
            },
            default=str,
        )
        with self._lock:
            if not self._file.closed:
                self._file.write(line + "\n")
                self._file.flush()

    # ------------------------------------------------------------------ #

    def span(self, name: str, **attrs) -> Span:
        """Create a span under this tracer (enter it to start timing)."""
        return Span(self, name, attrs)

    def close(self) -> None:
        """Flush and close the sink."""
        with self._lock:
            if not self._file.closed:
                self._file.close()


_ACTIVE: Tracer | None = None


def start(path: str) -> Tracer:
    """Activate process-wide tracing into ``path`` (replacing any tracer).

    Parameters
    ----------
    path:
        JSONL sink file; truncated.

    Returns
    -------
    Tracer
        The newly active tracer.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = Tracer(path)
    return _ACTIVE


def stop() -> None:
    """Deactivate tracing and close the sink (no-op when inactive)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
        _ACTIVE = None


def active() -> Tracer | None:
    """Return the active tracer, or ``None`` while tracing is off."""
    return _ACTIVE


def enabled() -> bool:
    """True while a tracer is active."""
    return _ACTIVE is not None


def span(name: str, **attrs):
    """Open a span on the active tracer — or a shared no-op when off.

    The instrumented-code idiom; costs one global read and one ``None``
    check when tracing is disabled::

        with trace.span("dpar2.sweep", iteration=i) as sp:
            ...
            sp.annotate(error_sq=err)

    Parameters
    ----------
    name:
        Span name (dotted hierarchy by convention).
    **attrs:
        Initial JSON-safe annotations.

    Returns
    -------
    Span or _NullSpan
        A context manager either way.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


# ---------------------------------------------------------------------- #
# reading traces back
# ---------------------------------------------------------------------- #


def load_spans(path: str) -> list[dict]:
    """Parse a JSONL trace sink into span dicts sorted by id (entry order).

    Parameters
    ----------
    path:
        File written by a :class:`Tracer`.

    Returns
    -------
    list of dict
        One dict per span line, sorted by ``id``.  Malformed trailing
        lines (a crash mid-write) are skipped.
    """
    spans: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and "id" in record:
                spans.append(record)
    spans.sort(key=lambda s: s["id"])
    return spans


def tree_shape(spans: list[dict]) -> list[tuple]:
    """Reduce spans to their timing-free structure for determinism checks.

    Returns
    -------
    list of tuple
        ``(id, parent, name)`` per span, in id order — equal across two
        runs exactly when the span trees match in ids, ordering, and
        parentage.
    """
    return [(s["id"], s["parent"], s["name"]) for s in spans]


def summarize(path: str) -> str:
    """Render a trace file as an aggregated span tree.

    Sibling spans sharing a name under the same parent *path* collapse
    into one line with count / total / mean / max, so a 50-sweep run
    reads as five lines instead of two hundred.

    Parameters
    ----------
    path:
        JSONL trace sink.

    Returns
    -------
    str
        Human-readable tree, deepest-first indentation, two spaces per
        level.
    """
    spans = load_spans(path)
    if not spans:
        return f"(no spans in {path})"
    children: dict[int | None, list[dict]] = {}
    for record in spans:
        children.setdefault(record["parent"], []).append(record)

    lines: list[str] = []

    def _walk(parents: list[int | None], depth: int) -> None:
        groups: dict[str, list[dict]] = {}
        for parent in parents:
            for record in children.get(parent, []):
                groups.setdefault(record["name"], []).append(record)
        for name, members in groups.items():
            durs = [m["dur"] for m in members]
            total = sum(durs)
            label = f"{'  ' * depth}{name}"
            stats = f"{len(members):>5}x  total {_fmt(total)}"
            if len(members) > 1:
                stats += f"  mean {_fmt(total / len(members))}  max {_fmt(max(durs))}"
            lines.append(f"{label:<40} {stats}")
            _walk([member["id"] for member in members], depth + 1)

    _walk([None], 0)
    return "\n".join(lines)


def _fmt(seconds: float) -> str:
    """Fixed-width duration rendering for :func:`summarize`."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.1f}ms"
    return f"{seconds:8.2f}s "


_ENV_PATH = os.environ.get("REPRO_TRACE")
if _ENV_PATH:  # pragma: no cover - exercised via subprocess tests
    start(_ENV_PATH)
