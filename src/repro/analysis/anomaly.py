"""Anomaly scoring from a fitted PARAFAC2 model.

Fault detection is one of PARAFAC2's canonical applications (the paper
cites Wise et al. [14], semiconductor etch monitoring): fit the model to
normal operation, then flag slices or time steps the model reconstructs
poorly.  Scores are plain relative reconstruction errors so they compose
with any thresholding policy.
"""

from __future__ import annotations

import numpy as np

from repro.decomposition.result import Parafac2Result
from repro.tensor.irregular import IrregularTensor


def slice_anomaly_scores(
    result: Parafac2Result,
    tensor: IrregularTensor,
) -> np.ndarray:
    """Per-slice relative reconstruction error ``‖Xk − X̂k‖ / ‖Xk‖``.

    A slice that does not follow the shared latent structure (a faulty
    batch, a manipulated stock, a corrupted recording) scores high.
    Zero-norm slices score 0 by convention.
    """
    if tensor.n_slices != result.n_slices:
        raise ValueError(
            f"tensor has {tensor.n_slices} slices, model has {result.n_slices}"
        )
    scores = np.empty(tensor.n_slices)
    for k, Xk in enumerate(tensor):
        denom = np.linalg.norm(Xk)
        if denom == 0.0:
            scores[k] = 0.0
            continue
        residual = Xk - result.reconstruct_slice(k)
        scores[k] = np.linalg.norm(residual) / denom
    return scores


def row_anomaly_scores(
    result: Parafac2Result,
    tensor: IrregularTensor,
    k: int,
) -> np.ndarray:
    """Per-time-step relative error within slice ``k``.

    Localizes *when* a slice deviates: returns one score per row of
    ``Xk``, each the residual norm of that row over the row norm (rows
    with zero norm score 0).
    """
    if not 0 <= k < tensor.n_slices:
        raise IndexError(f"slice {k} out of range [0, {tensor.n_slices})")
    Xk = tensor[k]
    residual = Xk - result.reconstruct_slice(k)
    row_norms = np.linalg.norm(Xk, axis=1)
    res_norms = np.linalg.norm(residual, axis=1)
    return np.where(row_norms > 0, res_norms / np.where(row_norms > 0, row_norms, 1.0), 0.0)


def top_anomalies(
    result: Parafac2Result,
    tensor: IrregularTensor,
    k: int = 5,
) -> list[tuple[int, float]]:
    """The ``k`` most anomalous slices, worst first."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    scores = slice_anomaly_scores(result, tensor)
    order = sorted(range(scores.size), key=lambda i: (-scores[i], i))
    return [(i, float(scores[i])) for i in order[: min(k, scores.size)]]


def anomaly_threshold(scores, *, n_sigmas: float = 3.0) -> float:
    """A robust flagging threshold: ``median + n_sigmas · MAD·1.4826``.

    The median absolute deviation resists contamination by the anomalies
    themselves; 1.4826 rescales MAD to a Gaussian sigma.
    """
    values = np.asarray(scores, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("scores must be non-empty")
    if n_sigmas <= 0:
        raise ValueError(f"n_sigmas must be positive, got {n_sigmas}")
    median = float(np.median(values))
    mad = float(np.median(np.abs(values - median)))
    return median + n_sigmas * 1.4826 * mad
