"""Factor-quality metrics beyond fitness.

Fitness (the paper's headline metric) measures reconstruction, but factor
*recovery* matters for the discovery use cases: did two runs (or two
methods, or streaming vs batch) find the same latent structure?  These
metrics are standard in the tensor literature:

* :func:`congruence` — Tucker's congruence coefficient between factor
  matrices, maximized over column permutation and sign.
* :func:`subspace_angle` — largest principal angle between the column
  spaces of two factors (permutation-free comparison).
* :func:`factor_match_score` — the product-congruence FMS commonly used to
  compare CP/PARAFAC2 solutions.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_matrix


def _normalized_columns(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=0)
    safe = np.where(norms > 0, norms, 1.0)
    return matrix / safe


def _greedy_column_assignment(score: np.ndarray) -> list[tuple[int, int]]:
    """Greedy max-weight matching of columns by |score| (R is small, and
    greedy is the standard choice for congruence alignment)."""
    R = score.shape[0]
    available_rows = set(range(R))
    available_cols = set(range(R))
    pairs: list[tuple[int, int]] = []
    flat_order = np.argsort(np.abs(score), axis=None)[::-1]
    for flat in flat_order:
        i, j = divmod(int(flat), R)
        if i in available_rows and j in available_cols:
            pairs.append((i, j))
            available_rows.remove(i)
            available_cols.remove(j)
            if not available_rows:
                break
    return pairs


def congruence(a, b) -> float:
    """Mean absolute Tucker congruence between matched columns of two factors.

    1.0 means identical factors up to column permutation, sign, and scale;
    values above ~0.95 are conventionally read as "the same factor".
    """
    A = _normalized_columns(check_matrix(a, "a"))
    B = _normalized_columns(check_matrix(b, "b"))
    if A.shape != B.shape:
        raise ValueError(f"factor shapes differ: {A.shape} vs {B.shape}")
    score = A.T @ B
    pairs = _greedy_column_assignment(score)
    return float(np.mean([abs(score[i, j]) for i, j in pairs]))


def subspace_angle(a, b) -> float:
    """Largest principal angle (radians) between two column spaces.

    0 means identical subspaces; π/2 means some direction of one factor is
    orthogonal to all of the other.  Invariant to any invertible mixing of
    columns, so it complements :func:`congruence`.
    """
    A = check_matrix(a, "a")
    B = check_matrix(b, "b")
    if A.shape[0] != B.shape[0]:
        raise ValueError(
            f"factors live in different spaces: {A.shape[0]} vs {B.shape[0]} rows"
        )
    Qa, _ = np.linalg.qr(A)
    Qb, _ = np.linalg.qr(B)
    singular = np.linalg.svd(Qa.T @ Qb, compute_uv=False)
    cos_smallest = np.clip(singular.min() if singular.size else 1.0, -1.0, 1.0)
    return float(np.arccos(cos_smallest))


def factor_match_score(factors_a, factors_b) -> float:
    """Factor match score across a tuple of factor matrices.

    For matched column ``r``, the per-mode congruences are multiplied; the
    FMS is the mean over columns.  Columns are matched greedily on the
    product congruence.  1.0 = identical decompositions (up to permutation,
    sign, and scale split across modes).
    """
    mats_a = [_normalized_columns(check_matrix(f, "factors_a")) for f in factors_a]
    mats_b = [_normalized_columns(check_matrix(f, "factors_b")) for f in factors_b]
    if len(mats_a) != len(mats_b) or not mats_a:
        raise ValueError("factor tuples must be non-empty and equally long")
    R = mats_a[0].shape[1]
    for f in mats_a + mats_b:
        if f.shape[1] != R:
            raise ValueError("all factors must share the column count")

    product = np.ones((R, R))
    for Fa, Fb in zip(mats_a, mats_b):
        if Fa.shape[0] != Fb.shape[0]:
            raise ValueError("matched modes must have equal row counts")
        product *= np.abs(Fa.T @ Fb)
    pairs = _greedy_column_assignment(product)
    return float(np.mean([product[i, j] for i, j in pairs]))


def parafac2_factor_match(result_a, result_b) -> float:
    """FMS between two PARAFAC2 results over their shared factors (V, W).

    The per-slice ``Qk`` have a rotational ambiguity, so the comparison uses
    the common right factor ``V`` and the weight matrix ``S`` (rows of which
    are ``diag(Sk)``) — the quantities the discovery analyses consume.
    """
    return factor_match_score((result_a.V, result_a.S), (result_b.V, result_b.S))
