"""Discovery pipeline — Section IV-E of the paper.

* :mod:`repro.analysis.correlation` — Pearson correlation of the rows of
  ``V`` (feature similarity heatmaps, Fig. 12).
* :mod:`repro.analysis.similarity` — the Gaussian similarity
  ``sim(si, sj) = exp(−γ‖U_si − U_sj‖²)`` between slices (Eq. 10) and the
  similarity-graph adjacency (Eq. 11).
* :mod:`repro.analysis.knn` — k-nearest-neighbour retrieval (Table III(a)).
* :mod:`repro.analysis.rwr` — Random Walk with Restart by power iteration
  (Eq. 12, Table III(b)).
"""

from repro.analysis.anomaly import (
    anomaly_threshold,
    slice_anomaly_scores,
    top_anomalies,
)
from repro.analysis.correlation import (
    feature_correlation,
    model_feature_correlation,
    pearson_correlation,
)
from repro.analysis.knn import top_k_neighbors
from repro.analysis.metrics import (
    congruence,
    factor_match_score,
    parafac2_factor_match,
    subspace_angle,
)
from repro.analysis.rwr import random_walk_with_restart, row_normalize
from repro.analysis.similarity import similarity_graph, slice_similarity

__all__ = [
    "anomaly_threshold",
    "congruence",
    "factor_match_score",
    "feature_correlation",
    "model_feature_correlation",
    "parafac2_factor_match",
    "pearson_correlation",
    "random_walk_with_restart",
    "row_normalize",
    "similarity_graph",
    "slice_anomaly_scores",
    "slice_similarity",
    "subspace_angle",
    "top_anomalies",
    "top_k_neighbors",
]
