"""Slice similarity from temporal factors — Eq. (10) and (11) of the paper.

``sim(si, sj) = exp(−γ ‖U_si − U_sj‖_F²)`` compares the temporal latent
trajectories of two slices.  The paper restricts comparisons to slices with
the same time range so the difference is defined; callers pass the ``Uk``
of such a cohort (e.g. all stocks listed through the query window).
"""

from __future__ import annotations

import numpy as np


def slice_similarity(U_i: np.ndarray, U_j: np.ndarray, gamma: float = 0.01) -> float:
    """Gaussian similarity between two temporal factor matrices (Eq. 10)."""
    A = np.asarray(U_i, dtype=np.float64)
    B = np.asarray(U_j, dtype=np.float64)
    if A.shape != B.shape:
        raise ValueError(
            f"factor shapes differ: {A.shape} vs {B.shape} "
            "(similarity is defined only for slices sharing the time range)"
        )
    if gamma <= 0:
        raise ValueError(f"gamma must be positive, got {gamma}")
    diff = A - B
    return float(np.exp(-gamma * np.sum(diff * diff)))


def similarity_matrix(factors: list[np.ndarray], gamma: float = 0.01) -> np.ndarray:
    """Pairwise Eq.-(10) similarities for a cohort of equal-shaped ``Uk``."""
    if not factors:
        raise ValueError("need at least one factor matrix")
    n = len(factors)
    out = np.ones((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            out[i, j] = out[j, i] = slice_similarity(factors[i], factors[j], gamma)
    return out


def similarity_graph(factors: list[np.ndarray], gamma: float = 0.01) -> np.ndarray:
    """Adjacency matrix of the similarity graph (Eq. 11): zero diagonal."""
    adjacency = similarity_matrix(factors, gamma)
    np.fill_diagonal(adjacency, 0.0)
    return adjacency
