"""k-nearest-neighbour retrieval over slice similarities (Table III(a))."""

from __future__ import annotations

import numpy as np


def top_k_neighbors(
    similarities: np.ndarray,
    query: int,
    k: int = 10,
) -> list[tuple[int, float]]:
    """The ``k`` indices most similar to ``query``, best first.

    Parameters
    ----------
    similarities:
        Square pairwise-similarity matrix (``query`` row is used).
    query:
        Index of the target item (excluded from its own neighbours).
    k:
        Number of neighbours to return (clipped to the available count).

    Returns
    -------
    list of (index, similarity) pairs sorted by descending similarity, ties
    broken by ascending index for determinism.
    """
    S = np.asarray(similarities, dtype=np.float64)
    if S.ndim != 2 or S.shape[0] != S.shape[1]:
        raise ValueError(f"similarities must be square, got shape {S.shape}")
    n = S.shape[0]
    if not 0 <= query < n:
        raise IndexError(f"query {query} out of range [0, {n})")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")

    scores = S[query].copy()
    candidates = [i for i in range(n) if i != query]
    candidates.sort(key=lambda i: (-scores[i], i))
    return [(i, float(scores[i])) for i in candidates[: min(k, len(candidates))]]
