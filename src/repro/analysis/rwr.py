"""Random Walk with Restart — Eq. (12), used for Table III(b).

The paper scores stocks by RWR on the similarity graph:
``r ← (1 − c) Ãᵀ r + c q`` iterated to convergence, with ``Ã`` the
row-normalized adjacency, restart probability ``c = 0.15``, query vector
``q`` one-hot at the target, and at most 100 power iterations.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_probability


def row_normalize(adjacency: np.ndarray) -> np.ndarray:
    """Normalize each row to sum to 1; all-zero rows become uniform.

    The uniform fallback (a "dangling node" fix, as in PageRank) keeps the
    iteration stochastic even for isolated vertices.
    """
    A = np.asarray(adjacency, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {A.shape}")
    if np.any(A < 0):
        raise ValueError("adjacency must be non-negative")
    sums = A.sum(axis=1)
    n = A.shape[0]
    out = np.empty_like(A)
    for i in range(n):
        if sums[i] > 0:
            out[i] = A[i] / sums[i]
        else:
            out[i] = 1.0 / n
    return out


def random_walk_with_restart(
    adjacency: np.ndarray,
    query: int,
    restart_probability: float = 0.15,
    max_iterations: int = 100,
    tolerance: float = 1e-9,
) -> np.ndarray:
    """RWR scores of every node w.r.t. the one-hot ``query`` node.

    Returns the stationary score vector ``r`` (non-negative, sums to 1).
    Power iteration stops early when the L1 change drops below
    ``tolerance``.
    """
    A_tilde = row_normalize(adjacency)
    n = A_tilde.shape[0]
    if not 0 <= query < n:
        raise IndexError(f"query {query} out of range [0, {n})")
    c = check_probability(restart_probability, "restart_probability")
    if max_iterations < 1:
        raise ValueError(f"max_iterations must be >= 1, got {max_iterations}")

    q = np.zeros(n)
    q[query] = 1.0
    r = q.copy()
    transition_t = A_tilde.T
    for _ in range(max_iterations):
        r_next = (1.0 - c) * (transition_t @ r) + c * q
        if np.abs(r_next - r).sum() < tolerance:
            r = r_next
            break
        r = r_next
    return r


def rwr_ranking(
    adjacency: np.ndarray,
    query: int,
    k: int = 10,
    restart_probability: float = 0.15,
    max_iterations: int = 100,
) -> list[tuple[int, float]]:
    """Top-``k`` nodes by RWR score, excluding the query itself."""
    scores = random_walk_with_restart(
        adjacency, query, restart_probability, max_iterations
    )
    order = [i for i in range(scores.size) if i != query]
    order.sort(key=lambda i: (-scores[i], i))
    return [(i, float(scores[i])) for i in order[: min(k, len(order))]]
