"""Feature-similarity analysis via Pearson correlation of ``V`` rows.

Fig. 12 computes the PCC between ``V(i, :)`` and ``V(j, :)`` — each row of
the common right factor is the latent vector of one feature — and renders
the matrix as a heatmap for a hand-picked feature subset (4 price features
and 4 technical indicators).
"""

from __future__ import annotations

import numpy as np


def pearson_correlation(a, b) -> float:
    """PCC between two equal-length vectors; 0.0 when either is constant."""
    x = np.asarray(a, dtype=np.float64).ravel()
    y = np.asarray(b, dtype=np.float64).ravel()
    if x.shape != y.shape:
        raise ValueError(f"length mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least two samples")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt(np.sum(xc * xc) * np.sum(yc * yc))
    if denom == 0.0:
        return 0.0
    return float(np.clip(np.sum(xc * yc) / denom, -1.0, 1.0))


def correlation_matrix(rows: np.ndarray) -> np.ndarray:
    """Pairwise PCC between the rows of a matrix (symmetric, unit diagonal)."""
    X = np.asarray(rows, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {X.shape}")
    n = X.shape[0]
    out = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            out[i, j] = out[j, i] = pearson_correlation(X[i], X[j])
    return out


def model_feature_correlation(
    V: np.ndarray,
    H: np.ndarray,
    S: np.ndarray,
    feature_indices=None,
) -> np.ndarray:
    """Model-implied feature correlation (metric-aware variant of Fig. 12).

    The reconstructed slice ``X̂k = Qk H Sk Vᵀ`` implies the cross-feature
    Gram matrix ``X̂kᵀ X̂k = V (Sk Hᵀ H Sk) Vᵀ``; summing the inner metric
    over slices and normalizing to unit diagonal gives the correlation the
    model assigns to each feature pair.  Unlike the raw PCC of ``V`` rows it
    is invariant to component sign/scale indeterminacy, which makes the
    Fig. 12 contrast stable at small ``R``.

    Parameters
    ----------
    V:
        ``J×R`` right factor.
    H:
        ``R×R`` common factor.
    S:
        ``K×R`` diagonal entries of the ``Sk``.
    feature_indices:
        Rows (features) to compare; all of them when omitted.
    """
    V = np.asarray(V, dtype=np.float64)
    H = np.asarray(H, dtype=np.float64)
    S = np.asarray(S, dtype=np.float64)
    if V.ndim != 2 or H.ndim != 2 or S.ndim != 2:
        raise ValueError("V, H, S must all be matrices")
    rank = V.shape[1]
    if H.shape != (rank, rank) or S.shape[1] != rank:
        raise ValueError(
            f"inconsistent shapes: V {V.shape}, H {H.shape}, S {S.shape}"
        )
    HtH = H.T @ H
    metric = np.zeros((rank, rank))
    for k in range(S.shape[0]):
        metric += (S[k][:, None] * HtH) * S[k][None, :]
    gram = V @ metric @ V.T
    scale = np.sqrt(np.clip(np.diag(gram), 1e-300, None))
    correlation = gram / np.outer(scale, scale)
    correlation = np.clip(correlation, -1.0, 1.0)
    if feature_indices is not None:
        indices = list(feature_indices)
        if any(not 0 <= i < V.shape[0] for i in indices):
            raise IndexError(f"feature index out of range [0, {V.shape[0]})")
        correlation = correlation[np.ix_(indices, indices)]
    return correlation


def feature_correlation(
    V: np.ndarray,
    feature_indices=None,
) -> np.ndarray:
    """Fig. 12's heatmap matrix: PCC between selected rows of ``V``.

    Parameters
    ----------
    V:
        The ``J×R`` right factor of a PARAFAC2 model.
    feature_indices:
        Rows (features) to compare; all of them when omitted.
    """
    V = np.asarray(V, dtype=np.float64)
    if V.ndim != 2:
        raise ValueError(f"V must be a matrix, got shape {V.shape}")
    if feature_indices is not None:
        indices = list(feature_indices)
        if any(not 0 <= i < V.shape[0] for i in indices):
            raise IndexError(f"feature index out of range [0, {V.shape[0]})")
        V = V[indices]
    return correlation_matrix(V)
