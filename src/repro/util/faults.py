"""Deterministic fault injection for robustness tests and benchmarks.

The fault-tolerance layer (shard respawn-and-replay, streaming
checkpoints, serving load shedding) is only trustworthy if its recovery
paths run under *reproducible* failures.  This module provides named
injection points ("sites") that production code calls unconditionally —
:func:`check` is a no-op unless a plan is active — and a seeded
:class:`FaultPlan` that decides, deterministically, which occurrences of
which sites fire which fault kind.

Sites are dotted names, e.g. ``shard.call.sweep_phase1`` (before a shard
worker executes that method), ``shard.reply.finalize`` (the reply blob,
eligible for corruption), ``store.publish.staged``, ``mmap_store.append``,
``streaming.absorb``, ``serve.dispatch``.  Kinds:

``crash``
    ``SIGKILL`` the current process — simulates an OOM kill or power loss.
``hang``
    Sleep for ``seconds`` (default one hour) — simulates a wedged worker;
    the parent's heartbeat/timeout machinery must notice.
``slow``
    Sleep briefly (default 50 ms) — latency injection for deadline tests.
``error``
    Raise :class:`FaultInjected` — an application-level exception.
``corrupt``
    Only consulted by :func:`corrupt_bytes`: deterministically flip bytes
    in a payload so checksum verification must catch it.

Activation is process-global (:func:`activate` / :func:`deactivate` /
the :func:`injected` context manager) with an optional *scope* naming the
shard index and worker generation the process represents.  Respawned
shard workers get ``generation >= 1``; specs default to firing only in
generation 0, so an injected crash fires once and the respawn runs clean
— which is exactly what lets recovery tests assert bitwise-identical
results.  Subprocess tests activate plans through the ``REPRO_FAULTS``
environment variable (the JSON of :meth:`FaultPlan.to_json`), read once
at import time.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "activate",
    "active_plan",
    "async_check",
    "check",
    "corrupt_bytes",
    "deactivate",
    "fired",
    "injected",
]

ENV_VAR = "REPRO_FAULTS"

KINDS = ("crash", "hang", "slow", "error", "corrupt")

_DEFAULT_SECONDS = {"hang": 3600.0, "slow": 0.05}


class FaultInjected(RuntimeError):
    """Raised at an injection point by a spec of kind ``error``."""


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: where, what, and which occurrences.

    ``site`` matches exactly, or as a prefix when it ends with ``*``.
    ``shard`` restricts to one shard index (``None`` = any).
    ``generations`` restricts to worker generations (0 = first spawn,
    n = nth respawn); ``None`` fires in every generation, which is how a
    test exhausts the respawn budget.  Occurrence selection: ``at`` names
    1-based occurrence numbers of the (site, shard) counter; when empty,
    ``probability`` fires each occurrence via a seeded hash (still
    deterministic for a fixed plan seed).  ``seconds`` overrides the
    sleep for ``hang`` / ``slow``.
    """

    site: str
    kind: str
    shard: int | None = None
    at: tuple[int, ...] = (1,)
    probability: float = 0.0
    generations: tuple[int, ...] | None = (0,)
    seconds: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {KINDS}")
        object.__setattr__(self, "at", tuple(int(n) for n in self.at))
        if self.generations is not None:
            object.__setattr__(
                self, "generations", tuple(int(g) for g in self.generations)
            )

    def matches(self, site: str, shard: int | None, generation: int) -> bool:
        """Does this spec apply to an occurrence at ``site`` in this scope?"""
        if self.site.endswith("*"):
            if not site.startswith(self.site[:-1]):
                return False
        elif site != self.site:
            return False
        if self.shard is not None and shard != self.shard:
            return False
        if self.generations is not None and generation not in self.generations:
            return False
        return True

    def fires(self, seed: int, site: str, shard: int | None, occurrence: int) -> bool:
        """Deterministically decide whether this occurrence fires."""
        if self.at:
            return occurrence in self.at
        if self.probability <= 0.0:
            return False
        # String seeds hash deterministically (unlike tuples, rejected on
        # 3.11+), so the same plan fires identically on every run.
        digest = random.Random(f"{seed}:{self.site}:{site}:{shard}:{occurrence}")
        return digest.random() < self.probability


@dataclass
class FaultPlan:
    """A seeded, picklable set of :class:`FaultSpec` entries."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        self.specs = tuple(
            spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
            for spec in self.specs
        )

    def to_json(self) -> str:
        """Serialize for the ``REPRO_FAULTS`` environment variable."""
        return json.dumps(
            {"seed": self.seed, "specs": [asdict(spec) for spec in self.specs]}
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        specs = []
        for raw in payload.get("specs", []):
            raw = dict(raw)
            if raw.get("at") is not None:
                raw["at"] = tuple(raw["at"])
            if raw.get("generations") is not None:
                raw["generations"] = tuple(raw["generations"])
            specs.append(FaultSpec(**raw))
        return cls(specs=tuple(specs), seed=int(payload.get("seed", 0)))


@dataclass
class _ActiveState:
    """Module-global injection state for this process."""

    plan: FaultPlan
    shard: int | None = None
    generation: int = 0
    counts: dict = field(default_factory=dict)
    fired: list = field(default_factory=list)


_STATE: _ActiveState | None = None


def activate(
    plan: FaultPlan | None, *, shard: int | None = None, generation: int = 0
) -> None:
    """Install ``plan`` process-wide (``None`` deactivates); resets counters.

    ``shard`` / ``generation`` describe what this process *is* — a shard
    worker passes its index and respawn generation so specs can target it.
    """
    global _STATE
    if plan is None:
        _STATE = None
    else:
        _STATE = _ActiveState(plan=plan, shard=shard, generation=generation)


def deactivate() -> None:
    """Remove any active plan."""
    activate(None)


def active_plan() -> FaultPlan | None:
    """The currently active plan, for shipping into worker processes."""
    return _STATE.plan if _STATE is not None else None


@contextmanager
def injected(plan: FaultPlan, *, shard: int | None = None, generation: int = 0):
    """Context manager: activate ``plan`` for the block, then deactivate."""
    global _STATE
    previous = _STATE
    activate(plan, shard=shard, generation=generation)
    try:
        yield plan
    finally:
        _STATE = previous


def fired() -> list[dict]:
    """Records of faults fired so far in this process (site, kind, shard)."""
    return list(_STATE.fired) if _STATE is not None else []


def _firing_spec(site: str, shard: int | None) -> FaultSpec | None:
    state = _STATE
    if state is None:
        return None
    effective_shard = shard if shard is not None else state.shard
    key = (site, effective_shard)
    occurrence = state.counts.get(key, 0) + 1
    state.counts[key] = occurrence
    for spec in state.plan.specs:
        if not spec.matches(site, effective_shard, state.generation):
            continue
        if spec.fires(state.plan.seed, site, effective_shard, occurrence):
            state.fired.append(
                {
                    "site": site,
                    "kind": spec.kind,
                    "shard": effective_shard,
                    "occurrence": occurrence,
                }
            )
            return spec
    return None


def check(site: str, *, shard: int | None = None) -> None:
    """Injection point: fire any matching crash/hang/slow/error spec.

    A no-op when no plan is active — safe (and cheap) to leave in
    production code paths.
    """
    if _STATE is None:
        return
    spec = _firing_spec(site, shard)
    if spec is None or spec.kind == "corrupt":
        return
    _fire_sync(spec, site)


async def async_check(site: str, *, shard: int | None = None) -> None:
    """Like :func:`check`, but sleeps asynchronously — for event loops.

    ``hang`` / ``slow`` must not block the loop (a blocked loop cannot
    even time the request out), so they await instead.
    """
    if _STATE is None:
        return
    spec = _firing_spec(site, shard)
    if spec is None or spec.kind == "corrupt":
        return
    if spec.kind in ("hang", "slow"):
        import asyncio

        await asyncio.sleep(
            spec.seconds if spec.seconds is not None else _DEFAULT_SECONDS[spec.kind]
        )
        return
    _fire_sync(spec, site)


def _fire_sync(spec: FaultSpec, site: str) -> None:
    if spec.kind == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(60)  # pragma: no cover - SIGKILL is not instantaneous
    elif spec.kind in ("hang", "slow"):
        time.sleep(
            spec.seconds if spec.seconds is not None else _DEFAULT_SECONDS[spec.kind]
        )
    elif spec.kind == "error":
        raise FaultInjected(f"injected fault at {site}")


def corrupt_bytes(site: str, blob: bytes, *, shard: int | None = None) -> bytes:
    """Return ``blob``, deterministically corrupted if a spec fires here.

    Flips one byte per 256 (at least one) with a seeded RNG, so the
    corruption is reproducible and guaranteed to change any checksum.
    """
    if _STATE is None:
        return blob
    spec = _firing_spec(site, shard)
    if spec is None or spec.kind != "corrupt" or not blob:
        return blob
    rng = random.Random(f"{_STATE.plan.seed}:{site}:{shard}:{len(blob)}")
    corrupted = bytearray(blob)
    for _ in range(max(1, len(blob) // 256)):
        index = rng.randrange(len(corrupted))
        corrupted[index] ^= 0xFF
    return bytes(corrupted)


def _bootstrap_from_env() -> None:
    text = os.environ.get(ENV_VAR)
    if not text:
        return
    try:
        plan = FaultPlan.from_json(text)
    except (ValueError, TypeError, KeyError):  # pragma: no cover - bad env JSON
        return
    activate(plan)


_bootstrap_from_env()
