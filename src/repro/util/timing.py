"""Wall-clock measurement helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


class Stopwatch:
    """A cumulative stopwatch usable as a context manager.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch:
    ...     _ = sum(range(10))
    >>> watch.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("stopwatch is already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        delta = time.perf_counter() - self._started_at
        self.elapsed += delta
        self._started_at = None
        return delta

    def reset(self) -> None:
        """Zero the accumulated time.

        Refuses to reset mid-measurement: silently discarding the start
        mark used to leave the watch stopped while the caller believed
        an interval was still being measured, and the next ``stop()``
        raised from a seemingly impossible state.
        """
        if self._started_at is not None:
            raise RuntimeError("cannot reset a running stopwatch; stop() it first")
        self.elapsed = 0.0

    @contextmanager
    def span(self):
        """Measure one interval as a context manager, yielding the watch.

        Equivalent to ``with watch:`` but usable where an explicit
        context-manager *object* is needed (``repro.obs.trace`` drives it
        manually around span enter/exit), and exception-safe: the
        interval is recorded even when the body raises.
        """
        self.start()
        try:
            yield self
        finally:
            self.stop()

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


@dataclass
class TimedResult:
    """Return value of :func:`time_call`: the callee's result plus seconds."""

    value: object
    seconds: float
    repeats: int = 1
    per_repeat: list = field(default_factory=list)


def time_call(func, *args, repeats: int = 1, **kwargs) -> TimedResult:
    """Call ``func`` ``repeats`` times and report the mean wall-clock time.

    The paper reports the average of 5 runs for every timing experiment
    (Section IV-A); the harness uses this helper with ``repeats=5`` for the
    headline tables and ``repeats=1`` for smoke runs.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    durations: list[float] = []
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = func(*args, **kwargs)
        durations.append(time.perf_counter() - t0)
    return TimedResult(
        value=value,
        seconds=sum(durations) / len(durations),
        repeats=repeats,
        per_repeat=durations,
    )


def format_seconds(seconds: float) -> str:
    """Render a duration the way the paper's tables do (3 significant figs)."""
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rem:04.1f}s"
