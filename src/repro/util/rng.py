"""Random-number-generator plumbing.

Every stochastic routine in the library accepts a ``random_state`` argument
that may be ``None``, an integer seed, or a :class:`numpy.random.Generator`.
Funnelling all of them through :func:`as_generator` keeps experiments
reproducible and lets callers share a single generator across stages.
"""

from __future__ import annotations

import numpy as np

RandomState = "None | int | np.random.Generator"


def as_generator(random_state=None) -> np.random.Generator:
    """Coerce ``random_state`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    random_state:
        ``None`` for a fresh non-deterministic generator, an ``int`` seed for
        a deterministic one, or an existing ``Generator`` which is returned
        unchanged (so that state continues to advance for the caller).

    Raises
    ------
    TypeError
        If ``random_state`` is of an unsupported type.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise ValueError(f"seed must be non-negative, got {random_state}")
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int seed, or a numpy Generator; "
        f"got {type(random_state).__name__}"
    )


def spawn_generators(random_state, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent child generators.

    Used by the thread-parallel compression stage so that each worker owns a
    private stream: numpy generators are not thread-safe to share.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = as_generator(random_state)
    seed_seq = np.random.SeedSequence(root.integers(0, 2**63 - 1))
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]
