"""Input validation shared by the public API surface.

The decomposition entry points are user-facing; failing early with a clear
message beats a cryptic numpy broadcast error ten frames deep.
"""

from __future__ import annotations

import numpy as np


def check_matrix(
    array, name: str = "array", *, allow_empty: bool = False, dtype=np.float64
) -> np.ndarray:
    """Validate and canonicalize a 2-D float array.

    Returns a C-contiguous float view/copy of ``array``.  ``dtype`` selects
    the target precision (``float64`` by default); pass ``dtype=None`` to
    preserve an existing float32/float64 dtype (anything else is promoted to
    float64) — used by the dtype-configurable DPar2 pipeline.

    Raises
    ------
    TypeError
        If ``array`` cannot be converted to a numeric ndarray.
    ValueError
        If it is not 2-D, contains NaN/Inf, or is empty while
        ``allow_empty`` is false.
    """
    if dtype is None:
        dtype = (
            array.dtype
            if isinstance(array, np.ndarray)
            and array.dtype in (np.dtype(np.float32), np.dtype(np.float64))
            else np.float64
        )
    try:
        matrix = np.asarray(array, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be convertible to a float array") from exc
    if matrix.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got {matrix.ndim}-D shape {matrix.shape}")
    if not allow_empty and matrix.size == 0:
        raise ValueError(f"{name} must be non-empty, got shape {matrix.shape}")
    if not np.all(np.isfinite(matrix)):
        raise ValueError(f"{name} contains NaN or Inf entries")
    return np.ascontiguousarray(matrix)


def check_positive_int(value, name: str = "value") -> int:
    """Validate a strictly positive integer parameter (e.g. rank, threads)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value, name: str = "value") -> int:
    """Validate an integer parameter that may be zero (e.g. iteration caps)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_rank(rank, *, max_allowed: int | None = None, name: str = "rank") -> int:
    """Validate a decomposition target rank, optionally capped by a dimension."""
    rank = check_positive_int(rank, name)
    if max_allowed is not None and rank > max_allowed:
        raise ValueError(
            f"{name}={rank} exceeds the largest feasible value {max_allowed} "
            "for the given data"
        )
    return rank


def check_probability(value, name: str = "value") -> float:
    """Validate a probability-like float in [0, 1]."""
    try:
        prob = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a float, got {type(value).__name__}") from exc
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {prob}")
    return prob
