"""Shared utilities: RNG handling, timing, validation, and configuration.

These helpers are deliberately small and dependency-free so that every other
subpackage (linear algebra, tensors, decompositions, experiments) can rely on
them without import cycles.
"""

from repro.util.config import DecompositionConfig
from repro.util.faults import FaultInjected, FaultPlan, FaultSpec
from repro.util.rng import as_generator, spawn_generators
from repro.util.timing import Stopwatch, format_seconds, time_call
from repro.util.validation import (
    check_matrix,
    check_non_negative_int,
    check_positive_int,
    check_probability,
    check_rank,
)

__all__ = [
    "DecompositionConfig",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "Stopwatch",
    "as_generator",
    "check_matrix",
    "check_non_negative_int",
    "check_positive_int",
    "check_probability",
    "check_rank",
    "format_seconds",
    "spawn_generators",
    "time_call",
]
