"""Configuration shared by every PARAFAC2 solver in the library.

All four methods (PARAFAC2-ALS, RD-ALS, SPARTan, DPar2) accept the same
knobs so that the experiment harness can sweep them uniformly — exactly how
the paper's evaluation treats its competitors (Section IV-A: rank 10 unless
stated, at most 32 iterations, 6 threads).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.parallel.backends import BACKEND_NAMES
from repro.util.validation import check_non_negative_int, check_positive_int


@dataclass(frozen=True)
class DecompositionConfig:
    """Hyper-parameters for an ALS-style PARAFAC2 run.

    Attributes
    ----------
    rank:
        Target rank ``R`` of the decomposition.
    max_iterations:
        Hard cap on ALS sweeps; the paper uses 32.  Zero is allowed and
        means "preprocess and initialize only" (no sweeps).
    tolerance:
        Relative change of the convergence criterion below which iteration
        stops ("the error ceases to decrease").
    n_threads:
        Worker count for slice-parallel stages; the paper defaults to 6.
    backend:
        Execution backend for those stages: ``"serial"``, ``"thread"``
        (default — BLAS releases the GIL), or ``"process"`` (worker
        processes fed via shared memory).  Validated here, at construction
        time, so a typo fails immediately rather than deep inside a solver.
    oversampling:
        Extra columns ``s`` in the randomized-SVD sketch (Algorithm 1).
    power_iterations:
        Exponent ``q`` in Algorithm 1 — subspace ("power") iterations that
        sharpen the sketch for slowly decaying spectra.
    random_state:
        Seed or generator for every stochastic stage.
    dtype:
        Working precision of the DPar2 pipeline: ``"float64"`` (default) or
        ``"float32"``.  float32 roughly halves memory traffic and doubles
        BLAS throughput on the compression stage; the convergence criterion
        still accumulates in float64.  Accepts a name or a numpy dtype and
        is normalized to the canonical name.
    compute_backend:
        Array library the DPar2 kernels run on: ``"numpy"`` (default,
        bitwise-stable), ``"torch"`` (PyTorch CPU), ``"torch-cuda"``
        (PyTorch on a GPU), or ``"cupy"``.  Validated *by name* here — the
        optional library is only imported when compute starts, so configs
        naming an absent backend fail with an install hint at solve time,
        not at construction.  Device/torch backends run the batched
        kernels in-process, which is why combining them with the
        ``"process"`` execution backend is rejected outright: device
        arrays cannot cross process boundaries, and discovering that deep
        inside ``compress_tensor`` helps nobody.
    shards:
        ``None`` (default) runs the classic single-process DPar2 path,
        byte-for-byte unchanged.  An integer ``N >= 1`` routes the solve
        through the shard coordinator (:mod:`repro.parallel.sharding`):
        stage-1 compression and the per-slice sweep contractions run
        shard-local and only O(R^2) Gram statistics cross shard
        boundaries each sweep.  Final factors are bitwise-identical for
        any shard count (see ``docs/distributed.md``); the sharded path
        requires the numpy compute backend.
    shard_backend:
        Transport for shard workers: ``"process"`` (default — worker
        processes fed via shared memory), ``"thread"``, or ``"serial"``
        (in-process, for debugging and overhead measurement).  All three
        produce bitwise-identical factors.
    shard_cells:
        Number of fixed reduction cells the K slices are grouped into
        (clamped to K).  Cells — not shards — are the unit of floating
        point accumulation, which is what makes the factors invariant to
        the shard count; more cells give the balancer finer granularity
        at slightly higher per-sweep message count.
    """

    rank: int = 10
    max_iterations: int = 32
    tolerance: float = 1e-4
    n_threads: int = 1
    backend: str = "thread"
    oversampling: int = 5
    power_iterations: int = 1
    random_state: object = None
    dtype: str = "float64"
    compute_backend: str = "numpy"
    shards: int | None = None
    shard_backend: str = "process"
    shard_cells: int = 8

    def __post_init__(self) -> None:
        check_positive_int(self.rank, "rank")
        check_non_negative_int(self.max_iterations, "max_iterations")
        check_positive_int(self.n_threads, "n_threads")
        if not isinstance(self.backend, str):
            raise TypeError(
                f"backend must be a string, got {type(self.backend).__name__}"
            )
        normalized = self.backend.strip().lower()
        if normalized not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {', '.join(BACKEND_NAMES)}; "
                f"got {self.backend!r}"
            )
        object.__setattr__(self, "backend", normalized)
        try:
            dtype = np.dtype(self.dtype)
        except TypeError as exc:
            raise TypeError(f"dtype must name a numpy dtype, got {self.dtype!r}") from exc
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(
                f"dtype must be float64 or float32, got {self.dtype!r}"
            )
        object.__setattr__(self, "dtype", dtype.name)
        # Imported here, not at module top: repro.linalg pulls this module
        # back in through repro.util's facade, and the names-only check
        # needs nothing heavier anyway.
        from repro.linalg.array_module import COMPUTE_BACKEND_NAMES

        if not isinstance(self.compute_backend, str):
            raise TypeError(
                "compute_backend must be a string, "
                f"got {type(self.compute_backend).__name__}"
            )
        compute = self.compute_backend.strip().lower()
        if compute not in COMPUTE_BACKEND_NAMES:
            raise ValueError(
                f"compute_backend must be one of "
                f"{', '.join(COMPUTE_BACKEND_NAMES)}; "
                f"got {self.compute_backend!r}"
            )
        object.__setattr__(self, "compute_backend", compute)
        if compute != "numpy" and self.backend == "process":
            raise ValueError(
                f"compute_backend {compute!r} cannot be combined with the "
                "'process' execution backend: device arrays do not cross "
                "process boundaries, and the batched device kernels run "
                "in-process anyway — use backend='serial' or 'thread'"
            )
        if self.shards is not None:
            check_positive_int(self.shards, "shards")
            if compute != "numpy":
                raise ValueError(
                    "sharded decomposition requires compute_backend='numpy': "
                    "shard workers exchange host arrays, and device-resident "
                    f"sweeps do not shard (got compute_backend={compute!r})"
                )
        if not isinstance(self.shard_backend, str):
            raise TypeError(
                "shard_backend must be a string, "
                f"got {type(self.shard_backend).__name__}"
            )
        shard_backend = self.shard_backend.strip().lower()
        if shard_backend not in BACKEND_NAMES:
            raise ValueError(
                f"shard_backend must be one of {', '.join(BACKEND_NAMES)}; "
                f"got {self.shard_backend!r}"
            )
        object.__setattr__(self, "shard_backend", shard_backend)
        check_positive_int(self.shard_cells, "shard_cells")
        if self.oversampling < 0:
            raise ValueError(f"oversampling must be >= 0, got {self.oversampling}")
        if self.power_iterations < 0:
            raise ValueError(
                f"power_iterations must be >= 0, got {self.power_iterations}"
            )
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {self.tolerance}")

    def with_(self, **changes) -> "DecompositionConfig":
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)

    @property
    def numpy_dtype(self) -> np.dtype:
        """The working precision as a :class:`numpy.dtype`."""
        return np.dtype(self.dtype)

    def to_dict(self) -> dict:
        """JSON-safe view of the config; a non-seed ``random_state`` is dropped.

        A live Generator has no portable serialization; artifacts written
        from it (fitted factors, checkpointed streams) already embody its
        draws, so recording ``None`` loses nothing a reader could use.
        Inverse of :meth:`from_dict`.
        """
        payload = asdict(self)
        state = payload.get("random_state")
        if state is not None and not isinstance(state, int):
            payload["random_state"] = None
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "DecompositionConfig":
        """Rebuild a config from :meth:`to_dict` output (re-validates)."""
        return cls(**payload)

    @property
    def array_module(self):
        """The resolved compute backend (:class:`~repro.linalg.array_module.ArrayModule`).

        This is where torch/cupy are actually imported; a missing library
        raises :class:`~repro.linalg.array_module.BackendUnavailableError`
        with the install hint.
        """
        from repro.linalg.array_module import get_xp

        return get_xp(self.compute_backend)
