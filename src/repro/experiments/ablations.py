"""Ablation studies for the design choices DESIGN.md §6 calls out.

Four knobs, each isolated with everything else fixed:

A1. randomized-SVD power iterations ``q`` — compression time vs fitness;
A2. two-stage vs stage-1-only compression — preprocessed bytes vs fitness;
A3. greedy (Alg. 4) vs round-robin slice allocation — predicted parallel
    completion time (load imbalance);
A4. compressed vs exact convergence criterion — per-iteration time at equal
    factor quality.

Run with ``python -m repro.experiments.ablations``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.data.registry import load_dataset
from repro.data.synthetic import irregular_scalability_tensor
from repro.decomposition.dpar2 import compress_tensor, dpar2
from repro.experiments.reporting import ExperimentReport
from repro.linalg.randomized_svd import randomized_svd
from repro.parallel.partition import (
    greedy_partition,
    partition_imbalance,
    round_robin_partition,
)
from repro.util.config import DecompositionConfig


def run_power_iterations(
    *, dataset: str = "fma", rank: int = 10, random_state: int = 0
) -> ExperimentReport:
    """A1: compression cost and model fitness vs the exponent q."""
    tensor = load_dataset(dataset, random_state=random_state)
    rows = []
    for q in (0, 1, 2):
        config = DecompositionConfig(
            rank=rank, max_iterations=10, power_iterations=q,
            random_state=random_state,
        )
        result = dpar2(tensor, config)
        rows.append(
            [q, result.preprocess_seconds, result.fitness(tensor)]
        )
    findings = [
        "each extra power iteration adds two passes over every slice; "
        f"fitness moved by {abs(rows[-1][2] - rows[0][2]):.4f} from q=0 to q=2 "
        "on this strongly low-rank data",
    ]
    return ExperimentReport(
        experiment_id="ablation-rsvd",
        title=f"Power iterations q on {dataset}",
        headers=["q", "compress_seconds", "fitness"],
        rows=rows,
        findings=findings,
    )


def run_stage2(
    *, dataset: str = "fma", rank: int = 10, random_state: int = 0
) -> ExperimentReport:
    """A2: what the second compression stage buys in storage."""
    tensor = load_dataset(dataset, random_state=random_state)

    t0 = time.perf_counter()
    rng = np.random.default_rng(random_state)
    stage1 = [randomized_svd(Xk, rank, random_state=rng) for Xk in tensor]
    stage1_seconds = time.perf_counter() - t0
    stage1_bytes = sum(
        r.U.nbytes + r.singular_values.nbytes + r.V.nbytes for r in stage1
    )

    two_stage = compress_tensor(tensor, rank, random_state=random_state)
    rows = [
        ["stage-1 only", stage1_seconds, stage1_bytes,
         tensor.nbytes / stage1_bytes],
        ["two-stage (DPar2)", two_stage.seconds, two_stage.nbytes,
         tensor.nbytes / two_stage.nbytes],
    ]
    findings = [
        f"stage 2 shrinks the preprocessed data by a further "
        f"{stage1_bytes / two_stage.nbytes:.2f}x on {dataset} and enables "
        "the O(JR^2 + KR^3) Lemma 1-3 updates",
    ]
    return ExperimentReport(
        experiment_id="ablation-stage2",
        title="Two-stage vs stage-1-only compression",
        headers=["variant", "seconds", "bytes", "input/bytes"],
        rows=rows,
        findings=findings,
    )


def run_partitioning(
    *, n_threads: int = 6, random_state: int = 0
) -> ExperimentReport:
    """A3: Algorithm 4 vs round-robin on skewed slice heights."""
    tensor = irregular_scalability_tensor(
        800, 32, 64, random_state=random_state
    )
    weights = tensor.row_counts
    rows = []
    for label, parts in (
        ("round-robin", round_robin_partition(len(weights), n_threads)),
        ("greedy (Alg. 4)", greedy_partition(weights, n_threads)),
    ):
        imbalance = partition_imbalance(weights, parts)
        # Completion time of the parallel stage = max thread load; speedup
        # over serial = total / max load = n_threads / imbalance.
        rows.append([label, imbalance, n_threads / imbalance])
    findings = [
        f"on a {n_threads}-thread machine greedy partitioning converts a "
        f"{rows[0][1]:.2f}x imbalance into {rows[1][1]:.2f}x — the "
        "difference between the two modeled speedup columns",
    ]
    return ExperimentReport(
        experiment_id="ablation-partition",
        title=f"Slice allocation over {n_threads} threads (skewed heights)",
        headers=["allocator", "imbalance", "modeled_parallel_speedup"],
        rows=rows,
        findings=findings,
    )


def run_convergence_criterion(
    *, dataset: str = "fma", rank: int = 10, random_state: int = 0
) -> ExperimentReport:
    """A4: compressed criterion vs exact reconstruction error."""
    tensor = load_dataset(dataset, random_state=random_state)
    compressed = compress_tensor(tensor, rank, random_state=random_state)
    config = DecompositionConfig(
        rank=rank, max_iterations=8, tolerance=0.0, random_state=random_state
    )
    rows = []
    for label, exact in (("compressed (DPar2)", False), ("exact (ablation)", True)):
        result = dpar2(
            tensor, config, compressed=compressed, exact_convergence=exact
        )
        rows.append(
            [
                label,
                result.iterate_seconds / result.n_iterations,
                result.fitness(tensor),
            ]
        )
    slowdown = rows[1][1] / rows[0][1] if rows[0][1] > 0 else float("inf")
    findings = [
        f"checking the exact error every sweep makes iterations "
        f"{slowdown:.1f}x slower at identical factor quality "
        f"(fitness delta {abs(rows[0][2] - rows[1][2]):.5f})",
    ]
    return ExperimentReport(
        experiment_id="ablation-convergence",
        title="Convergence criterion cost",
        headers=["criterion", "seconds_per_iteration", "fitness"],
        rows=rows,
        findings=findings,
    )


def main() -> int:
    for report in (
        run_power_iterations(),
        run_stage2(),
        run_partitioning(),
        run_convergence_criterion(),
    ):
        print(report.render(), end="\n\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
