"""Table III — stocks similar to a target, via k-NN and via RWR.

The paper fixes a target (Microsoft), restricts to stocks covering the
COVID-19 window, decomposes with DPar2, and ranks the others two ways:

(a) k-nearest neighbours on ``sim(si, sj) = exp(−γ‖U_si − U_sj‖²)``;
(b) Random Walk with Restart on the similarity graph (c = 0.15).

The two lists overlap heavily (sector structure) but RWR surfaces
multi-hop neighbours the plain distance ranking misses — the blue-marked
rows of Table III.  We reproduce this on a named synthetic universe whose
sector factors play the role of the real markets' co-movement.
"""

from __future__ import annotations

from repro.analysis.knn import top_k_neighbors
from repro.analysis.rwr import rwr_ranking
from repro.analysis.similarity import similarity_graph, similarity_matrix
from repro.data.stock import named_universe, standardize_features
from repro.decomposition.dpar2 import dpar2
from repro.experiments.reporting import ExperimentReport
from repro.util.config import DecompositionConfig

#: A recognizable universe patterned on Table III's rows: a technology-heavy
#: cohort around the target plus other-sector stocks.
UNIVERSE = {
    "MSFT": "Technology",
    "ADBE": "Technology",
    "AAPL": "Technology",
    "INTU": "Technology",
    "ANSS": "Technology",
    "SNPS": "Technology",
    "NOW": "Technology",
    "EPAM": "Technology",
    "NVDA": "Technology",
    "ADSK": "Technology",
    "AMZN": "Consumer Cyclical",
    "GOOGL": "Communication Services",
    "NFLX": "Communication Services",
    "MCO": "Financial Services",
    "SPGI": "Financial Services",
    "JPM": "Financial Services",
    "XOM": "Energy",
    "CVX": "Energy",
    "JNJ": "Healthcare",
    "PFE": "Healthcare",
    "UNH": "Healthcare",
    "HD": "Consumer Cyclical",
    "DIS": "Communication Services",
    "CAT": "Energy",
}

TARGET = "MSFT"
GAMMA = 0.01
RESTART = 0.15
TOP_K = 10


def run(
    *,
    rank: int = 10,
    random_state: int = 0,
) -> ExperimentReport:
    market = named_universe(UNIVERSE, random_state=random_state)
    tensor = standardize_features(market.tensor)
    config = DecompositionConfig(
        rank=rank, max_iterations=20, random_state=random_state
    )
    result = dpar2(tensor, config)

    factors = [result.U(k) for k in range(result.n_slices)]
    target_idx = market.index_of(TARGET)
    sims = similarity_matrix(factors, gamma=GAMMA)
    knn = top_k_neighbors(sims, target_idx, k=TOP_K)
    adjacency = similarity_graph(factors, gamma=GAMMA)
    rwr = rwr_ranking(adjacency, target_idx, k=TOP_K, restart_probability=RESTART)

    knn_names = [market.tickers[i] for i, _ in knn]
    rwr_names = [market.tickers[i] for i, _ in rwr]
    rows = []
    for position in range(TOP_K):
        knn_i, knn_score = knn[position]
        rwr_i, rwr_score = rwr[position]
        rows.append(
            [
                position + 1,
                market.tickers[knn_i],
                market.sectors[knn_i],
                knn_score,
                market.tickers[rwr_i],
                market.sectors[rwr_i],
                rwr_score,
            ]
        )

    knn_tech = sum(1 for i, _ in knn if market.sectors[i] == "Technology")
    rwr_tech = sum(1 for i, _ in rwr if market.sectors[i] == "Technology")
    only_rwr = [t for t in rwr_names if t not in knn_names]
    only_knn = [t for t in knn_names if t not in rwr_names]
    findings = [
        f"technology-sector stocks in the top-10: kNN {knn_tech}/10, "
        f"RWR {rwr_tech}/10 (paper: both lists are technology-heavy)",
        f"stocks surfaced only by RWR: {only_rwr or 'none'} — multi-hop "
        "neighbours, Table III's blue rows",
        f"stocks surfaced only by kNN: {only_knn or 'none'}",
    ]
    return ExperimentReport(
        experiment_id="table3",
        title=f"Top-{TOP_K} stocks similar to {TARGET} (kNN vs RWR)",
        headers=[
            "rank", "knn_ticker", "knn_sector", "knn_sim",
            "rwr_ticker", "rwr_sector", "rwr_score",
        ],
        rows=rows,
        findings=findings,
    )


def main() -> int:
    print(run().render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
