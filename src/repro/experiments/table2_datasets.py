"""Table II — dataset summary.

Prints the shapes of the synthetic datasets next to the paper's original
dimensions so the scale-down is explicit.
"""

from __future__ import annotations

from repro.data.registry import DATASETS, load_dataset
from repro.experiments.reporting import ExperimentReport


def run(*, random_state: int = 0) -> ExperimentReport:
    rows: list[list] = []
    for name, spec in DATASETS.items():
        if not spec.paper:
            continue
        tensor = load_dataset(name, random_state=random_state)
        paper_max_ik, paper_j, paper_k = spec.paper_shape
        rows.append(
            [
                name,
                spec.summary,
                f"{paper_max_ik}/{tensor.max_rows}",
                f"{paper_j}/{tensor.n_columns}",
                f"{paper_k}/{tensor.n_slices}",
            ]
        )
    return ExperimentReport(
        experiment_id="table2",
        title="Datasets (paper dimension / synthetic dimension)",
        headers=["dataset", "summary", "max_Ik", "J", "K"],
        rows=rows,
        findings=[
            "synthetic datasets preserve structure (irregularity, density, "
            "spectral decay) at laptop scale; see DESIGN.md §3"
        ],
    )


def main() -> int:
    print(run().render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
