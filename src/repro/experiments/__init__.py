"""Experiment harness — one module per table/figure of the paper.

Every module exposes ``run(...) -> ExperimentReport`` (importable, used by
tests and benchmarks) and is executable as a script::

    python -m repro.experiments.fig1_tradeoff
    python -m repro.experiments.run_all     # everything, writes a report

See DESIGN.md §2 for the experiment-to-module index.
"""

from repro.experiments.harness import MethodMeasurement, measure_method, sweep_methods
from repro.experiments.reporting import ExperimentReport, render_table

__all__ = [
    "ExperimentReport",
    "MethodMeasurement",
    "measure_method",
    "render_table",
    "sweep_methods",
]
