"""Fig. 1 — running-time vs fitness trade-off.

The paper runs all four methods at target ranks 10, 15, 20 on every
real-world dataset and plots total running time against fitness; DPar2
gives the best trade-off (up to 6.0× faster at comparable fitness).  This
harness prints the underlying series: one row per (dataset, rank, method).
"""

from __future__ import annotations

import sys

from repro.data.registry import DATASETS, PAPER_DATASET_NAMES, load_dataset
from repro.experiments.harness import speedup_over_best_competitor, sweep_methods
from repro.experiments.reporting import ExperimentReport
from repro.util.config import DecompositionConfig

#: The subset used in quick mode (the four panels shown in Fig. 1).
QUICK_DATASETS = ("fma", "urban", "us_stock", "kr_stock")
RANKS = (10, 15, 20)


def run(
    *,
    datasets=QUICK_DATASETS,
    ranks=RANKS,
    max_iterations: int = 16,
    n_threads: int = 2,
    repeats: int = 1,
    random_state: int = 0,
) -> ExperimentReport:
    """Measure every (dataset, rank, method) cell of Fig. 1."""
    rows: list[list] = []
    dpar2_speedups: list[float] = []
    fitness_gaps: list[float] = []
    for name in datasets:
        if name not in DATASETS:
            raise KeyError(f"unknown dataset {name!r}")
        tensor = load_dataset(name, random_state=random_state)
        for rank in ranks:
            config = DecompositionConfig(
                rank=rank,
                max_iterations=max_iterations,
                n_threads=n_threads,
                random_state=random_state,
            )
            measurements = sweep_methods(tensor, config, repeats=repeats)
            speedup = speedup_over_best_competitor(measurements)
            dpar2_speedups.append(speedup)
            by_method = {m.method: m for m in measurements}
            best_fit = max(m.fitness for m in measurements)
            fitness_gaps.append(best_fit - by_method["dpar2"].fitness)
            for m in measurements:
                rows.append(
                    [name, rank, m.display_name, m.total_seconds, m.fitness]
                )

    findings = [
        f"DPar2 total-time speedup over the best competitor: "
        f"max {max(dpar2_speedups):.1f}x, min {min(dpar2_speedups):.1f}x "
        f"(paper: up to 6.0x, at least 1.5x)",
        f"largest fitness gap between DPar2 and the best method: "
        f"{max(fitness_gaps):.4f} (paper: 'comparable fitness')",
    ]
    return ExperimentReport(
        experiment_id="fig1",
        title="Trade-off between total running time and fitness",
        headers=["dataset", "rank", "method", "total_seconds", "fitness"],
        rows=rows,
        findings=findings,
    )


def main(argv=None) -> int:
    quick = "--full" not in (argv or sys.argv[1:])
    datasets = QUICK_DATASETS if quick else PAPER_DATASET_NAMES
    report = run(datasets=datasets)
    print(report.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
