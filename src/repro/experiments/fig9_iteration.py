"""Fig. 9(b) — time per ALS iteration for all four methods.

DPar2 iterates on O(KR²)-sized compressed factors while every competitor
touches slice-sized data each sweep; the paper reports DPar2 up to 10.3×
faster per iteration than the second-best method.
"""

from __future__ import annotations

import sys

from repro.data.registry import PAPER_DATASET_NAMES, load_dataset
from repro.experiments.harness import (
    speedup_over_best_competitor,
    sweep_methods,
)
from repro.experiments.reporting import ExperimentReport
from repro.util.config import DecompositionConfig

QUICK_DATASETS = ("fma", "urban", "us_stock", "kr_stock", "activity", "action")


def run(
    *,
    datasets=QUICK_DATASETS,
    rank: int = 10,
    max_iterations: int = 8,
    n_threads: int = 2,
    random_state: int = 0,
) -> ExperimentReport:
    rows: list[list] = []
    speedups: list[float] = []
    config = DecompositionConfig(
        rank=rank,
        max_iterations=max_iterations,
        tolerance=0.0,  # force the full iteration count for stable averages
        n_threads=n_threads,
        random_state=random_state,
    )
    for name in datasets:
        tensor = load_dataset(name, random_state=random_state)
        measurements = sweep_methods(tensor, config)
        speedups.append(
            speedup_over_best_competitor(
                measurements, attribute="seconds_per_iteration"
            )
        )
        row = [name]
        for m in measurements:
            row.append(m.seconds_per_iteration)
        rows.append(row)

    headers = ["dataset"] + [m.display_name for m in measurements]
    findings = [
        f"DPar2 per-iteration speedup over the best competitor: "
        f"max {max(speedups):.1f}x, min {min(speedups):.1f}x "
        f"(paper: 1.9x-10.3x across datasets)",
    ]
    return ExperimentReport(
        experiment_id="fig9b",
        title="Running time per iteration (seconds)",
        headers=headers,
        rows=rows,
        findings=findings,
    )


def main(argv=None) -> int:
    quick = "--full" not in (argv or sys.argv[1:])
    datasets = QUICK_DATASETS if quick else PAPER_DATASET_NAMES
    print(run(datasets=datasets).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
