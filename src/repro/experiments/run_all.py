"""Run every experiment and emit a consolidated report.

``python -m repro.experiments.run_all [--markdown PATH]`` executes the
harness for every table and figure in DESIGN.md §2 and prints the rendered
tables; with ``--markdown`` it also writes the EXPERIMENTS.md-ready
markdown dump.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    fig1_tradeoff,
    fig8_slice_lengths,
    fig9_iteration,
    fig9_preprocessing,
    fig10_compression,
    fig11_scalability,
    fig12_correlation,
    table2_datasets,
    table3_similar_stocks,
)


def run_all(random_state: int = 0) -> list:
    """Execute every experiment; returns the list of reports in paper order."""
    runners = [
        ("table2", lambda: table2_datasets.run(random_state=random_state)),
        ("fig1", lambda: fig1_tradeoff.run(random_state=random_state)),
        ("fig8", lambda: fig8_slice_lengths.run(random_state=random_state)),
        ("fig9a", lambda: fig9_preprocessing.run(random_state=random_state)),
        ("fig9b", lambda: fig9_iteration.run(random_state=random_state)),
        ("fig10", lambda: fig10_compression.run(random_state=random_state)),
        ("fig11a", lambda: fig11_scalability.run_size(random_state=random_state)),
        ("fig11b", lambda: fig11_scalability.run_rank(random_state=random_state)),
        ("fig11c", lambda: fig11_scalability.run_threads(random_state=random_state)),
        ("fig12", lambda: fig12_correlation.run(random_state=random_state)),
        ("table3", lambda: table3_similar_stocks.run(random_state=random_state)),
    ]
    reports = []
    for name, runner in runners:
        start = time.perf_counter()
        report = runner()
        elapsed = time.perf_counter() - start
        print(report.render())
        print(f"[{name} completed in {elapsed:.1f}s]\n", flush=True)
        reports.append(report)
    return reports


def main(argv=None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    reports = run_all()
    if "--markdown" in args:
        path = args[args.index("--markdown") + 1]
        with open(path, "w") as handle:
            handle.write("\n\n".join(report.to_markdown() for report in reports))
            handle.write("\n")
        print(f"markdown report written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
