"""Fig. 8 — sorted slice-length (listing period) distributions.

The paper plots the sorted temporal lengths of the US and Korea stock
tensors to motivate Algorithm 4: row counts are heavily skewed, so naive
slice-to-thread allocation leaves threads idle.  This harness prints
quantiles of the sorted-length curve plus the load-imbalance ratio of
greedy vs round-robin partitioning at the paper's 6 threads.
"""

from __future__ import annotations

import numpy as np

from repro.data.registry import load_dataset
from repro.experiments.reporting import ExperimentReport
from repro.parallel.partition import (
    greedy_partition,
    partition_imbalance,
    round_robin_partition,
)

DATASETS = ("us_stock", "kr_stock")
QUANTILES = (0.0, 0.25, 0.5, 0.75, 1.0)


def run(*, n_threads: int = 6, random_state: int = 0) -> ExperimentReport:
    rows: list[list] = []
    findings: list[str] = []
    for name in DATASETS:
        tensor = load_dataset(name, random_state=random_state)
        lengths = np.sort(np.asarray(tensor.row_counts))[::-1]
        quantile_values = [int(np.quantile(lengths, q)) for q in QUANTILES]
        greedy = partition_imbalance(
            lengths, greedy_partition(lengths, n_threads)
        )
        naive = partition_imbalance(
            lengths, round_robin_partition(len(lengths), n_threads)
        )
        rows.append([name, len(lengths), *quantile_values, naive, greedy])
        findings.append(
            f"{name}: greedy partitioning imbalance {greedy:.3f} vs "
            f"round-robin {naive:.3f} (1.0 = perfectly balanced)"
        )
    findings.append(
        "lengths are long-tailed (max >> median), matching Fig. 8's shape"
    )
    return ExperimentReport(
        experiment_id="fig8",
        title="Sorted slice lengths and the payoff of Algorithm 4",
        headers=[
            "dataset", "K", "len_min", "len_q25", "len_median",
            "len_q75", "len_max", "imbalance_rr", "imbalance_greedy",
        ],
        rows=rows,
        findings=findings,
    )


def main() -> int:
    print(run().render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
