"""Shared measurement harness for the per-figure experiment modules."""

from __future__ import annotations

from dataclasses import dataclass

from repro.decomposition.registry import DISPLAY_NAMES, SOLVERS, get_solver
from repro.tensor.irregular import IrregularTensor
from repro.util.config import DecompositionConfig


@dataclass
class MethodMeasurement:
    """One solver's outcome on one workload — the unit every figure plots."""

    method: str
    rank: int
    fitness: float
    preprocess_seconds: float
    iterate_seconds: float
    n_iterations: int
    preprocessed_bytes: int

    @property
    def total_seconds(self) -> float:
        return self.preprocess_seconds + self.iterate_seconds

    @property
    def seconds_per_iteration(self) -> float:
        if self.n_iterations == 0:
            return 0.0
        return self.iterate_seconds / self.n_iterations

    @property
    def display_name(self) -> str:
        return DISPLAY_NAMES.get(self.method, self.method)


def measure_method(
    tensor: IrregularTensor,
    method: str,
    config: DecompositionConfig,
    *,
    repeats: int = 1,
) -> MethodMeasurement:
    """Run one solver ``repeats`` times; report mean times, last-run fitness.

    The paper averages running time over 5 runs (Section IV-A); fitness is
    deterministic given the seed so one evaluation suffices.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    solver = get_solver(method)
    pre_times: list[float] = []
    iter_times: list[float] = []
    result = None
    for _ in range(repeats):
        result = solver(tensor, config)
        pre_times.append(result.preprocess_seconds)
        iter_times.append(result.iterate_seconds)
    return MethodMeasurement(
        method=result.method,
        rank=result.rank,
        fitness=result.fitness(tensor),
        preprocess_seconds=sum(pre_times) / repeats,
        iterate_seconds=sum(iter_times) / repeats,
        n_iterations=result.n_iterations,
        preprocessed_bytes=result.preprocessed_bytes,
    )


def sweep_methods(
    tensor: IrregularTensor,
    config: DecompositionConfig,
    *,
    methods=None,
    repeats: int = 1,
) -> list[MethodMeasurement]:
    """Measure several solvers on one workload (paper legend order)."""
    names = list(methods) if methods is not None else list(SOLVERS)
    return [
        measure_method(tensor, name, config, repeats=repeats) for name in names
    ]


def speedup_over_best_competitor(
    measurements: list[MethodMeasurement],
    target: str = "dpar2",
    attribute: str = "total_seconds",
) -> float:
    """``min(competitor time) / target time`` — the paper's "x× faster".

    Returns ``inf`` when the target time is zero (degenerate tiny inputs).
    """
    target_time = None
    competitor_best = None
    for m in measurements:
        value = getattr(m, attribute)
        if m.method == target:
            target_time = value
        else:
            competitor_best = value if competitor_best is None else min(competitor_best, value)
    if target_time is None or competitor_best is None:
        raise ValueError(f"need both {target!r} and at least one competitor")
    if target_time == 0.0:
        return float("inf")
    return competitor_best / target_time
