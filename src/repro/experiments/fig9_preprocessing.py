"""Fig. 9(a) — preprocessing time, DPar2 vs RD-ALS.

Only DPar2 and RD-ALS have a preprocessing step; the paper reports DPar2 up
to 10× faster because RD-ALS must SVD the full-width concatenation of all
slices while DPar2 runs cheap per-slice randomized SVDs.
"""

from __future__ import annotations

import sys

from repro.data.registry import PAPER_DATASET_NAMES, load_dataset
from repro.experiments.harness import measure_method
from repro.experiments.reporting import ExperimentReport
from repro.util.config import DecompositionConfig

QUICK_DATASETS = ("fma", "urban", "us_stock", "kr_stock", "activity", "action")


def run(
    *,
    datasets=QUICK_DATASETS,
    rank: int = 10,
    n_threads: int = 2,
    repeats: int = 3,
    random_state: int = 0,
) -> ExperimentReport:
    rows: list[list] = []
    ratios: list[float] = []
    config = DecompositionConfig(
        rank=rank, max_iterations=1, n_threads=n_threads, random_state=random_state
    )
    for name in datasets:
        tensor = load_dataset(name, random_state=random_state)
        dpar2_m = measure_method(tensor, "dpar2", config, repeats=repeats)
        rd_m = measure_method(tensor, "rd_als", config, repeats=repeats)
        ratio = (
            rd_m.preprocess_seconds / dpar2_m.preprocess_seconds
            if dpar2_m.preprocess_seconds > 0
            else float("inf")
        )
        ratios.append(ratio)
        rows.append(
            [name, dpar2_m.preprocess_seconds, rd_m.preprocess_seconds, ratio]
        )
    findings = [
        f"DPar2 preprocessing speedup over RD-ALS: max {max(ratios):.1f}x, "
        f"min {min(ratios):.1f}x (paper: up to 10x)",
    ]
    return ExperimentReport(
        experiment_id="fig9a",
        title="Preprocessing time (seconds)",
        headers=["dataset", "dpar2_pre_s", "rd_als_pre_s", "rd/dpar2"],
        rows=rows,
        findings=findings,
    )


def main(argv=None) -> int:
    quick = "--full" not in (argv or sys.argv[1:])
    datasets = QUICK_DATASETS if quick else PAPER_DATASET_NAMES
    print(run(datasets=datasets).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
