"""Fig. 11 — scalability in tensor size (a), target rank (b), threads (c).

(a) five synthetic ``I×J×K`` grids with a 16× size spread: DPar2's running
    time grows with the lowest slope (paper: up to 15.3× faster).
(b) rank sweep on the largest grid: DPar2 stays ahead (paper: 7.0–15.9×),
    with the gap narrowing at high ranks (randomized SVD targets low rank).
(c) thread sweep for DPar2 only: near-linear scale-up (paper: 5.5× at 10
    threads, slope 0.56).

The paper's grid tops out at 1.6e10 entries (needs ~128 GB); ``scale``
shrinks every dimension uniformly while preserving the 16× spread.
"""

from __future__ import annotations

import sys

from repro.data.synthetic import paper_size_grid, scalability_tensor
from repro.experiments.harness import (
    speedup_over_best_competitor,
    sweep_methods,
    measure_method,
)
from repro.experiments.reporting import ExperimentReport
from repro.util.config import DecompositionConfig

DEFAULT_SCALE = 0.08  # 80x120x160 ... 160x160x320 at the default
RANK_SWEEP = (10, 20, 30, 40, 50)
THREAD_SWEEP = (1, 2, 4, 6)


def run_size(
    *,
    scale: float = DEFAULT_SCALE,
    rank: int = 10,
    max_iterations: int = 8,
    n_threads: int = 2,
    random_state: int = 0,
) -> ExperimentReport:
    """Fig. 11(a): running time vs total tensor size."""
    rows: list[list] = []
    speedups: list[float] = []
    for I, J, K in paper_size_grid(scale):
        tensor = scalability_tensor(I, J, K, random_state=random_state)
        config = DecompositionConfig(
            rank=rank,
            max_iterations=max_iterations,
            tolerance=0.0,
            n_threads=n_threads,
            random_state=random_state,
        )
        measurements = sweep_methods(tensor, config)
        speedups.append(speedup_over_best_competitor(measurements))
        row = [f"{I}x{J}x{K}", I * J * K]
        row += [m.total_seconds for m in measurements]
        rows.append(row)
    headers = ["shape", "entries"] + [m.display_name for m in measurements]
    findings = [
        f"DPar2 speedup over the best competitor across sizes: "
        f"max {max(speedups):.1f}x (paper: up to 15.3x)",
        "DPar2's time grows with the smallest slope across the 16x size spread",
    ]
    return ExperimentReport(
        experiment_id="fig11a",
        title="Scalability with respect to tensor size (total seconds)",
        headers=headers,
        rows=rows,
        findings=findings,
    )


def run_rank(
    *,
    scale: float = DEFAULT_SCALE,
    ranks=RANK_SWEEP,
    max_iterations: int = 8,
    n_threads: int = 2,
    random_state: int = 0,
) -> ExperimentReport:
    """Fig. 11(b): running time vs target rank on the largest grid."""
    I, J, K = paper_size_grid(scale)[-1]
    tensor = scalability_tensor(I, J, K, random_state=random_state)
    rows: list[list] = []
    speedups: list[float] = []
    for rank in ranks:
        config = DecompositionConfig(
            rank=rank,
            max_iterations=max_iterations,
            tolerance=0.0,
            n_threads=n_threads,
            random_state=random_state,
        )
        measurements = sweep_methods(tensor, config)
        speedups.append(speedup_over_best_competitor(measurements))
        rows.append([rank] + [m.total_seconds for m in measurements])
    headers = ["rank"] + [m.display_name for m in measurements]
    findings = [
        f"DPar2 speedup across ranks: max {max(speedups):.1f}x, "
        f"min {min(speedups):.1f}x (paper: 7.0x at rank 50, up to 15.9x)",
    ]
    return ExperimentReport(
        experiment_id="fig11b",
        title="Scalability with respect to target rank (total seconds)",
        headers=headers,
        rows=rows,
        findings=findings,
    )


def modeled_scale_up(
    row_counts,
    n_threads: int,
    parallel_fraction: float,
) -> float:
    """Predicted ``T1/TM`` from Amdahl's law + Algorithm-4 load balance.

    The parallel portion (slice compression and per-slice iteration work)
    completes when the most-loaded thread finishes, so its speedup is
    ``n_threads / imbalance`` with the imbalance of the *actual* greedy
    partition of the slice row counts; the serial remainder (stage-2 SVD,
    the R×R CP updates, bookkeeping) does not speed up.
    """
    from repro.parallel.partition import greedy_partition, partition_imbalance

    if not 0.0 <= parallel_fraction <= 1.0:
        raise ValueError(f"parallel_fraction must be in [0,1], got {parallel_fraction}")
    imbalance = partition_imbalance(
        row_counts, greedy_partition(row_counts, n_threads)
    )
    parallel_time = parallel_fraction * imbalance / n_threads
    return 1.0 / ((1.0 - parallel_fraction) + parallel_time)


def run_threads(
    *,
    scale: float = DEFAULT_SCALE,
    threads=THREAD_SWEEP,
    rank: int = 10,
    max_iterations: int = 8,
    random_state: int = 0,
) -> ExperimentReport:
    """Fig. 11(c): DPar2 scale-up ``T1 / TM`` vs thread count.

    Two columns are reported:

    * ``measured_scale_up`` — wall-clock ``T1/TM``.  Only meaningful on a
      multi-core machine; in a single-core container (like CI) it hovers
      around 1.0 regardless of the thread count.
    * ``modeled_scale_up`` — Amdahl's law with the measured parallel
      fraction and the *actual* Algorithm-4 partition imbalance; this is
      the hardware-independent reproduction of the figure's shape (the
      paper reports 5.5x at 10 threads, i.e. slope 0.56).
    """
    I, J, K = paper_size_grid(scale)[-1]
    tensor = scalability_tensor(I, J, K, random_state=random_state)
    times: dict[int, float] = {}
    parallel_fraction = None
    for n in threads:
        config = DecompositionConfig(
            rank=rank,
            max_iterations=max_iterations,
            tolerance=0.0,
            n_threads=n,
            random_state=random_state,
        )
        m = measure_method(tensor, "dpar2", config)
        times[n] = m.total_seconds
        if n == min(threads):
            # Parallelizable share: slice compression plus the per-slice
            # SVD part of iterations (~half of iterate time at this scale).
            parallel_fraction = (
                (m.preprocess_seconds + 0.5 * m.iterate_seconds) / m.total_seconds
                if m.total_seconds > 0
                else 0.0
            )
    base = times[min(threads)]
    rows = []
    for n in threads:
        measured = base / times[n] if times[n] > 0 else float("inf")
        modeled = modeled_scale_up(tensor.row_counts, n, parallel_fraction)
        rows.append([n, times[n], measured, modeled])
    best_modeled = max(row[3] for row in rows)
    findings = [
        f"modeled scale-up reaches {best_modeled:.2f}x at {max(threads)} "
        "threads (paper: 5.5x at 10 threads, near-linear)",
        f"measured parallel fraction {parallel_fraction:.2f}; measured "
        "wall-clock scale-up is hardware-bound (1.0 on a single-core box)",
    ]
    return ExperimentReport(
        experiment_id="fig11c",
        title="Multi-core scalability of DPar2 (measured + modeled)",
        headers=["threads", "total_seconds", "measured_scale_up", "modeled_scale_up"],
        rows=rows,
        findings=findings,
    )


def main(argv=None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    axis = "all"
    if "--axis" in args:
        axis = args[args.index("--axis") + 1]
    if axis in ("size", "all"):
        print(run_size().render(), end="\n\n")
    if axis in ("rank", "all"):
        print(run_rank().render(), end="\n\n")
    if axis in ("threads", "all"):
        print(run_threads().render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
