"""Plain-text rendering for experiment outputs.

The paper's figures are plots; in a terminal-only reproduction each figure
becomes a table whose rows are the plotted series, so "the same rows/series
the paper reports" can be eyeballed and diffed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned ASCII table."""
    header_cells = [str(h) for h in headers]
    body = [[_format_cell(cell) for cell in row] for row in rows]
    for idx, row in enumerate(body):
        if len(row) != len(header_cells):
            raise ValueError(
                f"row {idx} has {len(row)} cells, expected {len(header_cells)}"
            )
    widths = [
        max(len(header_cells[c]), *(len(row[c]) for row in body)) if body else len(header_cells[c])
        for c in range(len(header_cells))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        " | ".join(cell.ljust(w) for cell, w in zip(header_cells, widths)),
        sep,
    ]
    lines += [" | ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in body]
    return "\n".join(lines)


@dataclass
class ExperimentReport:
    """A named experiment outcome: a table plus free-form findings.

    ``findings`` hold the qualitative claims the experiment checks (e.g.
    "DPar2 fastest on every dataset") so ``run_all`` can assemble
    EXPERIMENTS.md entries mechanically.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    findings: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} ==", ""]
        lines.append(render_table(self.headers, self.rows))
        if self.findings:
            lines.append("")
            lines += [f"* {finding}" for finding in self.findings]
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (used for EXPERIMENTS.md)."""
        head = "| " + " | ".join(str(h) for h in self.headers) + " |"
        sep = "|" + "|".join("---" for _ in self.headers) + "|"
        body = [
            "| " + " | ".join(_format_cell(cell) for cell in row) + " |"
            for row in self.rows
        ]
        parts = [f"### {self.experiment_id}: {self.title}", "", head, sep, *body]
        if self.findings:
            parts += [""] + [f"- {finding}" for finding in self.findings]
        return "\n".join(parts)
