"""Fig. 12 — feature-correlation heatmaps on the two stock markets.

The paper computes the PCC between rows of ``V`` (each row is a feature's
latent vector) for 4 price features and 4 technical indicators, finding:

* STOCH negatively correlated with prices on both markets;
* MACD weakly correlated with prices on both markets;
* OBV and ATR positively correlated with prices on the US market but not
  on the Korean market.

Our synthetic markets plant the same contrast through the volume-coupling
switch in :func:`repro.data.stock.generate_market`.  Correlations are read
from the model through the metric-aware
:func:`~repro.analysis.correlation.model_feature_correlation` (the raw PCC
of ``V`` rows the paper describes is exposed as ``feature_correlation`` but
is sign-indeterminate at small ``R``; see its docstring).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.correlation import model_feature_correlation
from repro.data.indicators import feature_names
from repro.data.registry import load_dataset
from repro.decomposition.dpar2 import dpar2
from repro.experiments.reporting import ExperimentReport
from repro.util.config import DecompositionConfig

#: The 8 features of Fig. 12, by name prefix in our 88-column layout.
FIG12_FEATURES = (
    "open", "high", "low", "close",
    "atr_14", "stoch_14", "obv", "macd_12_26",
)
PRICE_FEATURES = ("open", "high", "low", "close")


def _feature_indices() -> list[int]:
    names = feature_names()
    return [names.index(f) for f in FIG12_FEATURES]


def market_correlations(
    dataset: str, *, rank: int = 10, random_state: int = 0
) -> np.ndarray:
    """The 8×8 Fig.-12 correlation matrix for one market."""
    tensor = load_dataset(dataset, random_state=random_state)
    config = DecompositionConfig(
        rank=rank, max_iterations=20, random_state=random_state
    )
    result = dpar2(tensor, config)
    return model_feature_correlation(
        result.V, result.H, result.S, _feature_indices()
    )


def price_correlation_summary(matrix: np.ndarray) -> dict[str, float]:
    """Mean PCC of each indicator against the four price features."""
    price_ids = [FIG12_FEATURES.index(f) for f in PRICE_FEATURES]
    summary = {}
    for feature in FIG12_FEATURES:
        if feature in PRICE_FEATURES:
            continue
        fid = FIG12_FEATURES.index(feature)
        summary[feature] = float(np.mean([matrix[fid, p] for p in price_ids]))
    return summary


def run(*, rank: int = 10, random_state: int = 0) -> ExperimentReport:
    us = market_correlations("us_stock", rank=rank, random_state=random_state)
    kr = market_correlations("kr_stock", rank=rank, random_state=random_state)
    us_summary = price_correlation_summary(us)
    kr_summary = price_correlation_summary(kr)

    rows = [
        [indicator, us_summary[indicator], kr_summary[indicator]]
        for indicator in us_summary
    ]
    findings = []
    obv_gap = us_summary["obv"] - kr_summary["obv"]
    atr_gap = us_summary["atr_14"] - kr_summary["atr_14"]
    findings.append(
        f"OBV-vs-price correlation: US {us_summary['obv']:+.2f} vs "
        f"KR {kr_summary['obv']:+.2f} (paper: positive on US, ~none on KR; "
        f"gap {obv_gap:+.2f})"
    )
    findings.append(
        f"ATR-vs-price correlation: US {us_summary['atr_14']:+.2f} vs "
        f"KR {kr_summary['atr_14']:+.2f} (paper: positive on US, weak on KR; "
        f"gap {atr_gap:+.2f})"
    )
    findings.append(
        "full 8x8 heatmap matrices available via market_correlations()"
    )
    return ExperimentReport(
        experiment_id="fig12",
        title="Indicator-vs-price correlation, US vs KR market",
        headers=["indicator", "us_mean_pcc_vs_price", "kr_mean_pcc_vs_price"],
        rows=rows,
        findings=findings,
    )


def main() -> int:
    print(run().render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
