"""Fig. 10 — size of the preprocessed data.

The paper compares DPar2's preprocessed data ({Ak}, D, E, F) against
RD-ALS's projected slices and the raw input tensor (what PARAFAC2-ALS and
SPARTan iterate on), reporting up to 201× compression, with larger ratios
on wide-J datasets (FMA/Urban) — the ratio is ≈ J/R for tall slices
(Section IV-B's analysis).
"""

from __future__ import annotations

import sys

from repro.data.registry import PAPER_DATASET_NAMES, load_dataset
from repro.decomposition.dpar2 import compress_tensor
from repro.experiments.reporting import ExperimentReport
from repro.linalg.gram import gram_svd

QUICK_DATASETS = ("fma", "urban", "us_stock", "kr_stock", "activity", "action")


def rd_als_preprocessed_bytes(tensor, rank: int) -> int:
    """Bytes RD-ALS keeps after preprocessing: projected slices + V̂."""
    V_hat, _ = gram_svd(tensor.slices, rank)
    projected_bytes = sum((Xk @ V_hat).nbytes for Xk in tensor)
    return projected_bytes + V_hat.nbytes


def run(
    *,
    datasets=QUICK_DATASETS,
    rank: int = 10,
    random_state: int = 0,
) -> ExperimentReport:
    rows: list[list] = []
    ratios: list[float] = []
    for name in datasets:
        tensor = load_dataset(name, random_state=random_state)
        compressed = compress_tensor(tensor, rank, random_state=random_state)
        rd_bytes = rd_als_preprocessed_bytes(tensor, rank)
        ratio = tensor.nbytes / compressed.nbytes
        ratios.append(ratio)
        rows.append(
            [
                name,
                tensor.nbytes,
                compressed.nbytes,
                rd_bytes,
                ratio,
                tensor.n_columns,
            ]
        )
    findings = [
        f"DPar2 compression ratio vs the input tensor: max {max(ratios):.0f}x, "
        f"min {min(ratios):.0f}x (paper: 8.8x-201x, growing with J/R)",
        "ratios are largest on wide-J (spectrogram) datasets, as predicted by "
        "the paper's IJK / (IKR + KR^2 + JR) analysis",
    ]
    return ExperimentReport(
        experiment_id="fig10",
        title="Size of preprocessed data (bytes)",
        headers=[
            "dataset", "input_bytes", "dpar2_bytes", "rd_als_bytes",
            "input/dpar2", "J",
        ],
        rows=rows,
        findings=findings,
    )


def main(argv=None) -> int:
    quick = "--full" not in (argv or sys.argv[1:])
    datasets = QUICK_DATASETS if quick else PAPER_DATASET_NAMES
    print(run(datasets=datasets).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
