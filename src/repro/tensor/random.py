"""Random tensor constructors.

``random_dense_tensor`` mirrors Tensor Toolbox's ``tenrand`` (uniform [0,1)
entries), which the paper uses for its scalability studies (Section IV-A,
"Synthetic Data").  ``random_irregular_tensor`` additionally draws per-slice
row counts, and ``low_rank_irregular_tensor`` plants a PARAFAC2-structured
signal so that fitness has a meaningful target.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.qr import random_orthonormal
from repro.tensor.dense import DenseTensor
from repro.tensor.irregular import IrregularTensor
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int


def random_dense_tensor(shape, random_state=None) -> DenseTensor:
    """Uniform-[0, 1) tensor of the given ``(I, J, K)`` shape (``tenrand``)."""
    if len(shape) != 3:
        raise ValueError(f"shape must be (I, J, K), got {shape}")
    dims = tuple(check_positive_int(dim, "dimension") for dim in shape)
    rng = as_generator(random_state)
    return DenseTensor(rng.random(dims))


def random_irregular_tensor(
    row_counts,
    n_columns: int,
    random_state=None,
) -> IrregularTensor:
    """Uniform-[0, 1) irregular tensor with the given ``Ik`` profile."""
    counts = [check_positive_int(int(ik), "row count") for ik in row_counts]
    J = check_positive_int(n_columns, "n_columns")
    rng = as_generator(random_state)
    return IrregularTensor([rng.random((ik, J)) for ik in counts], copy=False)


def low_rank_irregular_tensor(
    row_counts,
    n_columns: int,
    rank: int,
    *,
    noise: float = 0.1,
    random_state=None,
) -> IrregularTensor:
    """Irregular tensor with an exact PARAFAC2 structure plus Gaussian noise.

    Each slice is ``Qk H Sk Vᵀ + noise·N(0,1)`` with column-orthogonal
    ``Qk`` — precisely the model class all four solvers fit, so fitness
    differences between methods reflect the solvers, not the data.
    """
    counts = [check_positive_int(int(ik), "row count") for ik in row_counts]
    J = check_positive_int(n_columns, "n_columns")
    R = check_positive_int(rank, "rank")
    if R > J:
        raise ValueError(f"rank {R} cannot exceed n_columns {J}")
    if any(ik < R for ik in counts):
        raise ValueError("every slice must have at least `rank` rows")
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    rng = as_generator(random_state)

    H = rng.standard_normal((R, R))
    V = random_orthonormal(J, R, rng)
    slices = []
    for ik in counts:
        Qk = random_orthonormal(ik, R, rng)
        sk = rng.uniform(0.5, 1.5, size=R)
        clean = Qk @ H @ np.diag(sk) @ V.T
        if noise > 0:
            clean = clean + noise * rng.standard_normal((ik, J))
        slices.append(clean)
    return IrregularTensor(slices, copy=False)
