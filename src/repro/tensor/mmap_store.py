"""Out-of-core slice storage: an irregular tensor as ``.npy`` files on disk.

DPar2 only reads the raw slices during stage-1 compression; every later
sweep runs on the compressed representation (``{Ak}, D, E, F``), which is
orders of magnitude smaller (Fig. 10).  That makes the method a natural fit
for tensors bigger than RAM — *if* the slices can be streamed.  This module
provides the streaming substrate:

* :class:`MmapSliceStore` — a directory holding the payload files per slice
  plus a small JSON manifest with the shape metadata.  Dense slices are one
  ``.npy`` file, loaded as read-only ``np.memmap`` views, so touching one
  pulls only the pages the computation actually reads, and the OS page
  cache evicts them under pressure.  Sparse slices are stored in CSR form
  as three segments (``indptr``/``indices``/``data`` ``.npy`` files named
  in the manifest) and come back as
  :class:`~repro.sparse.csr.CsrMatrix` instances over memory-mapped
  component arrays — an out-of-core sparse tensor is never densified, on
  disk or at load.
* ``IrregularTensor.from_store(store)`` wraps those views in the standard
  container without copying, so every solver accepts an out-of-core tensor
  unchanged.

The process execution backend recognises store-backed dense slices and
ships them to workers as *(path, dtype, shape, offset)* descriptors instead
of copying them through shared memory — the data goes disk → page cache →
worker, and never transits the parent.

Manifest versions: version 1 (dense-only, one filename string per slice)
and version 2 (dense strings and/or sparse payload dicts) are both read;
a store is written at version 1 for as long as it holds no sparse slice,
so dense stores stay readable by older builds.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import check_finite_csr
from repro.tensor.irregular import IrregularTensor
from repro.util import faults
from repro.util.validation import check_matrix

MANIFEST_NAME = "manifest.json"
_FORMAT = "repro-mmap-slice-store"
_VERSION = 2
_READABLE_VERSIONS = (1, 2)


def _slice_filename(index: int) -> str:
    return f"slice_{index:06d}.npy"


def _csr_filenames(index: int) -> dict[str, str]:
    base = f"slice_{index:06d}"
    return {
        segment: f"{base}.{segment}.npy"
        for segment in ("indptr", "indices", "data")
    }


def _entry_filenames(entry) -> list[str]:
    """All payload filenames of one manifest ``files`` entry."""
    if isinstance(entry, str):
        return [entry]
    return [entry[segment] for segment in ("indptr", "indices", "data")]


class MmapSliceStore:
    """A directory of memory-mappable slice files with a JSON manifest.

    Build one with :meth:`create` (optionally from an iterable, so slices
    can be generated or read one at a time and never coexist in RAM), grow
    it with :meth:`append`, and reopen it later with :meth:`open`.  Both
    dense arrays and :class:`~repro.sparse.csr.CsrMatrix` slices are
    accepted and round-trip in their own representation.

    Example
    -------
    >>> import numpy as np, tempfile
    >>> rng = np.random.default_rng(0)
    >>> tmp = tempfile.mkdtemp()
    >>> store = MmapSliceStore.create(tmp, (rng.random((n, 8)) for n in (30, 50)))
    >>> store.row_counts
    [30, 50]
    >>> tensor = store.as_tensor()          # zero-copy, memmap-backed
    >>> float(tensor.squared_norm()) > 0
    True
    """

    def __init__(self, directory, manifest: dict) -> None:
        self._directory = Path(directory)
        self._manifest = manifest

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls,
        directory,
        slices: Iterable[np.ndarray] = (),
        *,
        overwrite: bool = False,
        dtype=np.float64,
    ) -> "MmapSliceStore":
        """Materialize a new store at ``directory`` from ``slices``.

        ``slices`` is consumed lazily — pass a generator to build a store
        larger than RAM.  Pass ``overwrite=True`` to replace an existing
        store (its old slice files are removed first).  ``dtype`` selects
        the on-disk precision (``float64`` default, ``float32`` halves the
        footprint and feeds the float32 pipeline without a conversion
        pass).
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if manifest_path.exists():
            if not overwrite:
                raise FileExistsError(
                    f"{manifest_path} already exists; pass overwrite=True to replace"
                )
            # Remove the old store's slice files.  The manifest may be
            # corrupt (crashed writer) or from another version — replacing
            # such a store is precisely what overwrite=True is for, so fall
            # back to the file naming convention when it cannot be read.
            try:
                stale_entries = list(cls.open(directory)._manifest["files"])
                stale_files = [
                    name
                    for entry in stale_entries
                    for name in _entry_filenames(entry)
                ]
            except Exception:
                stale_files = [p.name for p in directory.glob("slice_*.npy")]
            for filename in stale_files:
                (directory / filename).unlink(missing_ok=True)
            manifest_path.unlink()
        directory.mkdir(parents=True, exist_ok=True)

        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"dtype must be float32 or float64, got {dtype!r}")
        store = cls(
            directory,
            {
                "format": _FORMAT,
                "version": _VERSION,
                "dtype": dtype.name,
                "n_columns": None,
                "row_counts": [],
                "files": [],
            },
        )
        for Xk in slices:
            store.append(Xk, flush=False)
        store._write_manifest()
        return store

    @classmethod
    def open(cls, directory) -> "MmapSliceStore":
        """Open an existing store (manifest + slice files) read-write."""
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(f"no slice store at {directory} ({MANIFEST_NAME} missing)")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{manifest_path} is not valid JSON (truncated write?): {exc}"
            ) from exc
        if manifest.get("format") != _FORMAT:
            raise ValueError(f"{manifest_path} is not a {_FORMAT} manifest")
        if manifest.get("version") not in _READABLE_VERSIONS:
            raise ValueError(
                f"unsupported store version {manifest.get('version')!r} "
                f"(this build reads versions "
                f"{', '.join(str(v) for v in _READABLE_VERSIONS)})"
            )
        files = manifest.get("files", [])
        row_counts = manifest.get("row_counts", [])
        if len(files) != len(row_counts):
            raise ValueError(
                f"{manifest_path} is inconsistent: {len(files)} payload entries "
                f"but {len(row_counts)} row counts"
            )
        if manifest.get("version") == 1 and any(
            not isinstance(entry, str) for entry in files
        ):
            # Sparse payload dicts were introduced with version 2; a v1
            # manifest carrying them was hand-edited or written corrupt.
            raise ValueError(
                f"{manifest_path} declares version 1 (dense-only) but holds "
                "sparse payload entries — version/payload mismatch"
            )
        return cls(directory, manifest)

    def append(self, slice_matrix, *, flush: bool = True) -> int:
        """Validate and persist one slice; returns its index.

        Dense slices are written C-contiguous in the store's dtype (the
        layout the rest of the library canonicalizes to), so reopening
        them memory-mapped needs no conversion pass.
        :class:`~repro.sparse.csr.CsrMatrix` slices are written as three
        CSR segment files — the sparse payload format; their values are
        cast to the store's dtype, the structure is kept verbatim.
        ``flush=False`` skips the per-append manifest rewrite (an O(K)
        file) — used by :meth:`create` to keep bulk construction linear in
        K; call :meth:`flush` when done.
        """
        index = len(self._manifest["files"])
        J = self._manifest["n_columns"]
        # Fault-injection site: a writer killed here (or anywhere before the
        # manifest rewrite below) leaves at most orphan payload files the
        # manifest never references — readers reopen the previous state.
        faults.check("mmap_store.append.data")
        if isinstance(slice_matrix, CsrMatrix):
            Xk = check_finite_csr(slice_matrix, "slice_matrix").astype(self.dtype)
            if J is not None and Xk.shape[1] != J:
                raise ValueError(
                    f"slice has {Xk.shape[1]} columns; store has {J} "
                    "(all slices must share the column dimension J)"
                )
            filenames = _csr_filenames(index)
            np.save(self._directory / filenames["indptr"], Xk.indptr)
            np.save(self._directory / filenames["indices"], Xk.indices)
            np.save(
                self._directory / filenames["data"],
                np.ascontiguousarray(Xk.data),
            )
            entry: "str | dict" = {"kind": "csr", "nnz": int(Xk.nnz), **filenames}
        else:
            Xk = check_matrix(slice_matrix, "slice_matrix", dtype=self.dtype)
            if J is not None and Xk.shape[1] != J:
                raise ValueError(
                    f"slice has {Xk.shape[1]} columns; store has {J} "
                    "(all slices must share the column dimension J)"
                )
            entry = _slice_filename(index)
            np.save(self._directory / entry, Xk)
        if J is None:
            self._manifest["n_columns"] = int(Xk.shape[1])
        self._manifest["row_counts"].append(int(Xk.shape[0]))
        self._manifest["files"].append(entry)
        if flush:
            self._write_manifest()
        return index

    def flush(self) -> None:
        """Persist the manifest (only needed after ``append(flush=False)``)."""
        self._write_manifest()

    def _write_manifest(self) -> None:
        # Dense-only stores are written at version 1, which older builds
        # still read; the first sparse slice bumps the manifest to 2.
        self._manifest["version"] = (
            2
            if any(isinstance(e, dict) for e in self._manifest["files"])
            else 1
        )
        # Fault-injection site: killed here, the new payload files exist but
        # the old manifest still rules — the store reopens at its previous
        # length.  The write itself is staged + os.replace, so a kill mid-
        # serialization can never leave a truncated manifest behind either.
        faults.check("mmap_store.append.manifest")
        path = self._directory / MANIFEST_NAME
        fd, tmp = tempfile.mkstemp(prefix=".manifest-", dir=self._directory)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(self._manifest, indent=1))
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------ #
    # metadata (manifest only — no slice data touched)
    # ------------------------------------------------------------------ #

    @property
    def directory(self) -> Path:
        return self._directory

    def __len__(self) -> int:
        return len(self._manifest["files"])

    @property
    def n_slices(self) -> int:
        return len(self)

    @property
    def n_columns(self) -> int:
        J = self._manifest["n_columns"]
        if J is None:
            raise ValueError("store is empty; column count is undefined")
        return int(J)

    @property
    def row_counts(self) -> list[int]:
        return [int(rows) for rows in self._manifest["row_counts"]]

    @property
    def dtype(self) -> np.dtype:
        """On-disk precision (manifests predating the key are float64)."""
        return np.dtype(self._manifest.get("dtype", "float64"))

    @property
    def nbytes(self) -> int:
        """Size of the stored slice data in bytes."""
        itemsize = self.dtype.itemsize
        total = 0
        for rows, entry in zip(
            self._manifest["row_counts"], self._manifest["files"]
        ):
            if isinstance(entry, str):
                total += int(rows) * self.n_columns * itemsize
            else:
                # CSR payload: values + int64 indices + int64 indptr.
                total += int(entry["nnz"]) * (itemsize + 8) + (int(rows) + 1) * 8
        return total

    def slice_path(self, index: int) -> Path:
        """Path of a slice's payload (the data segment for CSR slices)."""
        entry = self._manifest["files"][index]
        if isinstance(entry, str):
            return self._directory / entry
        return self._directory / entry["data"]

    def __repr__(self) -> str:
        if len(self) == 0:
            return f"MmapSliceStore({str(self._directory)!r}, empty)"
        return (
            f"MmapSliceStore({str(self._directory)!r}, K={self.n_slices}, "
            f"J={self.n_columns}, {self.nbytes} bytes on disk)"
        )

    # ------------------------------------------------------------------ #
    # data access
    # ------------------------------------------------------------------ #

    def load_slice(self, index: int, *, mmap: bool = True):
        """One slice: a read-only memmap (default) or in-RAM array for
        dense payloads, a :class:`~repro.sparse.csr.CsrMatrix` over
        memory-mapped (or in-RAM) component arrays for sparse payloads.

        Raises ``FileNotFoundError`` when a payload segment named by the
        manifest is missing, and ``ValueError`` when a segment's on-disk
        dtype contradicts the manifest (either means the store directory
        was modified behind the manifest's back)."""
        entry = self._manifest["files"][index]
        mode = "r" if mmap else None

        def _load(name: str) -> np.ndarray:
            path = self._directory / name
            if not path.exists():
                raise FileNotFoundError(
                    f"store segment missing: {path} (named by {MANIFEST_NAME})"
                )
            return np.load(path, mmap_mode=mode)

        if isinstance(entry, str):
            loaded = _load(entry)
        else:
            rows = int(self._manifest["row_counts"][index])
            loaded = CsrMatrix(
                (rows, self.n_columns),
                _load(entry["indptr"]),
                _load(entry["indices"]),
                _load(entry["data"]),
                validate=False,
            )
        if loaded.dtype != self.dtype:
            raise ValueError(
                f"slice {index} holds {loaded.dtype.name} values but the "
                f"manifest declares {self.dtype.name} — store is corrupt"
            )
        return loaded

    def iter_slices(self, *, mmap: bool = True) -> Iterator[np.ndarray]:
        for index in range(len(self)):
            yield self.load_slice(index, mmap=mmap)

    def as_tensor(self) -> IrregularTensor:
        """The store as a zero-copy, memmap-backed :class:`IrregularTensor`."""
        return IrregularTensor.from_store(self)
