"""Regular dense 3-order tensor with CP utilities.

The inner loop of every PARAFAC2 solver builds the small regular tensor
``Y ∈ R^{R×J×K}`` whose frontal slices are ``Qkᵀ Xk`` and runs one CP-ALS
sweep on it.  This container provides the unfoldings and reconstruction
helpers for that step, plus what the synthetic scalability workloads need.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.matricization import unfold
from repro.tensor.products import khatri_rao


class DenseTensor:
    """A plain 3-order tensor stored as a ``float64`` ndarray."""

    def __init__(self, data) -> None:
        array = np.asarray(data, dtype=np.float64)
        if array.ndim != 3:
            raise ValueError(f"expected a 3-order tensor, got shape {array.shape}")
        if array.size == 0:
            raise ValueError("tensor must be non-empty")
        if not np.all(np.isfinite(array)):
            raise ValueError("tensor contains NaN or Inf entries")
        self._data = np.ascontiguousarray(array)

    @property
    def data(self) -> np.ndarray:
        return self._data

    @property
    def shape(self) -> tuple[int, int, int]:
        return self._data.shape

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    def __repr__(self) -> str:
        return f"DenseTensor(shape={self.shape})"

    def unfold(self, mode: int) -> np.ndarray:
        """Mode-``mode`` matricization (1-based, Kolda convention)."""
        return unfold(self._data, mode)

    def frontal_slice(self, k: int) -> np.ndarray:
        """``X(:, :, k)`` as a matrix."""
        return self._data[:, :, k]

    def norm(self) -> float:
        return float(np.linalg.norm(self._data.ravel()))

    @classmethod
    def from_frontal_slices(cls, slices) -> "DenseTensor":
        """Stack equal-shaped matrices ``Yk`` into a tensor along mode 3."""
        mats = [np.asarray(Yk, dtype=np.float64) for Yk in slices]
        if not mats:
            raise ValueError("need at least one slice")
        shape = mats[0].shape
        for idx, Yk in enumerate(mats):
            if Yk.shape != shape:
                raise ValueError(
                    f"slice {idx} has shape {Yk.shape}, expected {shape}"
                )
        return cls(np.stack(mats, axis=2))

    @classmethod
    def from_cp_factors(cls, factors, weights=None) -> "DenseTensor":
        """Materialize a CP model ``[[A, B, C]]`` (optionally weighted)."""
        A, B, C = (np.asarray(f, dtype=np.float64) for f in factors)
        rank = A.shape[1]
        if B.shape[1] != rank or C.shape[1] != rank:
            raise ValueError("all CP factors must share the rank")
        lam = np.ones(rank) if weights is None else np.asarray(weights, dtype=np.float64)
        if lam.shape != (rank,):
            raise ValueError(f"weights must have shape ({rank},)")
        unfolded = (A * lam) @ khatri_rao(C, B).T
        data = unfolded.reshape(A.shape[0], B.shape[0], C.shape[0], order="F")
        return cls(data)
