"""Time-window operations on irregular tensors.

The Table III workflow starts by "constructing the tensor included in the
range" — restricting every slice to a query time window and keeping only
slices that fully cover it.  These helpers implement that plus the trailing
/aligned views the stock analyses need.

Conventions: slices are row-indexed by time with the **most recent row
last** (the stock generator emits trailing windows), so ``trailing_window``
takes rows from the end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tensor.irregular import IrregularTensor
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class WindowedTensor:
    """A windowed view: the sub-tensor plus the indices of surviving slices.

    ``kept`` maps positions in ``tensor`` back to slice indices of the
    original tensor, so downstream analyses can translate results (e.g.
    similar-stock rankings) back to original identifiers.
    """

    tensor: IrregularTensor
    kept: list[int]

    def original_index(self, position: int) -> int:
        return self.kept[position]


def trailing_window(
    tensor: IrregularTensor,
    length: int,
    *,
    require_full: bool = True,
) -> WindowedTensor:
    """Keep the last ``length`` rows of every slice.

    Parameters
    ----------
    tensor:
        The irregular input.
    length:
        Window size in rows (time steps).
    require_full:
        When True (default, the paper's Table III restriction), slices
        shorter than ``length`` are dropped; when False they are kept
        whole.

    Returns
    -------
    WindowedTensor
        With equal-height slices when ``require_full`` is True.
    """
    check_positive_int(length, "length")
    slices: list[np.ndarray] = []
    kept: list[int] = []
    for k, Xk in enumerate(tensor):
        if Xk.shape[0] >= length:
            slices.append(Xk[-length:])
            kept.append(k)
        elif not require_full:
            slices.append(Xk)
            kept.append(k)
    if not slices:
        raise ValueError(
            f"no slice covers a window of {length} rows "
            f"(longest has {tensor.max_rows})"
        )
    return WindowedTensor(IrregularTensor(slices), kept)


def row_range_window(
    tensor: IrregularTensor,
    start: int,
    stop: int,
) -> WindowedTensor:
    """Keep rows ``[start, stop)`` counted from each slice's *end*.

    ``start=0`` is the most recent row; e.g. ``row_range_window(t, 20, 60)``
    selects the 40 rows ending 20 steps before each slice's last row —
    "the COVID window" style query.  Slices too short to cover the range
    are dropped.
    """
    if start < 0 or stop <= start:
        raise ValueError(f"need 0 <= start < stop, got [{start}, {stop})")
    slices: list[np.ndarray] = []
    kept: list[int] = []
    for k, Xk in enumerate(tensor):
        n = Xk.shape[0]
        if n >= stop:
            lo = n - stop
            hi = n - start
            slices.append(Xk[lo:hi])
            kept.append(k)
    if not slices:
        raise ValueError(f"no slice covers the row range [{start}, {stop})")
    return WindowedTensor(IrregularTensor(slices), kept)


def split_train_tail(
    tensor: IrregularTensor,
    tail_rows: int,
) -> tuple[IrregularTensor, IrregularTensor]:
    """Split every slice into (history, tail) for forecasting-style eval.

    Each slice must have more than ``tail_rows`` rows; the first part keeps
    everything except the last ``tail_rows`` rows.
    """
    check_positive_int(tail_rows, "tail_rows")
    heads: list[np.ndarray] = []
    tails: list[np.ndarray] = []
    for k, Xk in enumerate(tensor):
        if Xk.shape[0] <= tail_rows:
            raise ValueError(
                f"slice {k} has only {Xk.shape[0]} rows; cannot hold out "
                f"{tail_rows}"
            )
        heads.append(Xk[:-tail_rows])
        tails.append(Xk[-tail_rows:])
    return IrregularTensor(heads), IrregularTensor(tails)
