"""Structured matrix products: Kronecker, Khatri–Rao, Hadamard.

Implemented from scratch (broadcasting, not ``np.kron``) and consistent with
the column-major unfolding convention in :mod:`repro.tensor.matricization`:
``kron(a, b)`` indexes as ``a[i] * b[j]`` at position ``i*len(b) + j``, so
``(C ⊙ B)`` rows are ordered with the B-index varying fastest, matching
``X(1) ≈ A (C ⊙ B)ᵀ``.
"""

from __future__ import annotations

import numpy as np


def kronecker(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Kronecker product ``a ⊗ b`` of two matrices (or column vectors)."""
    A = np.atleast_2d(np.asarray(a, dtype=np.float64))
    B = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError("kronecker expects matrices")
    i, j = A.shape
    p, q = B.shape
    # outer product arranged so result[(r*p + s), (c*q + d)] = A[r,c]*B[s,d]
    out = A[:, None, :, None] * B[None, :, None, :]
    return out.reshape(i * p, j * q)


def khatri_rao(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Column-wise Khatri–Rao product ``a ⊙ b``.

    For ``a`` of shape ``(I, R)`` and ``b`` of shape ``(J, R)`` the result is
    ``(I·J, R)`` whose ``r``-th column is ``kron(a[:, r], b[:, r])``.
    """
    A = np.asarray(a, dtype=np.float64)
    B = np.asarray(b, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError("khatri_rao expects matrices")
    if A.shape[1] != B.shape[1]:
        raise ValueError(
            f"column counts must match: {A.shape[1]} vs {B.shape[1]}"
        )
    I, R = A.shape
    J = B.shape[0]
    return (A[:, None, :] * B[None, :, :]).reshape(I * J, R)


def hadamard(*matrices: np.ndarray) -> np.ndarray:
    """Element-wise product of one or more same-shaped matrices."""
    if not matrices:
        raise ValueError("hadamard needs at least one matrix")
    result = np.asarray(matrices[0], dtype=np.float64).copy()
    for other in matrices[1:]:
        arr = np.asarray(other, dtype=np.float64)
        if arr.shape != result.shape:
            raise ValueError(
                f"shape mismatch in hadamard: {result.shape} vs {arr.shape}"
            )
        result *= arr
    return result


def vec(matrix: np.ndarray) -> np.ndarray:
    """Column-major vectorization ``vec(X)`` (MATLAB convention).

    Satisfies ``vec(A B) = (Bᵀ ⊗ I) vec(A)`` — the identity Lemma 3's proof
    leans on.
    """
    A = np.asarray(matrix)
    if A.ndim != 2:
        raise ValueError(f"vec expects a matrix, got shape {A.shape}")
    return A.reshape(-1, order="F")
