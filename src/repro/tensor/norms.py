"""Norms and error metrics."""

from __future__ import annotations

import numpy as np


def frobenius_norm(array) -> float:
    """Frobenius norm of an array of any order."""
    values = np.asarray(array, dtype=np.float64)
    return float(np.sqrt(np.sum(values * values)))


def relative_error(actual, approximation) -> float:
    """``‖actual − approximation‖_F / ‖actual‖_F``.

    Returns ``inf`` for a zero reference with a nonzero approximation and
    ``0`` when both are zero.
    """
    a = np.asarray(actual, dtype=np.float64)
    b = np.asarray(approximation, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    denom = frobenius_norm(a)
    num = frobenius_norm(a - b)
    if denom == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return num / denom
