"""Mode-n matricization (unfolding) and its inverse.

Convention: Kolda & Bader [19], which the Tensor Toolbox (the paper's
substrate) uses.  For ``X ∈ R^{I1×I2×I3}``, the mode-n unfolding maps element
``(i1, i2, i3)`` to row ``in`` and a column index in which the *lower* modes
vary fastest.  Under this convention the CP model satisfies
``X(1) ≈ A1 (A3 ⊙ A2)ᵀ`` with ``⊙`` the column-wise Khatri–Rao product.
"""

from __future__ import annotations

import numpy as np


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``mode`` unfolding of a 3-order tensor (modes are 1-based).

    ``unfold(X, 1)`` is ``I1 × (I2·I3)``, ``unfold(X, 2)`` is
    ``I2 × (I1·I3)``, ``unfold(X, 3)`` is ``I3 × (I1·I2)``.
    """
    array = np.asarray(tensor)
    if array.ndim != 3:
        raise ValueError(f"expected a 3-order tensor, got shape {array.shape}")
    if mode not in (1, 2, 3):
        raise ValueError(f"mode must be 1, 2, or 3, got {mode}")
    axis = mode - 1
    # moveaxis puts the unfolding mode first; Fortran order then makes the
    # remaining modes vary lower-mode-fastest, matching Kolda & Bader.
    moved = np.moveaxis(array, axis, 0)
    return moved.reshape(moved.shape[0], -1, order="F")


def fold(matrix: np.ndarray, mode: int, shape: tuple[int, int, int]) -> np.ndarray:
    """Inverse of :func:`unfold`: rebuild the tensor of ``shape``."""
    array = np.asarray(matrix)
    if array.ndim != 2:
        raise ValueError(f"expected a matrix, got shape {array.shape}")
    if mode not in (1, 2, 3):
        raise ValueError(f"mode must be 1, 2, or 3, got {mode}")
    if len(shape) != 3:
        raise ValueError(f"shape must have 3 entries, got {shape}")
    axis = mode - 1
    expected_rows = shape[axis]
    other = [shape[i] for i in range(3) if i != axis]
    if array.shape != (expected_rows, other[0] * other[1]):
        raise ValueError(
            f"matrix shape {array.shape} inconsistent with mode-{mode} "
            f"unfolding of tensor shape {shape}"
        )
    moved_shape = (expected_rows, *other)
    moved = array.reshape(moved_shape, order="F")
    return np.moveaxis(moved, 0, axis)
