"""Tensor substrate: containers, unfoldings, and structured products.

* :class:`IrregularTensor` — the paper's ``{Xk}``: slices sharing a column
  count ``J`` but with per-slice row counts ``Ik``.
* :class:`DenseTensor` — a regular 3-order tensor with Kolda-convention
  mode-n matricization (used by the inner CP step and the synthetic
  scalability workloads).
* products — Kronecker, Khatri–Rao, Hadamard, consistent with the unfolding
  convention (``X(1) ≈ A (C ⊙ B)ᵀ``).
"""

from repro.tensor.dense import DenseTensor
from repro.tensor.irregular import IrregularTensor
from repro.tensor.matricization import fold, unfold
from repro.tensor.mmap_store import MmapSliceStore
from repro.tensor.norms import frobenius_norm, relative_error
from repro.tensor.products import hadamard, khatri_rao, kronecker
from repro.tensor.random import random_dense_tensor, random_irregular_tensor
from repro.tensor.windows import (
    WindowedTensor,
    row_range_window,
    split_train_tail,
    trailing_window,
)

__all__ = [
    "DenseTensor",
    "IrregularTensor",
    "MmapSliceStore",
    "WindowedTensor",
    "fold",
    "frobenius_norm",
    "hadamard",
    "khatri_rao",
    "kronecker",
    "random_dense_tensor",
    "random_irregular_tensor",
    "relative_error",
    "row_range_window",
    "split_train_tail",
    "trailing_window",
    "unfold",
]
