"""The irregular tensor ``{Xk}`` — the paper's central data structure.

An irregular tensor is a list of dense slice matrices ``Xk ∈ R^{Ik×J}``
whose column count ``J`` is shared but whose row counts ``Ik`` differ
(stocks with different listing periods, songs of different lengths, …).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.util.validation import check_matrix


class IrregularTensor:
    """A collection of dense slices ``Xk`` with a common column dimension.

    Parameters
    ----------
    slices:
        Sequence of 2-D arrays, each ``(Ik, J)`` with the same ``J``.
    copy:
        Whether to copy the slice data (default) or hold references.

    Notes
    -----
    Slices are stored as C-contiguous ``float64`` arrays.  The container is
    immutable by convention: methods never mutate slice data in place.
    """

    def __init__(self, slices: Iterable[np.ndarray], *, copy: bool = True) -> None:
        materialized = list(slices)
        if not materialized:
            raise ValueError("an irregular tensor needs at least one slice")
        checked = [
            check_matrix(Xk, f"slices[{idx}]") for idx, Xk in enumerate(materialized)
        ]
        J = checked[0].shape[1]
        for idx, Xk in enumerate(checked):
            if Xk.shape[1] != J:
                raise ValueError(
                    f"slices[{idx}] has {Xk.shape[1]} columns; expected {J} "
                    "(all slices must share the column dimension J)"
                )
        self._slices = [Xk.copy() if copy else Xk for Xk in checked]
        self._J = J

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._slices)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._slices)

    def __getitem__(self, index: int) -> np.ndarray:
        return self._slices[index]

    def __repr__(self) -> str:
        return (
            f"IrregularTensor(K={self.n_slices}, J={self.n_columns}, "
            f"Ik range [{min(self.row_counts)}, {max(self.row_counts)}], "
            f"{self.n_entries} entries)"
        )

    # ------------------------------------------------------------------ #
    # shape metadata
    # ------------------------------------------------------------------ #

    @property
    def slices(self) -> Sequence[np.ndarray]:
        """The underlying list of slice matrices (do not mutate)."""
        return self._slices

    @property
    def n_slices(self) -> int:
        """``K``, the number of frontal slices."""
        return len(self._slices)

    @property
    def n_columns(self) -> int:
        """``J``, the shared column dimension."""
        return self._J

    @property
    def row_counts(self) -> list[int]:
        """``[I1, …, IK]``: per-slice row counts — the irregularity profile."""
        return [Xk.shape[0] for Xk in self._slices]

    @property
    def max_rows(self) -> int:
        """``max Ik`` — Table II's "Max Dim. Ik" column."""
        return max(self.row_counts)

    @property
    def n_entries(self) -> int:
        """Total number of stored values ``Σk Ik·J``."""
        return sum(Xk.size for Xk in self._slices)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the slice data in bytes."""
        return sum(Xk.nbytes for Xk in self._slices)

    # ------------------------------------------------------------------ #
    # numerics
    # ------------------------------------------------------------------ #

    def squared_norm(self) -> float:
        """``Σk ‖Xk‖_F²`` — the denominator of the paper's fitness metric."""
        return float(sum(np.sum(Xk * Xk) for Xk in self._slices))

    def norm(self) -> float:
        """Global Frobenius norm ``sqrt(Σk ‖Xk‖_F²)``."""
        return float(np.sqrt(self.squared_norm()))

    def scaled(self, factor: float) -> "IrregularTensor":
        """Return a copy with every slice multiplied by ``factor``."""
        return IrregularTensor([Xk * factor for Xk in self._slices], copy=False)

    def transpose_concatenation(self) -> np.ndarray:
        """``∥k Xkᵀ`` — the ``J × (Σ Ik)`` matrix RD-ALS preprocesses."""
        return np.concatenate([Xk.T for Xk in self._slices], axis=1)

    def subset(self, indices: Sequence[int]) -> "IrregularTensor":
        """A new tensor holding the selected slices (analysis time-windows)."""
        picked = [self._slices[i] for i in indices]
        return IrregularTensor(picked)

    # ------------------------------------------------------------------ #
    # out-of-core interop
    # ------------------------------------------------------------------ #

    @classmethod
    def from_store(cls, store) -> "IrregularTensor":
        """Wrap an on-disk slice store without copying anything into RAM.

        ``store`` is a :class:`~repro.tensor.mmap_store.MmapSliceStore` (or
        anything with its ``load_slice``/``n_columns`` surface).  The
        resulting tensor's slices are read-only ``np.memmap`` views: methods
        stream through the OS page cache, and the process execution backend
        ships them to workers as file descriptors rather than copies.
        Validation is skipped — the store validated each slice when it was
        written.

        The store's files must outlive the returned tensor.
        """
        if len(store) == 0:
            raise ValueError("an irregular tensor needs at least one slice")
        tensor = cls.__new__(cls)
        tensor._slices = [store.load_slice(index) for index in range(len(store))]
        tensor._J = store.n_columns
        return tensor

    def to_store(self, directory, *, overwrite: bool = False):
        """Persist this tensor as an on-disk store (the out-of-core format).

        Returns the new :class:`~repro.tensor.mmap_store.MmapSliceStore`.
        """
        from repro.tensor.mmap_store import MmapSliceStore

        return MmapSliceStore.create(directory, self._slices, overwrite=overwrite)

    @classmethod
    def from_regular(cls, tensor: np.ndarray) -> "IrregularTensor":
        """Split a regular ``I×J×K`` array into K frontal slices.

        This is how the paper feeds the regular Traffic / PEMS-SF tensors and
        the ``tenrand`` scalability tensors to PARAFAC2 solvers.
        """
        array = np.asarray(tensor, dtype=np.float64)
        if array.ndim != 3:
            raise ValueError(f"expected a 3-order tensor, got shape {array.shape}")
        return cls([array[:, :, k] for k in range(array.shape[2])])
