"""The irregular tensor ``{Xk}`` — the paper's central data structure.

An irregular tensor is a list of slice matrices ``Xk ∈ R^{Ik×J}`` whose
column count ``J`` is shared but whose row counts ``Ik`` differ (stocks
with different listing periods, songs of different lengths, …).  Slices
are dense arrays by default; genuinely sparse workloads (EHR event logs,
clickstreams, sensor dropouts) can hold slices as
:class:`~repro.sparse.csr.CsrMatrix` instead, which DPar2's stage-1
compression sketches through SpMM without ever densifying.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.sparse.csr import CsrMatrix
from repro.sparse.ops import check_finite_csr, dense_to_sparse, slice_squared_norm
from repro.util.validation import check_matrix

#: CSR slices denser than this are densified at construction: at ≥ ~25%
#: fill the CSR arrays (value + 8-byte index per entry, for float64) stop
#: being smaller than the dense slice and the SpMM gather overhead stops
#: paying for itself.
DEFAULT_DENSITY_THRESHOLD = 0.25


class IrregularTensor:
    """A collection of slices ``Xk`` with a common column dimension.

    Parameters
    ----------
    slices:
        Sequence of 2-D arrays and/or :class:`~repro.sparse.csr.CsrMatrix`
        instances, each ``(Ik, J)`` with the same ``J``.
    copy:
        Whether to copy dense slice data (default) or hold references.
        CSR slices are always held by reference — they are immutable by
        convention throughout the library.
    dtype:
        Storage precision: ``float64`` (default) or ``float32``.  The
        float32 pipeline halves slice memory and roughly doubles BLAS
        throughput in DPar2's compression stage.
    density_threshold:
        CSR slices with density *above* this are densified at
        construction (the sparse representation no longer pays for
        itself); ``None`` selects :data:`DEFAULT_DENSITY_THRESHOLD`.
        Pass ``1.0`` to keep every CSR slice exactly as given — the
        internal transformations (:meth:`astype`, :meth:`scaled`,
        :meth:`subset`) do, so representations survive round-trips.

    Notes
    -----
    Dense slices are stored as C-contiguous arrays of the chosen dtype.
    The container is immutable by convention: methods never mutate slice
    data in place.
    """

    def __init__(
        self,
        slices: Iterable[np.ndarray],
        *,
        copy: bool = True,
        dtype=np.float64,
        density_threshold: float | None = None,
    ) -> None:
        materialized = list(slices)
        if not materialized:
            raise ValueError("an irregular tensor needs at least one slice")
        self._dtype = np.dtype(dtype)
        if self._dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"dtype must be float32 or float64, got {dtype!r}")
        if density_threshold is None:
            density_threshold = DEFAULT_DENSITY_THRESHOLD
        if not 0.0 <= density_threshold <= 1.0:
            raise ValueError(
                f"density_threshold must be in [0, 1], got {density_threshold}"
            )
        checked: list[np.ndarray | CsrMatrix] = []
        for idx, Xk in enumerate(materialized):
            if isinstance(Xk, CsrMatrix):
                check_finite_csr(Xk, f"slices[{idx}]")
                if Xk.density > density_threshold:
                    checked.append(
                        np.ascontiguousarray(Xk.to_dense(), dtype=self._dtype)
                    )
                else:
                    checked.append(Xk.astype(self._dtype))
            else:
                Xk = check_matrix(Xk, f"slices[{idx}]", dtype=self._dtype)
                checked.append(Xk.copy() if copy else Xk)
        J = checked[0].shape[1]
        for idx, Xk in enumerate(checked):
            if Xk.shape[1] != J:
                raise ValueError(
                    f"slices[{idx}] has {Xk.shape[1]} columns; expected {J} "
                    "(all slices must share the column dimension J)"
                )
        self._slices = checked
        self._J = J

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._slices)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._slices)

    def __getitem__(self, index: int) -> np.ndarray:
        return self._slices[index]

    def __repr__(self) -> str:
        sparse = sum(1 for Xk in self._slices if isinstance(Xk, CsrMatrix))
        sparse_note = f", {sparse} sparse slices" if sparse else ""
        return (
            f"IrregularTensor(K={self.n_slices}, J={self.n_columns}, "
            f"Ik range [{min(self.row_counts)}, {max(self.row_counts)}], "
            f"{self.n_entries} entries{sparse_note})"
        )

    # ------------------------------------------------------------------ #
    # shape metadata
    # ------------------------------------------------------------------ #

    @property
    def slices(self) -> Sequence[np.ndarray]:
        """The underlying list of slice matrices (do not mutate)."""
        return self._slices

    @property
    def n_slices(self) -> int:
        """``K``, the number of frontal slices."""
        return len(self._slices)

    @property
    def n_columns(self) -> int:
        """``J``, the shared column dimension."""
        return self._J

    @property
    def dtype(self) -> np.dtype:
        """Storage precision of the slices (float64 or float32)."""
        return self._dtype

    @property
    def row_counts(self) -> list[int]:
        """``[I1, …, IK]``: per-slice row counts — the irregularity profile."""
        return [Xk.shape[0] for Xk in self._slices]

    @property
    def max_rows(self) -> int:
        """``max Ik`` — Table II's "Max Dim. Ik" column."""
        return max(self.row_counts)

    @property
    def n_entries(self) -> int:
        """Total number of stored values: ``Ik·J`` per dense slice, ``nnz``
        per CSR slice."""
        return sum(
            Xk.nnz if isinstance(Xk, CsrMatrix) else Xk.size
            for Xk in self._slices
        )

    @property
    def nbytes(self) -> int:
        """Memory footprint of the slice data in bytes."""
        return sum(Xk.nbytes for Xk in self._slices)

    @property
    def has_sparse_slices(self) -> bool:
        """Whether any slice is held in CSR form."""
        return any(isinstance(Xk, CsrMatrix) for Xk in self._slices)

    # ------------------------------------------------------------------ #
    # representation conversion
    # ------------------------------------------------------------------ #

    def sparsify(self, threshold: float = DEFAULT_DENSITY_THRESHOLD) -> "IrregularTensor":
        """Convert dense slices at or below ``threshold`` density to CSR.

        The entry point of the sparse fast path for data that arrives
        dense: slices whose nonzero fraction is ``<= threshold`` become
        :class:`~repro.sparse.csr.CsrMatrix` (exact conversion, no value
        thresholding); denser slices and existing CSR slices pass through
        unchanged.
        """
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        converted: list[np.ndarray | CsrMatrix] = []
        for Xk in self._slices:
            if isinstance(Xk, CsrMatrix):
                converted.append(Xk)
                continue
            nnz = int(np.count_nonzero(Xk))
            if Xk.size and nnz / Xk.size <= threshold:
                converted.append(dense_to_sparse(Xk))
            else:
                converted.append(Xk)
        return IrregularTensor(
            converted, copy=False, dtype=self._dtype, density_threshold=1.0
        )

    def densified(self) -> "IrregularTensor":
        """Every slice as a dense array (self when none are sparse)."""
        if not self.has_sparse_slices:
            return self
        return IrregularTensor(
            [
                Xk.to_dense() if isinstance(Xk, CsrMatrix) else Xk
                for Xk in self._slices
            ],
            copy=False,
            dtype=self._dtype,
        )

    # ------------------------------------------------------------------ #
    # numerics
    # ------------------------------------------------------------------ #

    def squared_norm(self) -> float:
        """``Σk ‖Xk‖_F²`` — the denominator of the paper's fitness metric.

        Accumulated in float64 even for float32 slices, so the fitness
        denominator keeps full precision at either pipeline dtype.
        """
        return float(sum(slice_squared_norm(Xk) for Xk in self._slices))

    def norm(self) -> float:
        """Global Frobenius norm ``sqrt(Σk ‖Xk‖_F²)``."""
        return float(np.sqrt(self.squared_norm()))

    def scaled(self, factor: float) -> "IrregularTensor":
        """Return a copy with every slice multiplied by ``factor``."""
        return IrregularTensor(
            [
                Xk.scaled(factor)
                if isinstance(Xk, CsrMatrix)
                else Xk * self._dtype.type(factor)
                for Xk in self._slices
            ],
            copy=False,
            dtype=self._dtype,
            density_threshold=1.0,
        )

    def astype(self, dtype) -> "IrregularTensor":
        """This tensor at another precision (self when dtype already matches)."""
        dtype = np.dtype(dtype)
        if dtype == self._dtype:
            return self
        return IrregularTensor(
            self._slices, copy=False, dtype=dtype, density_threshold=1.0
        )

    def transpose_concatenation(self) -> np.ndarray:
        """``∥k Xkᵀ`` — the ``J × (Σ Ik)`` matrix RD-ALS preprocesses.

        CSR slices are densified here: the consumer (RD-ALS) runs a dense
        SVD on the concatenation anyway.
        """
        return np.concatenate(
            [
                (Xk.to_dense() if isinstance(Xk, CsrMatrix) else Xk).T
                for Xk in self._slices
            ],
            axis=1,
        )

    def subset(self, indices: Sequence[int]) -> "IrregularTensor":
        """A new tensor holding the selected slices (analysis time-windows)."""
        picked = [self._slices[i] for i in indices]
        return IrregularTensor(
            picked, dtype=self._dtype, density_threshold=1.0
        )

    # ------------------------------------------------------------------ #
    # device interop
    # ------------------------------------------------------------------ #

    def to_backend(self, xp) -> Sequence:
        """The slices as ``xp``-native arrays, transferred once and cached.

        ``xp`` is an :class:`~repro.linalg.array_module.ArrayModule` (or a
        backend name).  For the numpy module this returns the slice list
        itself — no copies.  For torch/CuPy the dense slices cross the
        host↔device boundary on first call and the native views are cached
        per backend, so repeated decompositions of the same tensor (rank
        sweeps, the experiment harnesses) upload the raw data once.
        CSR slices pass through as their host
        :class:`~repro.sparse.csr.CsrMatrix` objects: each one carries its
        own per-backend handle cache (:meth:`CsrMatrix.native
        <repro.sparse.csr.CsrMatrix.native>`), and the sparse kernels
        upload through it when they touch the slice.  Memory-mapped dense
        slices are refused: paging an out-of-core store through the
        device defeats both features — stream with the numpy backend
        instead.

        The cache holds device memory for the life of the tensor; call
        :meth:`release_backend_cache` to free it early.
        """
        from repro.linalg.array_module import get_xp

        xp = get_xp(xp)
        if xp.is_numpy:
            return self._slices
        if any(isinstance(Xk, np.memmap) for Xk in self._slices):
            raise ValueError(
                "memory-mapped (out-of-core) slices cannot move to compute "
                f"backend {xp.name!r}; use compute_backend='numpy' for "
                "out-of-core tensors"
            )
        cache = self.__dict__.setdefault("_backend_cache", {})
        if xp.name not in cache:
            cache[xp.name] = [
                Xk if isinstance(Xk, CsrMatrix) else xp.asarray(Xk)
                for Xk in self._slices
            ]
        return cache[xp.name]

    def release_backend_cache(self) -> None:
        """Drop any cached backend-native copies of the slices."""
        self.__dict__.pop("_backend_cache", None)

    # ------------------------------------------------------------------ #
    # out-of-core interop
    # ------------------------------------------------------------------ #

    @classmethod
    def from_store(cls, store) -> "IrregularTensor":
        """Wrap an on-disk slice store without copying anything into RAM.

        ``store`` is a :class:`~repro.tensor.mmap_store.MmapSliceStore` (or
        anything with its ``load_slice``/``n_columns`` surface).  Dense
        slices come back as read-only ``np.memmap`` views, sparse slices
        as :class:`~repro.sparse.csr.CsrMatrix` instances whose component
        arrays are memory-mapped: methods stream through the OS page
        cache, and the process execution backend ships dense views to
        workers as file descriptors rather than copies.  Validation is
        skipped — the store validated each slice when it was written.

        The store's files must outlive the returned tensor.
        """
        if len(store) == 0:
            raise ValueError("an irregular tensor needs at least one slice")
        tensor = cls.__new__(cls)
        tensor._slices = [store.load_slice(index) for index in range(len(store))]
        tensor._J = store.n_columns
        tensor._dtype = np.dtype(getattr(store, "dtype", np.float64))
        return tensor

    def to_store(self, directory, *, overwrite: bool = False):
        """Persist this tensor as an on-disk store (the out-of-core format).

        CSR slices are written in the store's sparse payload format —
        nothing is densified on disk.  Returns the new
        :class:`~repro.tensor.mmap_store.MmapSliceStore`.
        """
        from repro.tensor.mmap_store import MmapSliceStore

        return MmapSliceStore.create(
            directory, self._slices, overwrite=overwrite, dtype=self._dtype
        )

    @classmethod
    def from_regular(cls, tensor: np.ndarray, *, dtype=np.float64) -> "IrregularTensor":
        """Split a regular ``I×J×K`` array into K frontal slices.

        This is how the paper feeds the regular Traffic / PEMS-SF tensors and
        the ``tenrand`` scalability tensors to PARAFAC2 solvers.
        """
        array = np.asarray(tensor, dtype=dtype)
        if array.ndim != 3:
            raise ValueError(f"expected a 3-order tensor, got shape {array.shape}")
        return cls([array[:, :, k] for k in range(array.shape[2])], dtype=dtype)
