"""The irregular tensor ``{Xk}`` — the paper's central data structure.

An irregular tensor is a list of dense slice matrices ``Xk ∈ R^{Ik×J}``
whose column count ``J`` is shared but whose row counts ``Ik`` differ
(stocks with different listing periods, songs of different lengths, …).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.util.validation import check_matrix


class IrregularTensor:
    """A collection of dense slices ``Xk`` with a common column dimension.

    Parameters
    ----------
    slices:
        Sequence of 2-D arrays, each ``(Ik, J)`` with the same ``J``.
    copy:
        Whether to copy the slice data (default) or hold references.
    dtype:
        Storage precision: ``float64`` (default) or ``float32``.  The
        float32 pipeline halves slice memory and roughly doubles BLAS
        throughput in DPar2's compression stage.

    Notes
    -----
    Slices are stored as C-contiguous arrays of the chosen dtype.  The
    container is immutable by convention: methods never mutate slice data
    in place.
    """

    def __init__(
        self,
        slices: Iterable[np.ndarray],
        *,
        copy: bool = True,
        dtype=np.float64,
    ) -> None:
        materialized = list(slices)
        if not materialized:
            raise ValueError("an irregular tensor needs at least one slice")
        self._dtype = np.dtype(dtype)
        if self._dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"dtype must be float32 or float64, got {dtype!r}")
        checked = [
            check_matrix(Xk, f"slices[{idx}]", dtype=self._dtype)
            for idx, Xk in enumerate(materialized)
        ]
        J = checked[0].shape[1]
        for idx, Xk in enumerate(checked):
            if Xk.shape[1] != J:
                raise ValueError(
                    f"slices[{idx}] has {Xk.shape[1]} columns; expected {J} "
                    "(all slices must share the column dimension J)"
                )
        self._slices = [Xk.copy() if copy else Xk for Xk in checked]
        self._J = J

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._slices)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._slices)

    def __getitem__(self, index: int) -> np.ndarray:
        return self._slices[index]

    def __repr__(self) -> str:
        return (
            f"IrregularTensor(K={self.n_slices}, J={self.n_columns}, "
            f"Ik range [{min(self.row_counts)}, {max(self.row_counts)}], "
            f"{self.n_entries} entries)"
        )

    # ------------------------------------------------------------------ #
    # shape metadata
    # ------------------------------------------------------------------ #

    @property
    def slices(self) -> Sequence[np.ndarray]:
        """The underlying list of slice matrices (do not mutate)."""
        return self._slices

    @property
    def n_slices(self) -> int:
        """``K``, the number of frontal slices."""
        return len(self._slices)

    @property
    def n_columns(self) -> int:
        """``J``, the shared column dimension."""
        return self._J

    @property
    def dtype(self) -> np.dtype:
        """Storage precision of the slices (float64 or float32)."""
        return self._dtype

    @property
    def row_counts(self) -> list[int]:
        """``[I1, …, IK]``: per-slice row counts — the irregularity profile."""
        return [Xk.shape[0] for Xk in self._slices]

    @property
    def max_rows(self) -> int:
        """``max Ik`` — Table II's "Max Dim. Ik" column."""
        return max(self.row_counts)

    @property
    def n_entries(self) -> int:
        """Total number of stored values ``Σk Ik·J``."""
        return sum(Xk.size for Xk in self._slices)

    @property
    def nbytes(self) -> int:
        """Memory footprint of the slice data in bytes."""
        return sum(Xk.nbytes for Xk in self._slices)

    # ------------------------------------------------------------------ #
    # numerics
    # ------------------------------------------------------------------ #

    def squared_norm(self) -> float:
        """``Σk ‖Xk‖_F²`` — the denominator of the paper's fitness metric.

        Accumulated in float64 even for float32 slices, so the fitness
        denominator keeps full precision at either pipeline dtype.
        """
        return float(
            sum(np.sum(Xk * Xk, dtype=np.float64) for Xk in self._slices)
        )

    def norm(self) -> float:
        """Global Frobenius norm ``sqrt(Σk ‖Xk‖_F²)``."""
        return float(np.sqrt(self.squared_norm()))

    def scaled(self, factor: float) -> "IrregularTensor":
        """Return a copy with every slice multiplied by ``factor``."""
        return IrregularTensor(
            [Xk * self._dtype.type(factor) for Xk in self._slices],
            copy=False,
            dtype=self._dtype,
        )

    def astype(self, dtype) -> "IrregularTensor":
        """This tensor at another precision (self when dtype already matches)."""
        dtype = np.dtype(dtype)
        if dtype == self._dtype:
            return self
        return IrregularTensor(self._slices, copy=False, dtype=dtype)

    def transpose_concatenation(self) -> np.ndarray:
        """``∥k Xkᵀ`` — the ``J × (Σ Ik)`` matrix RD-ALS preprocesses."""
        return np.concatenate([Xk.T for Xk in self._slices], axis=1)

    def subset(self, indices: Sequence[int]) -> "IrregularTensor":
        """A new tensor holding the selected slices (analysis time-windows)."""
        picked = [self._slices[i] for i in indices]
        return IrregularTensor(picked, dtype=self._dtype)

    # ------------------------------------------------------------------ #
    # device interop
    # ------------------------------------------------------------------ #

    def to_backend(self, xp) -> Sequence:
        """The slices as ``xp``-native arrays, transferred once and cached.

        ``xp`` is an :class:`~repro.linalg.array_module.ArrayModule` (or a
        backend name).  For the numpy module this returns the slice list
        itself — no copies.  For torch/CuPy the slices cross the
        host↔device boundary on first call and the native views are cached
        per backend, so repeated decompositions of the same tensor (rank
        sweeps, the experiment harnesses) upload the raw data once.
        Memory-mapped slices are refused: paging an out-of-core store
        through the device defeats both features — stream with the numpy
        backend instead.

        The cache holds device memory for the life of the tensor; call
        :meth:`release_backend_cache` to free it early.
        """
        from repro.linalg.array_module import get_xp

        xp = get_xp(xp)
        if xp.is_numpy:
            return self._slices
        if any(isinstance(Xk, np.memmap) for Xk in self._slices):
            raise ValueError(
                "memory-mapped (out-of-core) slices cannot move to compute "
                f"backend {xp.name!r}; use compute_backend='numpy' for "
                "out-of-core tensors"
            )
        cache = self.__dict__.setdefault("_backend_cache", {})
        if xp.name not in cache:
            cache[xp.name] = [xp.asarray(Xk) for Xk in self._slices]
        return cache[xp.name]

    def release_backend_cache(self) -> None:
        """Drop any cached backend-native copies of the slices."""
        self.__dict__.pop("_backend_cache", None)

    # ------------------------------------------------------------------ #
    # out-of-core interop
    # ------------------------------------------------------------------ #

    @classmethod
    def from_store(cls, store) -> "IrregularTensor":
        """Wrap an on-disk slice store without copying anything into RAM.

        ``store`` is a :class:`~repro.tensor.mmap_store.MmapSliceStore` (or
        anything with its ``load_slice``/``n_columns`` surface).  The
        resulting tensor's slices are read-only ``np.memmap`` views: methods
        stream through the OS page cache, and the process execution backend
        ships them to workers as file descriptors rather than copies.
        Validation is skipped — the store validated each slice when it was
        written.

        The store's files must outlive the returned tensor.
        """
        if len(store) == 0:
            raise ValueError("an irregular tensor needs at least one slice")
        tensor = cls.__new__(cls)
        tensor._slices = [store.load_slice(index) for index in range(len(store))]
        tensor._J = store.n_columns
        tensor._dtype = np.dtype(getattr(store, "dtype", np.float64))
        return tensor

    def to_store(self, directory, *, overwrite: bool = False):
        """Persist this tensor as an on-disk store (the out-of-core format).

        Returns the new :class:`~repro.tensor.mmap_store.MmapSliceStore`.
        """
        from repro.tensor.mmap_store import MmapSliceStore

        return MmapSliceStore.create(
            directory, self._slices, overwrite=overwrite, dtype=self._dtype
        )

    @classmethod
    def from_regular(cls, tensor: np.ndarray, *, dtype=np.float64) -> "IrregularTensor":
        """Split a regular ``I×J×K`` array into K frontal slices.

        This is how the paper feeds the regular Traffic / PEMS-SF tensors and
        the ``tenrand`` scalability tensors to PARAFAC2 solvers.
        """
        array = np.asarray(tensor, dtype=dtype)
        if array.ndim != 3:
            raise ValueError(f"expected a 3-order tensor, got shape {array.shape}")
        return cls([array[:, :, k] for k in range(array.shape[2])], dtype=dtype)
