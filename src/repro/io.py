"""Model persistence: save/load fitted models and compressed tensors.

A downstream pipeline decomposes once and analyzes many times (the
Section IV-E workflow), so factors must round-trip to disk.  Everything is
stored as a single ``.npz`` archive with a small manifest — no pickling, so
archives are portable and safe to load.
"""

from __future__ import annotations

import numpy as np

from repro.decomposition.dpar2 import CompressedTensor
from repro.decomposition.result import IterationRecord, Parafac2Result

_FORMAT_VERSION = 1


def save_result(path, result: Parafac2Result) -> None:
    """Serialize a fitted PARAFAC2 model to ``path`` (.npz).

    Stores the factors, the method name, and the scalar bookkeeping; the
    per-iteration history is stored as a ``(n, 3)`` float array.
    """
    arrays = {
        "format_version": np.array(_FORMAT_VERSION),
        "kind": np.array("parafac2_result"),
        "method": np.array(result.method),
        "H": result.H,
        "S": result.S,
        "V": result.V,
        "n_iterations": np.array(result.n_iterations),
        "converged": np.array(result.converged),
        "preprocess_seconds": np.array(result.preprocess_seconds),
        "iterate_seconds": np.array(result.iterate_seconds),
        "preprocessed_bytes": np.array(result.preprocessed_bytes),
        "history": np.array(
            [[r.iteration, r.criterion, r.seconds] for r in result.history]
        ).reshape(-1, 3),
        "n_slices": np.array(len(result.Q)),
    }
    for k, Qk in enumerate(result.Q):
        arrays[f"Q_{k}"] = Qk
    np.savez_compressed(path, **arrays)


def load_result(path) -> Parafac2Result:
    """Load a model written by :func:`save_result`."""
    with np.load(path, allow_pickle=False) as data:
        _check_archive(data, "parafac2_result")
        n_slices = int(data["n_slices"])
        Q = [data[f"Q_{k}"] for k in range(n_slices)]
        history = [
            IterationRecord(int(row[0]), float(row[1]), float(row[2]))
            for row in data["history"]
        ]
        return Parafac2Result(
            Q=Q,
            H=data["H"],
            S=data["S"],
            V=data["V"],
            method=str(data["method"]),
            n_iterations=int(data["n_iterations"]),
            converged=bool(data["converged"]),
            preprocess_seconds=float(data["preprocess_seconds"]),
            iterate_seconds=float(data["iterate_seconds"]),
            preprocessed_bytes=int(data["preprocessed_bytes"]),
            history=history,
        )


def save_compressed(path, compressed: CompressedTensor) -> None:
    """Serialize a :func:`~repro.decomposition.dpar2.compress_tensor` result.

    Compressing once and decomposing many times (rank sweeps, warm restarts)
    is the intended workflow; this makes the compressed form durable.
    """
    arrays = {
        "format_version": np.array(_FORMAT_VERSION),
        "kind": np.array("compressed_tensor"),
        "D": compressed.D,
        "E": compressed.E,
        "F_blocks": compressed.F_blocks,
        "seconds": np.array(compressed.seconds),
        "n_slices": np.array(compressed.n_slices),
    }
    for k, Ak in enumerate(compressed.A):
        arrays[f"A_{k}"] = Ak
    np.savez_compressed(path, **arrays)


def load_compressed(path) -> CompressedTensor:
    """Load a compressed tensor written by :func:`save_compressed`."""
    with np.load(path, allow_pickle=False) as data:
        _check_archive(data, "compressed_tensor")
        n_slices = int(data["n_slices"])
        return CompressedTensor(
            A=[data[f"A_{k}"] for k in range(n_slices)],
            D=data["D"],
            E=data["E"],
            F_blocks=data["F_blocks"],
            seconds=float(data["seconds"]),
        )


def _check_archive(data, expected_kind: str) -> None:
    if "kind" not in data or "format_version" not in data:
        raise ValueError("archive is not a repro model file")
    kind = str(data["kind"])
    if kind != expected_kind:
        raise ValueError(f"archive holds a {kind!r}, expected {expected_kind!r}")
    version = int(data["format_version"])
    if version > _FORMAT_VERSION:
        raise ValueError(
            f"archive format v{version} is newer than this library "
            f"(supports up to v{_FORMAT_VERSION})"
        )
