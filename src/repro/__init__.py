"""repro — a from-scratch reproduction of DPar2 (ICDE 2022).

DPar2 (Jang & Kang) is a fast and scalable PARAFAC2 decomposition method for
irregular *dense* tensors.  This package implements the method, the three
baselines it is evaluated against, every substrate they need, synthetic
equivalents of the paper's datasets, the discovery pipeline of Section IV-E,
and one harness per table/figure of the evaluation.

Quickstart
----------
>>> from repro import DecompositionConfig, dpar2, random_irregular_tensor
>>> tensor = random_irregular_tensor([40, 60, 50], n_columns=30, random_state=0)
>>> result = dpar2(tensor, DecompositionConfig(rank=5, random_state=0))
>>> 0.0 <= result.fitness(tensor) <= 1.0
True
"""

from repro.decomposition import (
    CompressedTensor,
    Parafac2Result,
    SOLVERS,
    StreamingDpar2,
    compress_tensor,
    constrained_dpar2,
    cp_als,
    dpar2,
    get_solver,
    parafac2_als,
    rd_als,
    spartan,
)
from repro.tensor import (
    DenseTensor,
    IrregularTensor,
    MmapSliceStore,
    random_dense_tensor,
    random_irregular_tensor,
)
from repro.util.config import DecompositionConfig

__version__ = "1.2.0"

__all__ = [
    "CompressedTensor",
    "DecompositionConfig",
    "DenseTensor",
    "IrregularTensor",
    "MmapSliceStore",
    "Parafac2Result",
    "SOLVERS",
    "StreamingDpar2",
    "compress_tensor",
    "constrained_dpar2",
    "cp_als",
    "dpar2",
    "get_solver",
    "parafac2_als",
    "random_dense_tensor",
    "random_irregular_tensor",
    "rd_als",
    "spartan",
]
