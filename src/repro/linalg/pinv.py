"""Moore–Penrose pseudoinverse for the small ``R×R`` ALS normal matrices.

All CP-style updates in the paper end with ``G (XᵀX ∗ YᵀY)†`` where the
pseudoinverted matrix is only ``R×R`` — the paper notes this cost is
negligible next to computing ``G`` itself (Section III-E).
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_matrix


def pseudoinverse(matrix, *, rcond: float = 1e-12) -> np.ndarray:
    """Moore–Penrose pseudoinverse via SVD with relative cutoff ``rcond``."""
    A = check_matrix(matrix, "matrix", allow_empty=True)
    if A.size == 0:
        return A.T.copy()
    U, sigma, Vt = np.linalg.svd(A, full_matrices=False)
    cutoff = rcond * (sigma[0] if sigma.size else 0.0)
    inv_sigma = np.where(sigma > cutoff, 1.0 / np.where(sigma > cutoff, sigma, 1.0), 0.0)
    return (Vt.T * inv_sigma) @ U.T


def solve_gram(gram, rhs_t) -> np.ndarray:
    """Solve ``X @ gram = rhs`` for ``X``, i.e. return ``rhs @ gram†``.

    ``gram`` is the ``R×R`` Hadamard product of Gram matrices (symmetric
    positive semi-definite); ``rhs_t`` is the MTTKRP result ``G``. A Cholesky
    solve is used when ``gram`` is safely positive definite, falling back to
    the pseudoinverse when it is rank deficient (which happens legitimately
    when the data rank is below the target rank).
    """
    G = check_matrix(gram, "gram")
    B = check_matrix(rhs_t, "rhs_t")
    if G.shape[0] != G.shape[1]:
        raise ValueError(f"gram must be square, got shape {G.shape}")
    if B.shape[1] != G.shape[0]:
        raise ValueError(
            f"rhs_t has {B.shape[1]} columns but gram is {G.shape[0]}x{G.shape[1]}"
        )
    try:
        chol = np.linalg.cholesky(G)
        # Solve Gᵀ Xᵀ = rhsᵀ; G symmetric so one factorization serves both.
        y = np.linalg.solve(chol, B.T)
        x = np.linalg.solve(chol.T, y)
        return x.T
    except np.linalg.LinAlgError:
        return B @ pseudoinverse(G)
