"""Randomized SVD — Algorithm 1 of the DPar2 paper (Halko et al. [20]).

Given ``A`` of shape ``I×J`` and a target rank ``R``:

1. draw a Gaussian test matrix ``Omega`` of shape ``J×(R+s)``,
2. form ``Y = (A Aᵀ)^q A Omega`` (power iterations sharpen the captured
   subspace when the singular spectrum decays slowly),
3. orthonormalize ``Q ← qr(Y)``,
4. project ``B = Qᵀ A`` (small: ``(R+s)×J``),
5. take the truncated SVD of ``B`` and lift the left factor back by ``Q``.

Cost is ``O(I J R)`` versus ``O(I J min(I, J))`` for a full SVD — this is
the asymmetry DPar2's compression stage exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.array_module import get_xp
from repro.sparse.csr import CsrMatrix
from repro.util.rng import as_generator
from repro.util.validation import check_matrix, check_rank


@dataclass(frozen=True)
class RandomizedSVDResult:
    """Rank-``R`` factors ``A ≈ U @ diag(singular_values) @ Vᵀ``.

    ``U`` has orthonormal columns (``I×R``), ``singular_values`` is a
    non-increasing non-negative 1-D array of length ``R``, and ``V`` has
    orthonormal columns (``J×R``).
    """

    U: np.ndarray
    singular_values: np.ndarray
    V: np.ndarray

    @property
    def rank(self) -> int:
        return self.singular_values.shape[0]

    def reconstruct(self) -> np.ndarray:
        """Materialize the rank-``R`` approximation ``U S Vᵀ``."""
        return (self.U * self.singular_values) @ self.V.T

    def sigma_matrix(self) -> np.ndarray:
        """The diagonal matrix ``S`` (paper's ``Bk`` / ``E``)."""
        return np.diag(self.singular_values)


def randomized_svd(
    matrix,
    rank: int,
    *,
    oversampling: int = 5,
    power_iterations: int = 1,
    random_state=None,
    xp=None,
) -> RandomizedSVDResult:
    """Approximate the top-``rank`` SVD of ``matrix`` (Algorithm 1).

    Parameters
    ----------
    matrix:
        Dense 2-D array of shape ``(I, J)`` — a host ndarray, or an
        ``xp``-native array when a non-default ``xp`` is given (native
        inputs skip host validation; the caller vouches for them) — or a
        :class:`~repro.sparse.csr.CsrMatrix`, which runs the same pipeline
        with the two big products done as SpMM (``O(nnz·(R+s))`` instead
        of ``O(I·J·(R+s))``) on any backend via the module's sparse
        surface.
    rank:
        Target rank ``R``; capped implicitly by ``min(I, J)``.
    oversampling:
        Extra sketch columns ``s``; 5–10 is the standard choice.
    power_iterations:
        Exponent ``q`` in ``(A Aᵀ)^q A Omega``. Each step multiplies by
        ``A`` and ``Aᵀ`` once, with a QR re-orthonormalization in between to
        avoid the numerical collapse of repeated squaring.
    random_state:
        Seed or generator for the Gaussian test matrix (always a host
        numpy generator, whatever the backend).
    xp:
        Compute backend (:func:`repro.linalg.array_module.get_xp` spec).
        The default numpy module runs the historical code path — same
        calls, same bits.  Other modules run the pipeline on their device;
        the returned factors are always host ndarrays.

    Returns
    -------
    RandomizedSVDResult
        With exactly ``min(rank, I, J)`` components, in ``matrix``'s float
        dtype (float32 inputs stay float32; everything else runs float64).

    Notes
    -----
    The Gaussian sketch is always *drawn* in float64 and then cast, so a
    float32 run consumes the identical generator stream and sees the same
    sketch to within rounding — float32/float64 results are comparable for
    a fixed seed, and every backend consumes the identical sketch.
    """
    xp = get_xp(xp)
    if isinstance(matrix, CsrMatrix):
        return _sparse_randomized_svd(
            matrix,
            rank,
            oversampling=oversampling,
            power_iterations=power_iterations,
            random_state=random_state,
            xp=xp,
        )
    if xp.is_native(matrix) and not isinstance(matrix, np.ndarray):
        A = matrix
    else:
        A = check_matrix(matrix, "matrix", dtype=None)
    I, J = A.shape
    effective_rank = min(check_rank(rank), I, J)
    if oversampling < 0:
        raise ValueError(f"oversampling must be >= 0, got {oversampling}")
    if power_iterations < 0:
        raise ValueError(f"power_iterations must be >= 0, got {power_iterations}")
    rng = as_generator(random_state)

    dtype = xp.numpy_dtype(A)
    sketch_size = min(effective_rank + oversampling, min(I, J))
    omega = rng.standard_normal((J, sketch_size))
    if dtype != np.float64:
        omega = omega.astype(dtype)

    A = xp.asarray(A)
    Y = xp.matmul(A, xp.asarray(omega))
    Q, _ = xp.qr(Y)
    for _ in range(power_iterations):
        # Re-orthonormalize between the Aᵀ and A applications; without it the
        # columns of Y align with the top singular vector and precision dies.
        Z, _ = xp.qr(xp.matmul(xp.transpose(A), Q))
        Q, _ = xp.qr(xp.matmul(A, Z))

    B = xp.matmul(xp.transpose(Q), A)
    U_small, sigma, Vt = xp.svd(B, full_matrices=False)
    U = xp.matmul(Q, U_small[:, :effective_rank])
    return RandomizedSVDResult(
        U=xp.to_numpy(U),
        singular_values=xp.to_numpy(sigma)[:effective_rank].copy(),
        V=np.ascontiguousarray(xp.to_numpy(Vt)[:effective_rank].T),
    )


def _sparse_randomized_svd(
    A: CsrMatrix,
    rank: int,
    *,
    oversampling: int,
    power_iterations: int,
    random_state,
    xp=None,
) -> RandomizedSVDResult:
    """Algorithm 1 with the ``A``-sized products as SpMM.

    Identical structure and identical Gaussian sketch to the dense path
    (the generator stream is consumed the same way), so for a fixed seed
    the factors match the densified run to floating-point rounding — the
    only difference is the order in which each dot product's terms are
    summed.  Dense intermediates are the ``(R+s)``-column ``Y``/``Q``/``Z``
    panels; the raw matrix is only ever touched through its CSR arrays.

    On a non-numpy ``xp`` the CSR structure (and its cached transpose)
    uploads once through :meth:`CsrMatrix.native
    <repro.sparse.csr.CsrMatrix.native>` and the whole pipeline — SpMM
    sketches, panel QRs, the small SVD — stays device-resident; only the
    truncated factors come back.  The numpy module runs the historical
    host code path, bit for bit.
    """
    xp = get_xp(xp)
    I, J = A.shape
    effective_rank = min(check_rank(rank), I, J)
    if oversampling < 0:
        raise ValueError(f"oversampling must be >= 0, got {oversampling}")
    if power_iterations < 0:
        raise ValueError(f"power_iterations must be >= 0, got {power_iterations}")
    rng = as_generator(random_state)

    dtype = A.dtype
    sketch_size = min(effective_rank + oversampling, min(I, J))
    omega = rng.standard_normal((J, sketch_size))
    if dtype != np.float64:
        omega = omega.astype(dtype)

    if not xp.is_numpy:
        # Same pipeline on the device: the transpose product runs through
        # the host-cached CSC-as-CSR structure, so every backend uses its
        # plain forward SpMM kernel (see StackedCsr.t_matmul_dense).
        handle = A.native(xp)
        handle_t = A.transpose().native(xp)
        Y = xp.spmm(handle, xp.asarray(omega))
        Q, _ = xp.qr(Y)
        for _ in range(power_iterations):
            Z, _ = xp.qr(xp.spmm(handle_t, Q))
            Q, _ = xp.qr(xp.spmm(handle, Z))
        B = xp.transpose(xp.spmm(handle_t, Q))  # (sketch, J) = Qᵀ A
        U_small, sigma, Vt = xp.svd(B, full_matrices=False)
        U = xp.matmul(Q, U_small[:, :effective_rank])
        return RandomizedSVDResult(
            U=xp.to_numpy(U),
            singular_values=xp.to_numpy(sigma)[:effective_rank].copy(),
            V=np.ascontiguousarray(xp.to_numpy(Vt)[:effective_rank].T),
        )

    Y = A.matmul_dense(omega)
    Q, _ = np.linalg.qr(Y)
    for _ in range(power_iterations):
        Z, _ = np.linalg.qr(A.t_matmul_dense(Q))
        Q, _ = np.linalg.qr(A.matmul_dense(Z))

    B = A.t_matmul_dense(Q).T  # (sketch, J) = Qᵀ A
    U_small, sigma, Vt = np.linalg.svd(B, full_matrices=False)
    U = Q @ U_small[:, :effective_rank]
    return RandomizedSVDResult(
        U=U,
        singular_values=sigma[:effective_rank].copy(),
        V=np.ascontiguousarray(Vt[:effective_rank].T),
    )
