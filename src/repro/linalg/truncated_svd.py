"""Deterministic truncated SVD.

Used wherever the paper calls for an *exact* small SVD: the ``R×R`` inner
SVD of ``F(k) E Dᵀ V Sk Hᵀ`` in DPar2's iteration, and the slice SVDs in
PARAFAC2-ALS / SPARTan.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.array_module import get_xp
from repro.linalg.randomized_svd import RandomizedSVDResult
from repro.util.validation import check_matrix, check_rank


def truncated_svd(matrix, rank: int, *, xp=None) -> RandomizedSVDResult:
    """Exact SVD of ``matrix`` truncated to the top ``rank`` components.

    Returns the same :class:`RandomizedSVDResult` container as the randomized
    variant so the two are drop-in interchangeable (useful for ablations).
    ``xp`` selects the compute backend (default numpy — the historical,
    bitwise-stable path); factors come back as host ndarrays either way.
    """
    xp = get_xp(xp)
    A = check_matrix(matrix, "matrix")
    effective_rank = min(check_rank(rank), *A.shape)
    U, sigma, Vt = xp.svd(xp.asarray(A), full_matrices=False)
    U, sigma, Vt = xp.to_numpy(U), xp.to_numpy(sigma), xp.to_numpy(Vt)
    return RandomizedSVDResult(
        U=U[:, :effective_rank].copy(),
        singular_values=sigma[:effective_rank].copy(),
        V=Vt[:effective_rank].T.copy(),
    )


def svd_polar_factor(matrix, rank: int) -> np.ndarray:
    """Return ``Z Pᵀ`` from the truncated SVD ``Z Σ Pᵀ`` of ``matrix``.

    This is the minimizer of ``‖X − Q M‖_F`` over column-orthogonal ``Q``
    (the orthogonal Procrustes solution), used to update ``Qk`` in
    PARAFAC2-ALS (Algorithm 2, line 5).
    """
    result = truncated_svd(matrix, rank)
    return result.U @ result.V.T
