"""Linear-algebra substrate.

Everything the decompositions need, implemented from scratch on top of the
dense BLAS/LAPACK kernels numpy exposes:

* :func:`randomized_svd` — Algorithm 1 of the paper (Halko et al. sketch +
  power iteration), the compression primitive of DPar2.
* :func:`truncated_svd` — deterministic rank-``R`` SVD.
* :func:`gram_svd` — SVD of a tall matrix via the eigendecomposition of its
  ``J×J`` Gram matrix; used by RD-ALS preprocessing where the concatenated
  matrix has ``sum(Ik)`` rows but few columns.
* :func:`orthonormal_columns` / :func:`pseudoinverse` — shared helpers.
* :mod:`repro.linalg.kernels` — batched/stacked kernels for the DPar2 hot
  paths: :func:`batched_randomized_svd` (bucketed stage-1 compression),
  :func:`batched_stacked_matmul`, and the allocation-free
  :class:`SweepWorkspace`.
* :mod:`repro.linalg.array_module` — the ``xp`` dispatch layer that lets
  every kernel above run on numpy (default, bitwise-stable), PyTorch
  (CPU/CUDA), or CuPy: :func:`get_xp` resolves a backend name into an
  :class:`ArrayModule`.
"""

from repro.linalg.array_module import (
    COMPUTE_BACKEND_NAMES,
    ArrayModule,
    BackendUnavailableError,
    backend_available,
    get_xp,
)
from repro.linalg.gram import gram_svd
from repro.linalg.kernels import (
    DeviceSweepWorkspace,
    SweepWorkspace,
    acquire_sweep_workspace,
    batched_randomized_svd,
    batched_stacked_matmul,
    bucket_by_rows,
    release_sweep_workspace,
)
from repro.linalg.pinv import pseudoinverse, solve_gram
from repro.linalg.qr import orthonormal_columns
from repro.linalg.randomized_svd import RandomizedSVDResult, randomized_svd
from repro.linalg.truncated_svd import truncated_svd

__all__ = [
    "ArrayModule",
    "BackendUnavailableError",
    "COMPUTE_BACKEND_NAMES",
    "DeviceSweepWorkspace",
    "RandomizedSVDResult",
    "SweepWorkspace",
    "backend_available",
    "get_xp",
    "acquire_sweep_workspace",
    "batched_randomized_svd",
    "batched_stacked_matmul",
    "bucket_by_rows",
    "gram_svd",
    "orthonormal_columns",
    "pseudoinverse",
    "randomized_svd",
    "release_sweep_workspace",
    "solve_gram",
    "truncated_svd",
]
