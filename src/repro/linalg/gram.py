"""SVD of very tall matrices via their Gram matrix.

RD-ALS preprocesses by taking the SVD of the row-concatenation of all slices,
a ``(sum Ik) × J`` matrix.  When ``sum Ik >> J`` the memory- and time-cheap
route is the eigendecomposition of the ``J×J`` Gram matrix
``Σk Xkᵀ Xk`` — it never materializes the concatenation.  This is the honest
version of the preprocessing the paper attributes to Cheng & Haardt [18]:
still much more expensive than DPar2's per-slice randomized SVDs (it scans
every slice at full width), but not artificially slowed down.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.validation import check_matrix, check_rank


def gram_svd(slices: Sequence[np.ndarray], rank: int) -> tuple[np.ndarray, np.ndarray]:
    """Top-``rank`` right singular vectors of the stacked slices.

    Parameters
    ----------
    slices:
        Matrices ``Xk`` of shape ``(Ik, J)`` sharing the column count ``J``.
    rank:
        Number of singular pairs to return.

    Returns
    -------
    (V, singular_values):
        ``V`` is ``J×R`` with orthonormal columns — the dominant right
        singular vectors of ``[X1; …; XK]`` — and ``singular_values`` the
        corresponding singular values (non-increasing).
    """
    if not slices:
        raise ValueError("slices must be a non-empty sequence")
    checked = [check_matrix(Xk, f"slices[{idx}]") for idx, Xk in enumerate(slices)]
    J = checked[0].shape[1]
    for idx, Xk in enumerate(checked):
        if Xk.shape[1] != J:
            raise ValueError(
                f"slices[{idx}] has {Xk.shape[1]} columns, expected {J}"
            )
    effective_rank = min(check_rank(rank), J)

    gram = np.zeros((J, J))
    for Xk in checked:
        gram += Xk.T @ Xk

    eigenvalues, eigenvectors = np.linalg.eigh(gram)
    order = np.argsort(eigenvalues)[::-1][:effective_rank]
    top_values = np.clip(eigenvalues[order], 0.0, None)
    V = eigenvectors[:, order]
    return V, np.sqrt(top_values)
