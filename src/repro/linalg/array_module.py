"""Backend-agnostic array-module dispatch — the ``xp`` layer.

DPar2's hot paths were refactored (PR 2) into stacked 3-D matmul / QR /
SVD / einsum calls, which map 1:1 onto the batched primitives every dense
array library exposes.  This module is the thin seam that lets those
kernels run on any of them: an :class:`ArrayModule` bundles the dozen
operations the pipeline actually uses, and :func:`get_xp` resolves a
backend name into a live module:

``numpy``
    The default.  Every operation delegates straight to the numpy function
    the kernels called before this layer existed, so results are **bitwise
    identical** to direct numpy code — the equality tests that pin the
    batched kernels to their per-slice references run unchanged through it.
``torch`` / ``torch-cuda``
    PyTorch on CPU or CUDA.  ``torch.linalg`` ships the same batched
    QR/SVD surface; host arrays move to the device through pinned staging
    buffers (``pin_memory`` + ``non_blocking`` copies) so transfers overlap
    compute where the driver allows it.
``cupy``
    CuPy, whose API mirrors numpy's — the generic code paths run verbatim.

Device backends are *optional*: importing this module never imports torch
or cupy.  Resolution is lazy, and a missing library raises
:class:`BackendUnavailableError` with the install hint, so environments
without accelerators pay nothing and fail clearly.

Conventions shared by every module:

* ``asarray`` accepts host ndarrays or backend-native arrays and returns a
  native array on the module's device; ``to_numpy`` is the inverse.  For
  the numpy module both are no-copy no-ops.
* ``qr`` is reduced-mode, ``svd(..., full_matrices=False)`` returns
  ``(U, S, Vh)`` — the LAPACK ``gesdd`` convention numpy and torch share.
* All linalg entry points accept stacked ``(..., m, n)`` operands.
* RNG draws always happen on the host with numpy generators and are then
  shipped over — a fixed seed therefore feeds every backend the same
  sketch, which is what makes cross-backend parity testable at all.
* The sparse surface (``sparse_csr`` / ``spmm`` / ``spmm_t``) mirrors the
  dense one: host CSR arrays go up once as a backend-native handle, and
  the two SpMM products the stage-1 sketch needs run on that handle.  The
  numpy module wraps the very same scipy/pure-numpy kernels
  :class:`~repro.sparse.stacked.StackedCsr` always used, so host results
  stay bitwise identical; torch uses ``sparse_csr_tensor`` + ``sparse.mm``
  and CuPy uses ``cupyx.scipy.sparse.csr_matrix``.
"""

from __future__ import annotations

import abc
from typing import ClassVar

import numpy as np

__all__ = [
    "ArrayModule",
    "BackendUnavailableError",
    "COMPUTE_BACKEND_NAMES",
    "CupyModule",
    "NumpyModule",
    "TorchModule",
    "backend_available",
    "get_xp",
]

#: Registry names, in the order they should be offered to users.
COMPUTE_BACKEND_NAMES = ("numpy", "torch", "torch-cuda", "cupy")


class BackendUnavailableError(ImportError):
    """A compute backend's library (or device) is not present.

    Subclasses ``ImportError`` so callers that probe optional backends can
    catch the usual exception; the message always carries an install hint.
    """


class ArrayModule(abc.ABC):
    """The operation surface DPar2's kernels need from an array library.

    One instance per backend (see :func:`get_xp`); instances are stateless
    apart from the underlying library handle, so they are safe to share
    across threads and calls.
    """

    name: ClassVar[str]
    #: ``"cpu"`` or ``"cuda"`` — where native arrays live.
    device: ClassVar[str] = "cpu"
    #: True only for the numpy module, whose operations are the very
    #: functions the kernels called historically (the bitwise-exact path).
    is_numpy: ClassVar[bool] = False

    @property
    def is_device(self) -> bool:
        """Whether arrays live off-host (host↔device transfers are real)."""
        return self.device != "cpu"

    # ------------------------------------------------------------------ #
    # movement
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def asarray(self, array, dtype=None):
        """Host ndarray or native array → native array on this device."""

    @abc.abstractmethod
    def to_numpy(self, array) -> np.ndarray:
        """Native array → host :class:`numpy.ndarray` (no-op for numpy)."""

    @abc.abstractmethod
    def is_native(self, array) -> bool:
        """Whether ``array`` is already this backend's native type."""

    @abc.abstractmethod
    def numpy_dtype(self, array) -> np.dtype:
        """The numpy dtype corresponding to a native array's dtype."""

    # ------------------------------------------------------------------ #
    # creation
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def empty(self, shape, dtype):
        """Uninitialized native array."""

    @abc.abstractmethod
    def zeros(self, shape, dtype):
        """Zero-filled native array."""

    @abc.abstractmethod
    def stack(self, arrays):
        """Stack same-shape native arrays along a new leading axis."""

    # ------------------------------------------------------------------ #
    # compute
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def matmul(self, a, b):
        """Batched matrix product (``a @ b`` semantics)."""

    @abc.abstractmethod
    def einsum(self, subscripts: str, *operands):
        """Einstein-summation contraction."""

    @abc.abstractmethod
    def qr(self, a):
        """Reduced QR of (stacked) matrices → ``(Q, R)``."""

    @abc.abstractmethod
    def svd(self, a, full_matrices: bool = False):
        """SVD of (stacked) matrices → ``(U, S, Vh)``."""

    @abc.abstractmethod
    def transpose(self, a):
        """Swap the last two axes (a view where the backend allows it)."""

    @abc.abstractmethod
    def reshape(self, a, shape):
        """Native array viewed with another shape (copies only if needed)."""

    @abc.abstractmethod
    def astype(self, a, dtype):
        """Native array at another precision (may return ``a`` unchanged)."""

    @abc.abstractmethod
    def copy(self, a):
        """Contiguous independent copy of a native array."""

    @abc.abstractmethod
    def to_float(self, scalar) -> float:
        """0-d native array → Python float (synchronizes device backends)."""

    def synchronize(self) -> None:
        """Block until queued device work finishes (no-op on host)."""

    # ------------------------------------------------------------------ #
    # sparse (CSR) surface
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def sparse_csr(self, indptr, indices, data, shape):
        """Backend-native CSR handle for a 2-D ``shape`` sparse matrix.

        ``indptr``/``indices`` are int64 host arrays, ``data`` a float32 or
        float64 host array.  The handle is opaque to callers — it only ever
        feeds :meth:`spmm` / :meth:`spmm_t` on the same module.  Device
        modules upload the three arrays once per call; callers cache the
        handle (see :meth:`repro.sparse.stacked.StackedCsr.native`).
        """

    @abc.abstractmethod
    def spmm(self, sparse, dense):
        """``sparse @ dense`` for a :meth:`sparse_csr` handle and a native
        2-D dense operand; returns a native dense array."""

    @abc.abstractmethod
    def spmm_t(self, sparse, dense):
        """``sparseᵀ @ dense`` — the projection product of the sketch."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, device={self.device!r})"


class NumpyModule(ArrayModule):
    """The default backend: direct delegation to numpy.

    Every method forwards to the exact numpy call the kernels used before
    the ``xp`` layer existed, so routing through this module changes
    nothing — not even the bits.
    """

    name = "numpy"
    device = "cpu"
    is_numpy = True

    def asarray(self, array, dtype=None):
        return np.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        return np.asarray(array)

    def is_native(self, array) -> bool:
        return isinstance(array, np.ndarray)

    def numpy_dtype(self, array) -> np.dtype:
        return np.asarray(array).dtype

    def empty(self, shape, dtype):
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype):
        return np.zeros(shape, dtype=dtype)

    def stack(self, arrays):
        return np.stack(arrays)

    def matmul(self, a, b):
        return np.matmul(a, b)

    def einsum(self, subscripts, *operands):
        return np.einsum(subscripts, *operands, optimize=True)

    def qr(self, a):
        return np.linalg.qr(a)

    def svd(self, a, full_matrices: bool = False):
        return np.linalg.svd(a, full_matrices=full_matrices)

    def transpose(self, a):
        return np.swapaxes(a, -2, -1)

    def reshape(self, a, shape):
        return np.reshape(a, shape)

    def astype(self, a, dtype):
        return np.asarray(a).astype(dtype, copy=False)

    def copy(self, a):
        return np.asarray(a).copy()

    def to_float(self, scalar) -> float:
        return float(scalar)

    def sparse_csr(self, indptr, indices, data, shape):
        # A StackedCsr of one slice *is* a plain 2-D CSR, and it already
        # owns both host SpMM kernels (the scipy block product and the
        # grouped-gather fallback) — wrapping it keeps this module's sparse
        # products summing in exactly the order the host fast path always
        # did.  Imported lazily: stacked.py routes its device path back
        # through this module's surface.
        from repro.sparse.stacked import StackedCsr

        return StackedCsr(1, shape, indptr, indices, data)

    def spmm(self, sparse, dense):
        dense = np.asarray(dense)
        return sparse.matmul_dense(dense[None])[0]

    def spmm_t(self, sparse, dense):
        dense = np.asarray(dense)
        return sparse.t_matmul_dense(dense[None])[0]


class TorchModule(ArrayModule):
    """PyTorch backend, CPU (``torch``) or CUDA (``torch-cuda``).

    CPU torch runs the same LAPACK family numpy does, so float64 results
    track the numpy backend to rounding (the parity suite pins this at
    1e-10 on the fit).  On CUDA, host→device transfers stage through
    pinned (page-locked) memory and use ``non_blocking`` copies; the
    stream is synchronized whenever a Python scalar is extracted, so
    timing loops measure completed work.
    """

    is_numpy = False

    def __init__(self, device: str = "cpu") -> None:
        try:
            import torch
        except ImportError as exc:  # pragma: no cover - torch present in CI
            raise BackendUnavailableError(
                "compute backend 'torch' requires PyTorch, which is not "
                "installed. Install the CPU wheel with: pip install torch "
                "--index-url https://download.pytorch.org/whl/cpu"
            ) from exc
        if device not in ("cpu", "cuda"):
            raise ValueError(f"device must be 'cpu' or 'cuda', got {device!r}")
        if device == "cuda" and not torch.cuda.is_available():
            raise BackendUnavailableError(
                "compute backend 'torch-cuda' requires a CUDA-capable "
                "PyTorch build and a visible GPU (torch.cuda.is_available() "
                "is False); use 'torch' for CPU execution"
            )
        self._torch = torch
        self.device = device
        self.name = "torch" if device == "cpu" else "torch-cuda"
        self._dtype_map = {
            np.dtype(np.float64): torch.float64,
            np.dtype(np.float32): torch.float32,
        }
        self._numpy_dtype_map = {v: k for k, v in self._dtype_map.items()}

    def _torch_dtype(self, dtype):
        dt = np.dtype(dtype)
        if dt not in self._dtype_map:
            raise ValueError(f"dtype must be float32 or float64, got {dt}")
        return self._dtype_map[dt]

    def asarray(self, array, dtype=None):
        torch = self._torch
        if isinstance(array, torch.Tensor):
            tensor = array
        else:
            # ``from_numpy`` shares memory with the host array; the pinned
            # staging below (CUDA) or the consuming kernel (CPU) copies it.
            tensor = torch.from_numpy(np.ascontiguousarray(array))
            if self.device == "cuda":
                tensor = tensor.pin_memory().to("cuda", non_blocking=True)
        if dtype is not None:
            tensor = tensor.to(self._torch_dtype(dtype))
        if tensor.device.type != self.device:
            tensor = tensor.to(self.device)
        return tensor

    def to_numpy(self, array) -> np.ndarray:
        if isinstance(array, np.ndarray):
            return array
        return array.detach().cpu().numpy()

    def is_native(self, array) -> bool:
        return isinstance(array, self._torch.Tensor)

    def numpy_dtype(self, array) -> np.dtype:
        if isinstance(array, np.ndarray):
            return array.dtype
        return self._numpy_dtype_map[array.dtype]

    def empty(self, shape, dtype):
        return self._torch.empty(
            shape, dtype=self._torch_dtype(dtype), device=self.device
        )

    def zeros(self, shape, dtype):
        return self._torch.zeros(
            shape, dtype=self._torch_dtype(dtype), device=self.device
        )

    def stack(self, arrays):
        return self._torch.stack(list(arrays))

    def matmul(self, a, b):
        return self._torch.matmul(a, b)

    def einsum(self, subscripts, *operands):
        return self._torch.einsum(subscripts, *operands)

    def qr(self, a):
        Q, R = self._torch.linalg.qr(a)
        return Q, R

    def svd(self, a, full_matrices: bool = False):
        U, S, Vh = self._torch.linalg.svd(a, full_matrices=full_matrices)
        return U, S, Vh

    def transpose(self, a):
        return a.transpose(-2, -1)

    def reshape(self, a, shape):
        return a.reshape(shape)

    def astype(self, a, dtype):
        return a.to(self._torch_dtype(dtype))

    def copy(self, a):
        return a.contiguous().clone()

    def to_float(self, scalar) -> float:
        return float(scalar)

    def synchronize(self) -> None:
        if self.device == "cuda":
            self._torch.cuda.synchronize()

    def _upload_component(self, array):
        tensor = self._torch.from_numpy(np.ascontiguousarray(array))
        if self.device == "cuda":
            tensor = tensor.pin_memory().to("cuda", non_blocking=True)
        return tensor

    def sparse_csr(self, indptr, indices, data, shape):
        return self._torch.sparse_csr_tensor(
            self._upload_component(indptr),
            self._upload_component(indices),
            self._upload_component(data),
            size=tuple(shape),
        )

    def spmm(self, sparse, dense):
        return self._torch.sparse.mm(sparse, dense)

    def spmm_t(self, sparse, dense):
        # ``.t()`` of a CSR tensor is its CSC view (shared arrays); CSC @
        # dense support varies by torch release, so fall back to a one-off
        # CSR conversion where the direct product is not implemented.
        transposed = sparse.t()
        try:
            return self._torch.sparse.mm(transposed, dense)
        except (RuntimeError, NotImplementedError):
            return self._torch.sparse.mm(transposed.to_sparse_csr(), dense)


class CupyModule(ArrayModule):
    """CuPy backend — numpy's API on CUDA, so delegation is direct.

    Requires cupy >= 10 (batched ``linalg.qr``/``linalg.svd``).  Host→device
    transfers go through ``cupy.asarray``; CuPy manages pinned staging
    internally for contiguous sources.
    """

    name = "cupy"
    device = "cuda"
    is_numpy = False

    def __init__(self) -> None:
        try:
            import cupy
        except ImportError as exc:
            raise BackendUnavailableError(
                "compute backend 'cupy' requires CuPy, which is not "
                "installed. Install the wheel matching your CUDA toolkit, "
                "e.g.: pip install cupy-cuda12x"
            ) from exc
        try:
            cupy.cuda.runtime.getDeviceCount()
        except Exception as exc:  # pragma: no cover - needs a GPU to differ
            raise BackendUnavailableError(
                "compute backend 'cupy' found no usable CUDA device"
            ) from exc
        self._cupy = cupy

    def asarray(self, array, dtype=None):
        return self._cupy.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        if isinstance(array, np.ndarray):
            return array
        return self._cupy.asnumpy(array)

    def is_native(self, array) -> bool:
        return isinstance(array, self._cupy.ndarray)

    def numpy_dtype(self, array) -> np.dtype:
        return np.dtype(array.dtype)

    def empty(self, shape, dtype):
        return self._cupy.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype):
        return self._cupy.zeros(shape, dtype=dtype)

    def stack(self, arrays):
        return self._cupy.stack(list(arrays))

    def matmul(self, a, b):
        return self._cupy.matmul(a, b)

    def einsum(self, subscripts, *operands):
        return self._cupy.einsum(subscripts, *operands)

    def qr(self, a):
        return self._cupy.linalg.qr(a)

    def svd(self, a, full_matrices: bool = False):
        return self._cupy.linalg.svd(a, full_matrices=full_matrices)

    def transpose(self, a):
        return self._cupy.swapaxes(a, -2, -1)

    def reshape(self, a, shape):
        return self._cupy.reshape(a, shape)

    def astype(self, a, dtype):
        return a.astype(dtype, copy=False)

    def copy(self, a):
        return self._cupy.ascontiguousarray(a).copy()

    def to_float(self, scalar) -> float:
        return float(scalar)

    def synchronize(self) -> None:
        self._cupy.cuda.get_current_stream().synchronize()

    def sparse_csr(self, indptr, indices, data, shape):
        from cupyx.scipy import sparse as cupy_sparse

        cupy = self._cupy
        return cupy_sparse.csr_matrix(
            (cupy.asarray(data), cupy.asarray(indices), cupy.asarray(indptr)),
            shape=tuple(shape),
        )

    def spmm(self, sparse, dense):
        return sparse @ dense

    def spmm_t(self, sparse, dense):
        return sparse.T @ dense


#: The always-available default module, shared by every ``xp=None`` call.
NUMPY_MODULE = NumpyModule()

_instances: dict[str, ArrayModule] = {NumpyModule.name: NUMPY_MODULE}

_FACTORIES = {
    "numpy": NumpyModule,
    "torch": lambda: TorchModule("cpu"),
    "torch-cuda": lambda: TorchModule("cuda"),
    "cupy": CupyModule,
}


def get_xp(backend: "str | ArrayModule | None" = None) -> ArrayModule:
    """Resolve a compute-backend spec into a live :class:`ArrayModule`.

    Parameters
    ----------
    backend:
        ``None`` (→ numpy), a registry name from
        :data:`COMPUTE_BACKEND_NAMES` (case-insensitive), or an existing
        :class:`ArrayModule`, returned unchanged.

    Raises
    ------
    ValueError
        Unknown backend name.
    BackendUnavailableError
        The backend's library is not installed, or its device is absent.
        Resolution is the *only* place optional libraries are imported, so
        configs naming a device backend can be built anywhere and fail
        with the install hint only when compute actually starts.
    """
    if backend is None:
        return NUMPY_MODULE
    if isinstance(backend, ArrayModule):
        return backend
    if not isinstance(backend, str):
        raise TypeError(
            f"compute backend must be a name or ArrayModule, "
            f"got {type(backend).__name__}"
        )
    key = backend.strip().lower()
    if key not in _FACTORIES:
        raise ValueError(
            f"unknown compute backend {backend!r}; "
            f"available: {', '.join(COMPUTE_BACKEND_NAMES)}"
        )
    if key not in _instances:
        _instances[key] = _FACTORIES[key]()
    return _instances[key]


def backend_available(name: str) -> bool:
    """Whether ``name`` resolves on this machine (used by test skip marks)."""
    try:
        get_xp(name)
    except (BackendUnavailableError, ValueError):
        return False
    return True
