"""Batched compute kernels for the two DPar2 hot paths.

DPar2's speed claim rests on (a) the stage-1 compression being one cheap
randomized SVD per slice and (b) the compressed ALS sweep touching only
``R``-sized quantities.  Both paths were previously dominated by Python-level
dispatch in the many-small-slices regime: K separate ``randomized_svd`` calls
(each a chain of tiny LAPACK invocations) and per-sweep ``np.einsum`` path
resolution plus temporary reallocation.  This module makes them
hardware-bound:

* :func:`batched_randomized_svd` groups slices into equal-row-count buckets,
  stacks each bucket into a ``(b, Ik, J)`` array, and runs the whole
  Algorithm-1 pipeline — Gaussian sketch, power iterations, QR, small SVD —
  as batched 3-D ``matmul`` / ``np.linalg.qr`` / ``np.linalg.svd`` calls.
  numpy's stacked linalg gufuncs invoke the very same LAPACK routine per
  sub-matrix, so for unpadded buckets the results are **bitwise identical**
  to the per-slice loop (given the same per-slice generators).  Optional
  pad-to-bucket merging trades that bitwise guarantee for fewer, larger
  batches on ragged row counts (still exact in infinite precision: appended
  zero rows stay exactly zero through QR).

* :func:`batched_stacked_matmul` applies one ``(b, Ik, R) @ (b, R, R)``
  matmul per row-count bucket — the final ``Qk = Ak Zk Pkᵀ``
  materialization.

* :class:`SweepWorkspace` owns every per-sweep temporary of the compressed
  ALS iteration (``small``, ``T``, ``TE``, ``HS``, Gram and MTTKRP buffers)
  and the ``np.einsum`` contraction paths, computed once per
  ``(K, J, R, Rc, dtype)`` shape.  Steady-state sweeps write into the
  preallocated buffers with ``out=`` and re-use Gram matrices across the
  Lemma 1–3 updates, so the Python-visible allocation per sweep is near
  zero.  Workspaces are recycled through a small module cache
  (:func:`acquire_sweep_workspace` / :func:`release_sweep_workspace`) so
  consecutive ``dpar2`` calls on same-shaped problems pay the setup once.

Accumulation dtype: workspace buffers follow the pipeline dtype (float32 or
float64), but the convergence-criterion terms (``TE``, ``HS``, ``VtD`` and
the scalar reductions) are always held/accumulated in float64 — a float32
run halves memory traffic on the big contractions without destabilising the
stopping rule.

Compute backends: every kernel takes an optional ``xp``
(:mod:`repro.linalg.array_module`) selecting the array library it runs on.
The default numpy module dispatches to the identical numpy calls, so the
bitwise guarantees above are untouched; torch/CuPy modules run the same
stacked pipeline on their batched primitives, with each bucket crossing
the host↔device boundary once (see :class:`DeviceSweepWorkspace` for the
sweep side).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.linalg.array_module import ArrayModule, get_xp
from repro.linalg.randomized_svd import RandomizedSVDResult, randomized_svd
from repro.sparse.csr import CsrMatrix
from repro.sparse.stacked import StackedCsr

__all__ = [
    "CellSweepWorkspace",
    "DeviceSweepWorkspace",
    "SweepWorkspace",
    "acquire_sweep_workspace",
    "batched_randomized_svd",
    "batched_stacked_matmul",
    "bucket_by_rows",
    "release_sweep_workspace",
]


# --------------------------------------------------------------------- #
# stage 1: batched randomized SVD
# --------------------------------------------------------------------- #


def bucket_by_rows(
    row_counts,
    *,
    n_columns: int | None = None,
    rank: int | None = None,
    oversampling: int = 0,
    max_pad_ratio: float = 0.0,
) -> list[tuple[int, list[int]]]:
    """Group slice indices into row-count buckets for stacked dispatch.

    Returns ``[(stack_height, indices), ...]`` with buckets ordered by
    height and indices in input order.  With ``max_pad_ratio == 0`` every
    bucket holds exactly-equal row counts (the bitwise-safe default).  A
    positive ratio greedily merges, from the tallest height down, any height
    ``h`` with ``h >= tallest / (1 + max_pad_ratio)`` — those slices are
    zero-padded up to the bucket height.  Merged buckets must share the
    sketch geometry, so a height only joins when ``min(h, n_columns) >=
    rank + oversampling`` (its effective rank and sketch width are then
    determined by ``rank`` alone); heights failing that stay exact.
    """
    if max_pad_ratio < 0:
        raise ValueError(f"max_pad_ratio must be >= 0, got {max_pad_ratio}")
    by_height: dict[int, list[int]] = {}
    for index, rows in enumerate(row_counts):
        by_height.setdefault(int(rows), []).append(index)
    heights = sorted(by_height)
    if max_pad_ratio == 0.0 or len(heights) < 2:
        return [(h, by_height[h]) for h in heights]

    if n_columns is None or rank is None:
        raise ValueError("padded bucketing needs n_columns and rank")
    sketch_floor = rank + oversampling

    def mergeable(height: int) -> bool:
        return min(height, n_columns) >= sketch_floor

    buckets: list[tuple[int, list[int]]] = []
    pending = list(heights)
    while pending:
        anchor = pending.pop()  # tallest remaining
        group = [anchor]
        if mergeable(anchor):
            floor = anchor / (1.0 + max_pad_ratio)
            while pending and pending[-1] >= floor and mergeable(pending[-1]):
                group.append(pending.pop())
        indices = sorted(i for h in group for i in by_height[h])
        buckets.append((anchor, indices))
    buckets.reverse()
    return buckets


def _stacked_rsvd(
    stack,
    effective_rank: int,
    power_iterations: int,
    omegas,
    xp: ArrayModule,
):
    """Algorithm 1 on a ``(b, m, J)`` stack — all steps batched 3-D calls.

    ``stack``/``omegas`` are ``xp``-native arrays and every step dispatches
    through ``xp``.  On the numpy module each call *is* the numpy function
    the pre-``xp`` code used, mapping to the same LAPACK/BLAS routine per
    2-D sub-array — so unpadded stacks reproduce the per-slice results bit
    for bit.  Device modules run the identical pipeline on their batched
    primitives.
    """
    Y = xp.matmul(stack, omegas)
    Q, _ = xp.qr(Y)
    for _ in range(power_iterations):
        Z, _ = xp.qr(xp.matmul(xp.transpose(stack), Q))
        Q, _ = xp.qr(xp.matmul(stack, Z))
    B = xp.matmul(xp.transpose(Q), stack)
    U_small, sigma, Vt = xp.svd(B, full_matrices=False)
    U = xp.matmul(Q, U_small[:, :, :effective_rank])
    return U, sigma[:, :effective_rank], Vt[:, :effective_rank, :]


def _stacked_rsvd_sparse(
    stacked: StackedCsr,
    effective_rank: int,
    power_iterations: int,
    omegas,
    xp: ArrayModule,
):
    """Algorithm 1 on a :class:`StackedCsr` bucket — SpMM sketching.

    Mirrors :func:`_stacked_rsvd` step for step, with the two
    matrix-sized products (``XΩ``-style sketches and the ``QᵀX``
    projection) running through the bucket's batched SpMM kernels.  The
    only dense arrays are the ``(r+p)``-column panels; cost is
    ``O(nnz·(r+p))`` per product instead of ``O(b·m·J·(r+p))``.  The
    Gaussian sketches are the very ones the dense path draws, so results
    agree with a densified run to floating-point rounding (the summation
    order inside each dot product is the only difference).

    On the numpy module every call below is the historical host function —
    same kernels, same bits.  A device module uploads the bucket's CSR
    structure once (:meth:`StackedCsr.native
    <repro.sparse.stacked.StackedCsr.native>`) and keeps the panels
    resident between the SpMM, QR, and SVD steps; the caller downloads the
    truncated factors.
    """
    if xp.is_numpy:
        Y = stacked.matmul_dense(omegas)
        Q, _ = np.linalg.qr(Y)
        for _ in range(power_iterations):
            Z, _ = np.linalg.qr(stacked.t_matmul_dense(Q))
            Q, _ = np.linalg.qr(stacked.matmul_dense(Z))
        B = np.swapaxes(stacked.t_matmul_dense(Q), 1, 2)  # (b, sketch, J)
        U_small, sigma, Vt = np.linalg.svd(B, full_matrices=False)
        U = np.matmul(Q, U_small[:, :, :effective_rank])
        return U, sigma[:, :effective_rank], Vt[:, :effective_rank, :]
    Y = stacked.matmul_dense(xp.asarray(omegas), xp=xp)
    Q, _ = xp.qr(Y)
    for _ in range(power_iterations):
        Z, _ = xp.qr(stacked.t_matmul_dense(Q, xp=xp))
        Q, _ = xp.qr(stacked.matmul_dense(Z, xp=xp))
    B = xp.transpose(stacked.t_matmul_dense(Q, xp=xp))  # (b, sketch, J)
    U_small, sigma, Vt = xp.svd(B, full_matrices=False)
    U = xp.matmul(Q, U_small[:, :, :effective_rank])
    return U, sigma[:, :effective_rank], Vt[:, :effective_rank, :]


def batched_randomized_svd(
    matrices,
    rank: int,
    *,
    oversampling: int = 5,
    power_iterations: int = 1,
    generators,
    max_pad_ratio: float = 0.0,
    xp: "ArrayModule | str | None" = None,
    native_slices=None,
) -> list[RandomizedSVDResult]:
    """Per-slice randomized SVDs via stacked/batched LAPACK dispatch.

    Drop-in replacement for ``[randomized_svd(Xk, rank, random_state=g)
    for Xk, g in zip(matrices, generators)]`` — each slice keeps its own
    generator and draws its Gaussian sketch in the same shape, so the
    results are independent of the bucket schedule and (for unpadded
    buckets) bitwise identical to the per-slice loop.  Singleton buckets
    route straight through :func:`randomized_svd`: stacking a single slice
    would only add a copy.

    ``max_pad_ratio > 0`` additionally merges nearby row counts by
    zero-padding (see :func:`bucket_by_rows`); padded results are exact in
    infinite precision and agree with the per-slice path to roundoff.

    ``xp`` selects the compute backend (default numpy, the bitwise-exact
    path).  On a device backend each bucket's stack crosses the host↔device
    boundary exactly once per direction — one transfer up, one batched
    pipeline, one transfer of the small factors back.  ``native_slices``
    optionally supplies the same slices as ``xp``-native arrays (e.g. from
    :meth:`IrregularTensor.to_backend
    <repro.tensor.irregular.IrregularTensor.to_backend>`'s per-backend
    cache); exact buckets are then stacked on-device from the cached
    slices and the raw data is not re-uploaded at all.

    Slices may also be :class:`~repro.sparse.csr.CsrMatrix` instances, on
    any backend: an all-sparse bucket is concatenated into a
    :class:`~repro.sparse.stacked.StackedCsr` and sketched through batched
    SpMM (:func:`_stacked_rsvd_sparse`) — ``O(nnz·(r+p))`` work and only
    the ``(r+p)``-column panels dense.  On a device backend the bucket's
    CSR arrays upload once and the panels stay resident through the whole
    pipeline (``torch.sparse_csr_tensor`` / ``cupyx`` CSR under the
    module's ``spmm``); the numpy path is the historical scipy/pure-numpy
    kernel, bit for bit.  Mixed buckets densify their sparse members
    (stacking forces a common layout anyway); sparse padding is free, so
    ``max_pad_ratio`` applies unchanged.  Each slice still draws its own
    sketch from its own generator, so the factors agree with a densified
    run to floating-point rounding for a fixed seed.
    """
    xp = get_xp(xp)
    mats = [
        Xk if isinstance(Xk, CsrMatrix) else np.asarray(Xk) for Xk in matrices
    ]
    generators = list(generators)
    if len(mats) != len(generators):
        raise ValueError(
            f"matrices and generators must align: {len(mats)} vs {len(generators)}"
        )
    if native_slices is not None and len(native_slices) != len(mats):
        raise ValueError(
            f"matrices and native_slices must align: "
            f"{len(mats)} vs {len(native_slices)}"
        )
    if not mats:
        return []
    J = mats[0].shape[1]
    buckets = bucket_by_rows(
        [Xk.shape[0] for Xk in mats],
        n_columns=J,
        rank=rank,
        oversampling=oversampling,
        max_pad_ratio=max_pad_ratio,
    )

    results: list[RandomizedSVDResult | None] = [None] * len(mats)
    for height, indices in buckets:
        if len(indices) == 1:
            k = indices[0]
            results[k] = randomized_svd(
                native_slices[k] if native_slices is not None else mats[k],
                rank,
                oversampling=oversampling,
                power_iterations=power_iterations,
                random_state=generators[k],
                xp=xp,
            )
            continue

        min_rows = min(mats[k].shape[0] for k in indices)
        effective_rank = min(rank, min_rows, J)
        sketch_size = min(effective_rank + oversampling, min(min_rows, J))
        dtype = mats[indices[0]].dtype
        exact = all(mats[k].shape[0] == height for k in indices)
        sparse_bucket = all(isinstance(mats[k], CsrMatrix) for k in indices)

        omegas = np.empty((len(indices), J, sketch_size), dtype=dtype)
        for pos, k in enumerate(indices):
            # Draw in float64 first (as the per-slice path does), then cast:
            # the float32 pipeline sees the same sketch to within rounding.
            omega = generators[k].standard_normal((J, sketch_size))
            omegas[pos] = omega if dtype == np.float64 else omega.astype(dtype)

        if sparse_bucket:
            stacked = StackedCsr.from_matrices(
                [mats[k] for k in indices], height=height
            )
            U, sigma, Vt = _stacked_rsvd_sparse(
                stacked, effective_rank, power_iterations, omegas, xp
            )
        else:
            if exact and native_slices is not None and not xp.is_numpy:
                stack = xp.stack([native_slices[k] for k in indices])
            else:
                host = np.zeros((len(indices), height, J), dtype=dtype)
                for pos, k in enumerate(indices):
                    Xk = mats[k]
                    if isinstance(Xk, CsrMatrix):
                        # Mixed bucket: the stack is dense regardless, so a
                        # lone sparse member just materializes its rows.
                        Xk = Xk.to_dense()
                    host[pos, : Xk.shape[0]] = Xk
                stack = host if xp.is_numpy else xp.asarray(host)

            U, sigma, Vt = _stacked_rsvd(
                stack, effective_rank, power_iterations, xp.asarray(omegas), xp
            )
        # One transfer back per bucket; slicing the host copies after.
        U, sigma, Vt = xp.to_numpy(U), xp.to_numpy(sigma), xp.to_numpy(Vt)
        for pos, k in enumerate(indices):
            rows = mats[k].shape[0]
            results[k] = RandomizedSVDResult(
                U=np.ascontiguousarray(U[pos, :rows]),
                singular_values=sigma[pos].copy(),
                V=np.ascontiguousarray(Vt[pos].T),
            )
    return results  # type: ignore[return-value]


def batched_stacked_matmul(
    lefts,
    rights,
    *,
    max_stack_rows: int | None = None,
    xp: "ArrayModule | str | None" = None,
) -> list[np.ndarray]:
    """``[lefts[k] @ rights[k]]`` with one stacked matmul per row bucket.

    ``lefts`` is a list of ``(Ik, a)`` host matrices, ``rights`` a
    ``(K, a, b)`` host stack.  Equal-row groups are stacked so the K
    Python-level dispatches collapse into one 3-D matmul per bucket
    (bitwise identical per pair on the numpy module); singleton buckets
    use a plain 2-D matmul.  ``max_stack_rows`` bounds the stacking:
    buckets of taller matrices fall back to the per-item loop — stacking
    copies the bucket's whole left operand, which buys nothing once each
    matmul is BLAS-bound, and would transiently double the memory of a
    large equal-height factor.  On a device ``xp`` each multi-slice bucket
    ships up as one stack, multiplies batched, and comes back as one
    transfer; the per-item fallbacks stay on the host, where a lone
    BLAS-bound matmul beats a round trip.
    """
    xp = get_xp(xp)
    rights = np.asarray(rights)
    if len(lefts) != rights.shape[0]:
        raise ValueError(
            f"lefts and rights must align: {len(lefts)} vs {rights.shape[0]}"
        )
    rights_native = None  # uploaded lazily: only if a bucket actually batches
    out: list[np.ndarray | None] = [None] * len(lefts)
    for height, indices in bucket_by_rows([A.shape[0] for A in lefts]):
        if len(indices) == 1 or (
            max_stack_rows is not None and height > max_stack_rows
        ):
            for k in indices:
                out[k] = lefts[k] @ rights[k]
            continue
        if xp.is_numpy:
            stacked = np.stack([lefts[k] for k in indices]) @ rights[indices]
        else:
            if rights_native is None:
                rights_native = xp.asarray(rights)
            left_stack = xp.asarray(np.stack([lefts[k] for k in indices]))
            stacked = xp.to_numpy(xp.matmul(left_stack, rights_native[indices]))
        for pos, k in enumerate(indices):
            out[k] = stacked[pos]
    return out  # type: ignore[return-value]


# --------------------------------------------------------------------- #
# sweep workspace: precompiled contractions + preallocated temporaries
# --------------------------------------------------------------------- #

#: einsum subscripts of the five sweep contractions and the two
#: convergence-criterion reductions (Section III-C/III-E kernels).
_SMALL = "kij,jr,kr,sr->kis"
_T = "kji,kjs->kis"
_G1 = "kr,kij,jr->ir"
_INNER = "kr,kji,jr->ir"
_G3 = "ir,kij,jr->kr"
_CROSS = "kij,kil,lj->"
_MODEL = "kli,klj,ij->"


class SweepWorkspace:
    """Preallocated buffers and contraction paths for one sweep geometry.

    A geometry is ``(K, J, R, Rc, dtype)``: ``K`` slices, ``J`` columns,
    target rank ``R``, and compression rank ``Rc >= R`` (``Rc > R`` when a
    higher-rank precomputed compression is reused).  The workspace is bound
    to a concrete compression with :meth:`bind` before sweeping; buffers are
    overwritten freely, so a workspace must serve one ``dpar2`` call at a
    time — use :func:`acquire_sweep_workspace` to check instances out of the
    shared cache.

    Contraction paths are resolved once with ``np.einsum_path`` (the same
    greedy optimizer ``optimize=True`` uses at call time), so sweeps skip
    per-call path search while contracting in the identical order — float64
    results stay bitwise-identical to un-cached ``np.einsum`` calls.
    """

    def __init__(self, K: int, J: int, R: int, Rc: int | None = None, dtype=np.float64) -> None:
        Rc = R if Rc is None else Rc
        if Rc < R:
            raise ValueError(f"compression rank {Rc} below target rank {R}")
        dt = np.dtype(dtype)
        if dt not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"dtype must be float32 or float64, got {dt}")
        self.K, self.J, self.R, self.Rc = K, J, R, Rc
        self.dtype = dt
        self.key = (K, J, R, Rc, dt.str)

        # Working-dtype sweep buffers.
        self.EDtV = np.empty((Rc, R), dt)  # E Dᵀ V
        self.small = np.empty((K, Rc, R), dt)  # F(k) E Dᵀ V Sk Hᵀ
        self.T = np.empty((K, R, Rc), dt)  # Pk Zkᵀ F(k)
        self.WtW = np.empty((R, R), dt)
        self.VtV = np.empty((R, R), dt)
        self.HtH = np.empty((R, R), dt)
        self.gram = np.empty((R, R), dt)  # Hadamard product fed to solve_gram
        self.G1 = np.empty((R, R), dt)
        self.inner = np.empty((Rc, R), dt)
        self.G2 = np.empty((J, R), dt)
        self.G3 = np.empty((K, R), dt)
        self.DE = np.empty((J, Rc), dt)  # D diag(E), constant per bind

        # Convergence criterion accumulates in float64 regardless of dtype.
        self.TE = np.empty((K, R, Rc), np.float64)
        self.HS = np.empty((K, R, R), np.float64)
        self.VtD = np.empty((R, Rc), np.float64)

        F = np.empty((K, Rc, Rc), dt)  # shape proxy for path search only
        self.path_small = np.einsum_path(
            _SMALL, F, self.EDtV, self.G3, self.gram, optimize=True
        )[0]
        self.path_T = np.einsum_path(_T, self.small, F, optimize=True)[0]
        self.path_G1 = np.einsum_path(
            _G1, self.G3, self.T, self.EDtV, optimize=True
        )[0]
        self.path_inner = np.einsum_path(
            _INNER, self.G3, self.T, self.gram, optimize=True
        )[0]
        self.path_G3 = np.einsum_path(
            _G3, self.gram, self.T, self.EDtV, optimize=True
        )[0]
        self.path_cross = np.einsum_path(
            _CROSS, self.TE, self.HS, self.VtD, optimize=True
        )[0]
        self.path_model = np.einsum_path(
            _MODEL, self.HS, self.HS, self.VtD[:, : self.R], optimize=True
        )[0]

        # Bound per call, not per geometry.
        self.D: np.ndarray | None = None
        self.E: np.ndarray | None = None
        self.F: np.ndarray | None = None
        self.data_term: float = 0.0

    #: numpy workspaces hold host arrays; the device counterpart overrides.
    is_device = False

    @property
    def nbytes(self) -> int:
        """Total bytes held by the preallocated buffers (cache accounting)."""
        return sum(
            buf.nbytes
            for buf in vars(self).values()
            if isinstance(buf, np.ndarray)
        )

    # ------------------------------------------------------------------ #
    # host/device residency (identity here; real on DeviceSweepWorkspace)
    # ------------------------------------------------------------------ #

    def host(self, array):
        """Workspace-native array → host ndarray (no-op for numpy)."""
        return array

    def dev(self, array):
        """Host ndarray → workspace-native array (no-op for numpy)."""
        return array

    # ------------------------------------------------------------------ #
    # binding to a concrete compression
    # ------------------------------------------------------------------ #

    def bind(self, D: np.ndarray, E: np.ndarray, F: np.ndarray) -> "SweepWorkspace":
        """Attach the compressed factors ``D, E, {F(k)}`` for this call.

        Precomputes the per-call constants: ``D diag(E)`` (the left factor
        of every Lemma-2 MTTKRP) and the criterion's constant data term
        ``Σk ‖F(k) E‖²`` (accumulated in float64).
        """
        self.D, self.E, self.F = D, E, F
        np.multiply(D, E, out=self.DE)
        if F.dtype == np.float64:
            FE = F * E
            self.data_term = float(np.sum(FE * FE))
        else:
            FE = F.astype(np.float64) * E.astype(np.float64)
            self.data_term = float(np.sum(FE * FE))
        return self

    def unbind(self) -> None:
        """Drop references to the bound compression (cache hygiene)."""
        self.D = self.E = self.F = None
        self.data_term = 0.0

    # ------------------------------------------------------------------ #
    # sweep kernels (Section III-C, Lemmas 1-3)
    # ------------------------------------------------------------------ #

    def update_EDtV(self, V: np.ndarray) -> np.ndarray:
        """``E Dᵀ V`` into the persistent buffer."""
        np.matmul(self.D.T, V, out=self.EDtV)
        np.multiply(self.EDtV, self.E[:, None], out=self.EDtV)
        return self.EDtV

    def compute_small(self, W: np.ndarray, H: np.ndarray) -> np.ndarray:
        """``small_k = F(k) (E Dᵀ V) Sk Hᵀ`` stacked over ``k``."""
        return np.einsum(
            _SMALL, self.F, self.EDtV, W, H, optimize=self.path_small, out=self.small
        )

    def compute_T(self, polar: np.ndarray) -> np.ndarray:
        """``Tk = (Zk Pkᵀ)ᵀ F(k)`` stacked over ``k``."""
        return np.einsum(_T, polar, self.F, optimize=self.path_T, out=self.T)

    def gram_W(self, W: np.ndarray) -> np.ndarray:
        return np.matmul(W.T, W, out=self.WtW)

    def gram_V(self, V: np.ndarray) -> np.ndarray:
        return np.matmul(V.T, V, out=self.VtV)

    def gram_H(self, H: np.ndarray) -> np.ndarray:
        return np.matmul(H.T, H, out=self.HtH)

    def hadamard_gram(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """``left ∗ right`` into the shared normal-matrix buffer."""
        return np.multiply(left, right, out=self.gram)

    def mttkrp_H(self, W: np.ndarray) -> np.ndarray:
        """Lemma 1's ``G1 = Σk Tk (E Dᵀ V) diag(Sk)`` (transposed layout)."""
        return np.einsum(
            _G1, W, self.T, self.EDtV, optimize=self.path_G1, out=self.G1
        )

    def mttkrp_V(self, W: np.ndarray, H: np.ndarray) -> np.ndarray:
        """Lemma 2's ``G2 = D E (Σk Tkᵀ H diag(Sk))``."""
        np.einsum(_INNER, W, self.T, H, optimize=self.path_inner, out=self.inner)
        return np.matmul(self.DE, self.inner, out=self.G2)

    def mttkrp_W(self, H: np.ndarray) -> np.ndarray:
        """Lemma 3's ``G3`` with rows ``diag(Hᵀ Tk E Dᵀ V)``."""
        return np.einsum(
            _G3, H, self.T, self.EDtV, optimize=self.path_G3, out=self.G3
        )

    # ------------------------------------------------------------------ #
    # compressed convergence criterion (Section III-E)
    # ------------------------------------------------------------------ #

    def compressed_error(self, H: np.ndarray, V: np.ndarray, W: np.ndarray) -> float:
        """``Σk ‖Tk E Dᵀ − H Sk Vᵀ‖²`` via the Gram trick, in float64.

        Reads the current ``Tk`` buffer and the ``VᵀV`` Gram already
        computed by the Lemma-3 update (same ``V``), sharing it instead of
        recomputing.  ``TE``/``HS``/``VtD`` live in float64 buffers, so a
        float32 pipeline still accumulates the criterion in float64 (numpy
        upcasts the mixed-dtype contraction operands).
        """
        np.matmul(V.T, self.D, out=self.VtD)
        np.multiply(self.T, self.E, out=self.TE)
        np.multiply(H[None, :, :], W[:, None, :], out=self.HS)
        cross = float(
            np.einsum(_CROSS, self.TE, self.HS, self.VtD, optimize=self.path_cross)
        )
        model = float(
            np.einsum(_MODEL, self.HS, self.HS, self.VtV, optimize=self.path_model)
        )
        return max(self.data_term - 2.0 * cross + model, 0.0)


class CellSweepWorkspace:
    """Shard-local sweep kernels for one reduction *cell* of slices.

    The sharded DPar2 coordinator (:mod:`repro.decomposition.sharded`)
    partitions the K slices into a fixed set of cells; each cell computes
    its own slice-local contractions with this workspace and ships back
    only ``O(R²)`` partial reductions.  The cell — not the shard — is the
    unit of floating-point accumulation: a cell's partials are a pure
    function of its slices, and the coordinator sums them in cell order,
    so the final factors are bitwise-invariant to how cells are assigned
    to shards (see ``docs/distributed.md``).

    Geometry is ``(Kc, R, Rc, dtype)`` — the cell's slice count, target
    rank, and compression rank.  Contraction paths are resolved once per
    cell with ``np.einsum_path`` exactly like :class:`SweepWorkspace`;
    because a cell's membership never changes, each slice always computes
    under its own cell's path, whatever the shard count.  The convergence
    criterion partials (``TE``/``HS`` and the scalar reductions)
    accumulate in float64 regardless of the working dtype, mirroring the
    single-process workspace.
    """

    def __init__(self, Kc: int, R: int, Rc: int | None = None, dtype=np.float64) -> None:
        Rc = R if Rc is None else Rc
        if Rc < R:
            raise ValueError(f"compression rank {Rc} below target rank {R}")
        if Kc <= 0:
            raise ValueError(f"cell must hold at least one slice, got {Kc}")
        dt = np.dtype(dtype)
        if dt not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"dtype must be float32 or float64, got {dt}")
        self.Kc, self.R, self.Rc = Kc, R, Rc
        self.dtype = dt

        # Working-dtype buffers (per-cell partials of the SweepWorkspace set).
        self.small = np.empty((Kc, Rc, R), dt)
        self.T = np.empty((Kc, R, Rc), dt)
        self.G1 = np.empty((R, R), dt)
        self.WtW = np.empty((R, R), dt)
        self.inner = np.empty((Rc, R), dt)
        self.G3 = np.empty((Kc, R), dt)
        # Criterion partials accumulate in float64.
        self.TE = np.empty((Kc, R, Rc), np.float64)
        self.HS = np.empty((Kc, R, R), np.float64)

        F = np.empty((Kc, Rc, Rc), dt)  # shape proxies for path search only
        EDtV = np.empty((Rc, R), dt)
        square = np.empty((R, R), dt)
        VtD = np.empty((R, Rc), np.float64)
        self.path_small = np.einsum_path(
            _SMALL, F, EDtV, self.G3, square, optimize=True
        )[0]
        self.path_T = np.einsum_path(_T, self.small, F, optimize=True)[0]
        self.path_G1 = np.einsum_path(_G1, self.G3, self.T, EDtV, optimize=True)[0]
        self.path_inner = np.einsum_path(
            _INNER, self.G3, self.T, square, optimize=True
        )[0]
        self.path_G3 = np.einsum_path(_G3, square, self.T, EDtV, optimize=True)[0]
        self.path_cross = np.einsum_path(
            _CROSS, self.TE, self.HS, VtD, optimize=True
        )[0]
        self.path_model = np.einsum_path(
            _MODEL, self.HS, self.HS, VtD[:, :R], optimize=True
        )[0]

        # Bound per solve, not per geometry.
        self.E: np.ndarray | None = None
        self.F: np.ndarray | None = None
        self.W: np.ndarray | None = None  # this cell's (Kc, R) rows of W
        self.data_term: float = 0.0

    def bind(self, E: np.ndarray, F: np.ndarray, W: np.ndarray) -> float:
        """Attach the cell's compressed blocks and its rows of ``W``.

        Returns the cell's float64 partial of the criterion's constant
        data term ``Σk ‖F(k) E‖²`` (the coordinator sums cell partials in
        cell order).
        """
        if F.shape != (self.Kc, self.Rc, self.Rc):
            raise ValueError(
                f"F must be ({self.Kc}, {self.Rc}, {self.Rc}), got {F.shape}"
            )
        if W.shape != (self.Kc, self.R):
            raise ValueError(f"W must be ({self.Kc}, {self.R}), got {W.shape}")
        self.E, self.F = E, F
        self.W = np.ascontiguousarray(W, dtype=self.dtype)
        FE = F.astype(np.float64) * E.astype(np.float64)
        self.data_term = float(np.sum(FE * FE))
        return self.data_term

    def compute_small(self, EDtV: np.ndarray, H: np.ndarray) -> np.ndarray:
        """``small_k = F(k) (E Dᵀ V) Sk Hᵀ`` over the cell's slices."""
        return np.einsum(
            _SMALL, self.F, EDtV, self.W, H,
            optimize=self.path_small, out=self.small,
        )

    def compute_T(self, polar: np.ndarray) -> np.ndarray:
        """``Tk = (Zk Pkᵀ)ᵀ F(k)`` over the cell's slices."""
        return np.einsum(_T, polar, self.F, optimize=self.path_T, out=self.T)

    def mttkrp_H(self, EDtV: np.ndarray) -> np.ndarray:
        """The cell's partial of Lemma 1's ``G1`` (uses current ``W``)."""
        return np.einsum(
            _G1, self.W, self.T, EDtV, optimize=self.path_G1, out=self.G1
        )

    def gram_W(self) -> np.ndarray:
        """``Wcᵀ Wc`` — the cell's partial of the ``WᵀW`` Gram."""
        return np.matmul(self.W.T, self.W, out=self.WtW)

    def mttkrp_V_inner(self, H: np.ndarray) -> np.ndarray:
        """The cell's partial of Lemma 2's inner sum ``Σk Tkᵀ H diag(Sk)``."""
        return np.einsum(
            _INNER, self.W, self.T, H, optimize=self.path_inner, out=self.inner
        )

    def mttkrp_W(self, EDtV: np.ndarray, H: np.ndarray) -> np.ndarray:
        """Lemma 3's ``G3`` rows for the cell's slices."""
        return np.einsum(
            _G3, H, self.T, EDtV, optimize=self.path_G3, out=self.G3
        )

    def criterion_partials(
        self, VtD: np.ndarray, VtV: np.ndarray, H: np.ndarray
    ) -> tuple[float, float]:
        """The cell's float64 ``(cross, model)`` criterion partials.

        Reads the ``Tk`` buffer of this sweep and the cell's updated ``W``
        rows; mirrors :meth:`SweepWorkspace.compressed_error` term for
        term, minus the constant data term handled at :meth:`bind`.
        """
        np.multiply(self.T, self.E, out=self.TE)
        np.multiply(H[None, :, :], self.W[:, None, :], out=self.HS)
        cross = float(
            np.einsum(_CROSS, self.TE, self.HS, VtD, optimize=self.path_cross)
        )
        model = float(
            np.einsum(_MODEL, self.HS, self.HS, VtV, optimize=self.path_model)
        )
        return cross, model


class DeviceSweepWorkspace:
    """The :class:`SweepWorkspace` contract on a device array module.

    Same geometry, same method surface, but the ``O(K R² Rc)`` sweep
    contractions run through ``xp`` (torch/CuPy) while the tiny ``R×R``
    Lemma solves stay on the host — callers convert with :meth:`host` /
    :meth:`dev`, which are identity functions on the numpy workspace, so
    :func:`~repro.decomposition.dpar2._iterate` is written once for both.

    Differences from the numpy workspace, deliberately:

    * No preallocated ``out=`` buffers — torch and CuPy route allocations
      through caching device allocators, so steady-state sweeps reuse
      memory without the explicit buffer plumbing (and ``torch.einsum``
      has no ``out=`` anyway).
    * Not cached by :func:`release_sweep_workspace`: there is nothing
      host-side worth parking, and pinning device memory across calls
      would fight the allocator.
    * The convergence criterion still accumulates in float64 on the
      device; ``bind`` pre-casts the constant factors once.
    """

    is_device = True

    def __init__(
        self, K: int, J: int, R: int, Rc: int | None = None,
        dtype=np.float64, *, xp: ArrayModule,
    ) -> None:
        Rc = R if Rc is None else Rc
        if Rc < R:
            raise ValueError(f"compression rank {Rc} below target rank {R}")
        dt = np.dtype(dtype)
        if dt not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"dtype must be float32 or float64, got {dt}")
        self.K, self.J, self.R, self.Rc = K, J, R, Rc
        self.dtype = dt
        self.xp = xp
        self.key = (K, J, R, Rc, dt.str, xp.name)

        self.D = self.E = self.F = None
        self.DE = self.EDtV = self.small = self.T = None
        self.WtW = self.VtV = self.HtH = self.gram = None
        self._D64 = self._E64 = None
        self.data_term: float = 0.0

    # ------------------------------------------------------------------ #
    # residency helpers
    # ------------------------------------------------------------------ #

    def host(self, array):
        """Device array → host ndarray (one small transfer)."""
        return self.xp.to_numpy(array)

    def dev(self, array):
        """Host ndarray → device array."""
        return self.xp.asarray(array)

    # ------------------------------------------------------------------ #
    # binding to a concrete compression
    # ------------------------------------------------------------------ #

    def bind(self, D: np.ndarray, E: np.ndarray, F: np.ndarray) -> "DeviceSweepWorkspace":
        """Ship ``D, E, {F(k)}`` to the device once for this call."""
        xp = self.xp
        self.D, self.E, self.F = xp.asarray(D), xp.asarray(E), xp.asarray(F)
        self.DE = self.D * self.E  # J x Rc, broadcasts over columns
        # Criterion constants, pre-cast to float64 device copies.
        self._D64 = xp.astype(self.D, np.float64)
        self._E64 = xp.astype(self.E, np.float64)
        FE = np.asarray(F, dtype=np.float64) * np.asarray(E, dtype=np.float64)
        self.data_term = float(np.sum(FE * FE))
        return self

    def unbind(self) -> None:
        """Drop device references (frees allocator blocks for reuse)."""
        self.D = self.E = self.F = None
        self.DE = self.EDtV = self.small = self.T = None
        self.WtW = self.VtV = self.HtH = self.gram = None
        self._D64 = self._E64 = None
        self.data_term = 0.0

    # ------------------------------------------------------------------ #
    # sweep kernels (Section III-C, Lemmas 1-3)
    # ------------------------------------------------------------------ #

    def update_EDtV(self, V: np.ndarray):
        xp = self.xp
        V_d = xp.asarray(V)
        self.EDtV = xp.matmul(xp.transpose(self.D), V_d) * self.E[:, None]
        return self.EDtV

    def compute_small(self, W: np.ndarray, H: np.ndarray):
        xp = self.xp
        self.small = xp.einsum(
            _SMALL, self.F, self.EDtV, xp.asarray(W), xp.asarray(H)
        )
        return self.small

    def compute_T(self, polar):
        self.T = self.xp.einsum(_T, polar, self.F)
        return self.T

    def gram_W(self, W: np.ndarray):
        W_d = self.xp.asarray(W)
        self.WtW = self.xp.matmul(self.xp.transpose(W_d), W_d)
        return self.WtW

    def gram_V(self, V: np.ndarray):
        V_d = self.xp.asarray(V)
        self.VtV = self.xp.matmul(self.xp.transpose(V_d), V_d)
        return self.VtV

    def gram_H(self, H: np.ndarray):
        H_d = self.xp.asarray(H)
        self.HtH = self.xp.matmul(self.xp.transpose(H_d), H_d)
        return self.HtH

    def hadamard_gram(self, left, right):
        self.gram = left * right
        return self.gram

    def mttkrp_H(self, W: np.ndarray):
        return self.xp.einsum(_G1, self.xp.asarray(W), self.T, self.EDtV)

    def mttkrp_V(self, W: np.ndarray, H: np.ndarray):
        inner = self.xp.einsum(
            _INNER, self.xp.asarray(W), self.T, self.xp.asarray(H)
        )
        return self.xp.matmul(self.DE, inner)

    def mttkrp_W(self, H: np.ndarray):
        return self.xp.einsum(_G3, self.xp.asarray(H), self.T, self.EDtV)

    # ------------------------------------------------------------------ #
    # compressed convergence criterion (Section III-E)
    # ------------------------------------------------------------------ #

    def compressed_error(self, H: np.ndarray, V: np.ndarray, W: np.ndarray) -> float:
        """``Σk ‖Tk E Dᵀ − H Sk Vᵀ‖²`` via the Gram trick, in float64.

        All three contractions run on the device in float64 (matching the
        numpy workspace's accumulation dtype) and only the two scalars
        cross back — extracting them synchronizes the stream.
        """
        xp = self.xp
        V64 = xp.astype(xp.asarray(V), np.float64)
        VtD = xp.matmul(xp.transpose(V64), self._D64)
        TE = xp.astype(self.T, np.float64) * self._E64
        HS_host = (
            np.asarray(H, dtype=np.float64)[None, :, :]
            * np.asarray(W, dtype=np.float64)[:, None, :]
        )
        HS = xp.asarray(HS_host)
        cross = xp.to_float(xp.einsum(_CROSS, TE, HS, VtD))
        model = xp.to_float(
            xp.einsum(_MODEL, HS, HS, xp.matmul(xp.transpose(V64), V64))
        )
        return max(self.data_term - 2.0 * cross + model, 0.0)


# --------------------------------------------------------------------- #
# workspace cache
# --------------------------------------------------------------------- #

_CACHE_CAPACITY = 8
#: Workspaces bigger than this are never cached, and the cache as a whole
#: evicts oldest-first past it — buffers scale with K, and parking a
#: 100k-slice geometry's buffers for the process lifetime is not a cache,
#: it is a leak.
_CACHE_MAX_BYTES = 64 * 2**20
_workspace_cache: "OrderedDict[tuple, SweepWorkspace]" = OrderedDict()
_cache_lock = threading.Lock()


def acquire_sweep_workspace(
    K: int, J: int, R: int, Rc: int | None = None, dtype=np.float64,
    xp: "ArrayModule | str | None" = None,
) -> "SweepWorkspace | DeviceSweepWorkspace":
    """Check a workspace for this geometry out of the module cache.

    The instance is *removed* from the cache while in use, so concurrent
    ``dpar2`` calls on the same geometry each get a private workspace.
    Return it with :func:`release_sweep_workspace` when the call finishes.

    A non-numpy ``xp`` yields a fresh :class:`DeviceSweepWorkspace` — the
    cache only parks host buffer sets; device allocations are recycled by
    the backend's own caching allocator.
    """
    xp = get_xp(xp)
    if not xp.is_numpy:
        return DeviceSweepWorkspace(K, J, R, Rc, dtype, xp=xp)
    key = (K, J, R, R if Rc is None else Rc, np.dtype(dtype).str)
    with _cache_lock:
        ws = _workspace_cache.pop(key, None)
    return ws if ws is not None else SweepWorkspace(K, J, R, Rc, dtype)


def release_sweep_workspace(ws: "SweepWorkspace | DeviceSweepWorkspace") -> None:
    """Return a workspace to the cache.

    Oldest geometries are evicted past the entry cap, and the cache is
    bounded in total bytes — a workspace too large to fit is simply
    dropped (its next acquisition pays the allocation again rather than
    the process pinning K-scaled buffers forever).  Device workspaces are
    never cached: unbinding hands their memory back to the allocator.
    """
    ws.unbind()
    if ws.is_device:
        return
    size = ws.nbytes
    if size > _CACHE_MAX_BYTES:
        return
    with _cache_lock:
        _workspace_cache[ws.key] = ws
        _workspace_cache.move_to_end(ws.key)
        while len(_workspace_cache) > _CACHE_CAPACITY:
            _workspace_cache.popitem(last=False)
        total = sum(cached.nbytes for cached in _workspace_cache.values())
        while total > _CACHE_MAX_BYTES and len(_workspace_cache) > 1:
            _, evicted = _workspace_cache.popitem(last=False)
            total -= evicted.nbytes
