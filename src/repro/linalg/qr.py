"""Orthonormalization helpers."""

from __future__ import annotations

import numpy as np

from repro.linalg.array_module import get_xp
from repro.util.rng import as_generator
from repro.util.validation import check_matrix


def orthonormal_columns(matrix, *, xp=None) -> np.ndarray:
    """Return an orthonormal basis ``Q`` for the column space of ``matrix``.

    Thin wrapper over reduced QR; kept as a named function so call sites read
    like the paper ("QR ← Y using QR factorization", Algorithm 1 line 3).
    ``xp`` selects the compute backend (default numpy); the basis is
    returned as a host ndarray either way.  Sign conventions may differ
    between backends' LAPACK builds — any column sign is a valid basis.
    """
    xp = get_xp(xp)
    A = check_matrix(matrix, "matrix")
    Q, _ = xp.qr(xp.asarray(A))
    return xp.to_numpy(Q)


def random_orthonormal(rows: int, cols: int, random_state=None) -> np.ndarray:
    """Draw a ``rows×cols`` matrix with orthonormal columns.

    Used to initialize the common factor ``H`` and ``V`` (Algorithm 2/3,
    line 1) — a Haar-ish initialization obtained by QR of a Gaussian matrix.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError(f"dimensions must be positive, got {rows}x{cols}")
    if cols > rows:
        raise ValueError(
            f"cannot build {cols} orthonormal columns in dimension {rows}"
        )
    rng = as_generator(random_state)
    gaussian = rng.standard_normal((rows, cols))
    Q, upper = np.linalg.qr(gaussian)
    # Fix the sign ambiguity so results are reproducible across BLAS builds.
    signs = np.sign(np.diag(upper))
    signs[signs == 0] = 1.0
    return Q * signs
