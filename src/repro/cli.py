"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Commands
--------
``datasets``
    List the bundled synthetic datasets (Table II analogues).
``decompose``
    Run a solver on a named dataset and print timing/fitness.
``publish``
    Decompose a dataset and publish the model to a registry directory.
``serve``
    Serve a model registry over HTTP (similar/reconstruct/fold-in queries).
``query``
    Issue one query against a running ``repro serve`` instance.
``experiment``
    Run one of the paper's table/figure harnesses by id.
``trace``
    Inspect a span trace written via ``--trace`` / ``REPRO_TRACE``.
``bench-info``
    Print the experiment-to-command index from DESIGN.md §2.

``decompose``, ``publish``, and ``serve`` accept ``--trace PATH`` to
record hierarchical spans for the whole run (see docs/observability.md);
``repro trace summarize PATH`` renders the aggregated tree afterwards.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.data.registry import DATASETS, load_dataset
from repro.decomposition.registry import DISPLAY_NAMES, SOLVERS, get_solver
from repro.linalg.array_module import COMPUTE_BACKEND_NAMES
from repro.parallel.backends import BACKEND_NAMES
from repro.sparse.csr import CsrMatrix
from repro.tensor.irregular import IrregularTensor
from repro.tensor.mmap_store import MmapSliceStore
from repro.util.config import DecompositionConfig
from repro.util.timing import format_seconds

EXPERIMENT_MODULES = {
    "fig1": "repro.experiments.fig1_tradeoff",
    "fig8": "repro.experiments.fig8_slice_lengths",
    "fig9a": "repro.experiments.fig9_preprocessing",
    "fig9b": "repro.experiments.fig9_iteration",
    "fig10": "repro.experiments.fig10_compression",
    "fig11": "repro.experiments.fig11_scalability",
    "fig12": "repro.experiments.fig12_correlation",
    "table2": "repro.experiments.table2_datasets",
    "table3": "repro.experiments.table3_similar_stocks",
    "ablations": "repro.experiments.ablations",
    "all": "repro.experiments.run_all",
}


_EPILOG = """\
serving quickstart:
  repro publish traffic --registry ./registry --rank 8      # train + publish v1
  repro serve --registry ./registry --port 8080 &           # start the service
  repro query similar --index 0 -k 5                        # nearest slices
  repro query reconstruct --slice 0 --rows 0 1              # model values
  repro query health                                        # version + batching stats

The same commands work as `python -m repro ...` when the console script is
not on PATH.  See docs/serving.md for the full HTTP API and tuning knobs.
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DPar2 reproduction: PARAFAC2 decomposition for "
        "irregular dense tensors",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the bundled synthetic datasets")

    decompose = sub.add_parser(
        "decompose", help="decompose a named dataset and report fitness/time"
    )
    decompose.add_argument("dataset", choices=sorted(DATASETS))
    decompose.add_argument(
        "--method", default="dpar2", choices=sorted(SOLVERS),
        help="solver to run (default: dpar2)",
    )
    decompose.add_argument("--rank", type=int, default=10)
    decompose.add_argument("--max-iterations", type=int, default=32)
    decompose.add_argument("--threads", type=int, default=1)
    decompose.add_argument(
        "--backend", default="thread", choices=list(BACKEND_NAMES),
        help="execution backend for slice-parallel stages (default: thread)",
    )
    decompose.add_argument(
        "--dtype", default="float64", choices=["float64", "float32"],
        help="working precision of the pipeline (float32 halves memory "
        "traffic and speeds up compression; default: float64)",
    )
    decompose.add_argument(
        "--compute-backend", default="numpy",
        choices=list(COMPUTE_BACKEND_NAMES),
        help="array library for the DPar2 kernels: numpy (default), torch "
        "(CPU), torch-cuda, or cupy; device backends keep the batched "
        "compression and sweeps resident on the GPU",
    )
    decompose.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run DPar2 through the shard coordinator with N workers: "
        "stage-1 compression and the sweep contractions run shard-local "
        "and only R x R Gram statistics cross shard boundaries each sweep; "
        "final factors are bitwise-identical for any N (dpar2 only)",
    )
    decompose.add_argument(
        "--shard-backend", default="process", choices=list(BACKEND_NAMES),
        help="transport for shard workers (default: process; serial and "
        "thread exist for debugging and overhead measurement)",
    )
    decompose.add_argument(
        "--shard-cells", type=int, default=8, metavar="C",
        help="fixed reduction-cell count the slices are grouped into "
        "(clamped to the slice count); cells are the unit of floating-"
        "point accumulation, which is what makes the factors invariant "
        "to --shards (default: 8)",
    )
    decompose.add_argument(
        "--out-of-core", action="store_true",
        help="stage the dataset into a temporary on-disk slice store and "
        "decompose it memory-mapped (demonstrates the streaming path)",
    )
    decompose.add_argument(
        "--density-threshold", type=float, default=None, metavar="FRACTION",
        help="convert dense slices whose nonzero fraction is at or below "
        "this threshold to CSR before decomposing — DPar2 then sketches "
        "them through the sparse SpMM fast path on any --compute-backend; "
        "CSR-native datasets take that path regardless",
    )
    decompose.add_argument("--seed", type=int, default=0)
    decompose.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record hierarchical trace spans for the run to this JSONL file",
    )

    publish = sub.add_parser(
        "publish",
        help="decompose a dataset and publish the model to a registry",
    )
    publish.add_argument("dataset", choices=sorted(DATASETS))
    publish.add_argument(
        "--registry", required=True, metavar="DIR",
        help="FactorStore registry directory (created if missing)",
    )
    publish.add_argument("--rank", type=int, default=10)
    publish.add_argument("--max-iterations", type=int, default=32)
    publish.add_argument("--threads", type=int, default=1)
    publish.add_argument(
        "--backend", default="thread", choices=list(BACKEND_NAMES),
    )
    publish.add_argument(
        "--dtype", default="float64", choices=["float64", "float32"],
    )
    publish.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="fit through the shard coordinator with N workers "
        "(see decompose --shards)",
    )
    publish.add_argument(
        "--shard-backend", default="process", choices=list(BACKEND_NAMES),
    )
    publish.add_argument("--seed", type=int, default=0)
    publish.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record hierarchical trace spans for the run to this JSONL file",
    )

    serve = sub.add_parser(
        "serve", help="serve a model registry over HTTP (asyncio, stdlib-only)"
    )
    serve.add_argument(
        "--registry", required=True, metavar="DIR",
        help="FactorStore registry directory to serve",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--batch-window-ms", type=float, default=2.0, metavar="MS",
        help="micro-batching window cap: under queue pressure, concurrent "
        "similar/fold-in/anomaly queries arriving within it are answered "
        "by one batched kernel call; the window adapts down to ~0 when "
        "the queue is empty (default: 2)",
    )
    serve.add_argument(
        "--fixed-batch-window", action="store_true",
        help="disable adaptive batching: every batch waits the full "
        "--batch-window-ms regardless of load (higher latency when idle; "
        "mostly useful for debugging coalescing)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=64,
        help="flush a micro-batch immediately at this many pending requests",
    )
    serve.add_argument(
        "--lru-size", type=int, default=4,
        help="per-version derived-state (QueryEngine) cache size (default: 4)",
    )
    serve.add_argument(
        "--poll-interval", type=float, default=2.0, metavar="SECONDS",
        help="how often to check the registry for newly published versions "
        "and hot-swap to them; 0 disables polling (default: 2)",
    )
    serve.add_argument(
        "--request-timeout", type=float, default=30.0, metavar="SECONDS",
        help="per-request dispatch deadline; an expired request answers "
        "503 with Retry-After and counts under /healthz faults.timeouts; "
        "0 disables (default: 30)",
    )
    serve.add_argument(
        "--max-body-bytes", type=int, default=8 << 20, metavar="BYTES",
        help="reject request bodies larger than this with 413, judged from "
        "Content-Length without buffering the body; 0 disables "
        "(default: 8 MiB)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=0, metavar="N",
        help="shed similar/fold-in requests with 503 + Retry-After once N "
        "are already queued in a micro-batcher; 0 never sheds (default: 0)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="on SIGTERM/SIGINT, stop accepting and wait up to this long "
        "for in-flight requests before exiting (default: 10)",
    )
    serve.add_argument(
        "--compute-backend", default="numpy",
        choices=list(COMPUTE_BACKEND_NAMES),
        help="array library for the query kernels: numpy (default, the "
        "batch-invariant reference), torch, torch-cuda, or cupy; device "
        "backends upload each served model's factors once per engine and "
        "answer similarity/reconstruction/fold-in/anomaly queries "
        "device-resident (/healthz reports the backend and transfer "
        "counters)",
    )
    serve.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record request/batch/kernel trace spans to this JSONL file",
    )

    query = sub.add_parser(
        "query", help="issue one query against a running `repro serve`"
    )
    query.add_argument(
        "what",
        choices=["health", "model", "versions", "similar", "reconstruct",
                 "fold-in", "anomaly", "reload"],
    )
    query.add_argument(
        "--url", default="http://127.0.0.1:8080",
        help="base URL of the serving process (default: http://127.0.0.1:8080)",
    )
    query.add_argument("--mode", default="slice", choices=["slice", "feature"],
                       help="similarity mode (similar queries)")
    query.add_argument("--index", type=int, help="query entity (similar)")
    query.add_argument("-k", type=int, default=10, help="neighbours to return")
    query.add_argument("--slice", type=int, dest="slice_index",
                       help="slice index (reconstruct)")
    query.add_argument("--rows", type=int, nargs="*",
                       help="row subset (reconstruct)")
    query.add_argument("--npy", metavar="FILE",
                       help="2-D .npy payload (fold-in / anomaly)")
    query.add_argument("--seed", type=int, default=0,
                       help="sketch seed (fold-in / anomaly)")
    query.add_argument("--model-version", type=int, default=None,
                       help="pin the query to a published version")

    experiment = sub.add_parser(
        "experiment", help="run one of the paper's table/figure harnesses"
    )
    experiment.add_argument("which", choices=sorted(EXPERIMENT_MODULES))

    trace_cmd = sub.add_parser(
        "trace", help="inspect a span trace written via --trace / REPRO_TRACE"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize", help="render a trace file as an aggregated span tree"
    )
    summarize.add_argument("file", help="JSONL trace file to summarize")

    sub.add_parser(
        "bench-info", help="show which command regenerates each table/figure"
    )
    return parser


def cmd_datasets() -> int:
    header = f"{'name':10s} {'summary':26s} {'paper (maxIk,J,K)':>20s}"
    print(header)
    print("-" * len(header))
    for name, spec in DATASETS.items():
        paper = "{}x{}x{}".format(*spec.paper_shape)
        print(f"{name:10s} {spec.summary:26s} {paper:>20s}")
    return 0


def cmd_decompose(args: argparse.Namespace) -> int:
    if args.out_of_core and args.compute_backend != "numpy":
        print(
            f"error: --out-of-core cannot be combined with --compute-backend "
            f"{args.compute_backend}: streaming slices from disk and keeping "
            "them device-resident are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.compute_backend != "numpy" and args.method != "dpar2":
        # Only the DPar2 pipeline dispatches through the xp layer; running a
        # baseline solver on CPU while the header claims a device would make
        # every timing comparison a lie.
        print(
            f"error: --compute-backend {args.compute_backend} is only "
            f"supported by --method dpar2; {args.method} runs on numpy",
            file=sys.stderr,
        )
        return 2
    if args.shards is not None and args.method != "dpar2":
        print(
            f"error: --shards is only supported by --method dpar2; "
            f"{args.method} has no shard coordinator",
            file=sys.stderr,
        )
        return 2
    tensor = load_dataset(args.dataset, random_state=args.seed)
    if args.density_threshold is not None:
        if not 0.0 <= args.density_threshold <= 1.0:
            print(
                f"error: --density-threshold must be in [0, 1], got "
                f"{args.density_threshold}",
                file=sys.stderr,
            )
            return 2
        tensor = tensor.sparsify(args.density_threshold)
    if tensor.has_sparse_slices:
        if args.method not in ("dpar2", "spartan"):
            print(
                f"error: --method {args.method} does not support sparse "
                "slices; use dpar2 or spartan (or drop --density-threshold)",
                file=sys.stderr,
            )
            return 2
        sparse_count = sum(
            1 for Xk in tensor.slices if isinstance(Xk, CsrMatrix)
        )
        print(
            f"sparse  : {sparse_count}/{tensor.n_slices} slices in CSR form "
            f"({tensor.n_entries} stored values, {tensor.nbytes} bytes)"
        )
    try:
        config = DecompositionConfig(
            rank=args.rank,
            max_iterations=args.max_iterations,
            n_threads=args.threads,
            backend=args.backend,
            random_state=args.seed,
            dtype=args.dtype,
            compute_backend=args.compute_backend,
            shards=args.shards,
            shard_backend=args.shard_backend,
            shard_cells=args.shard_cells,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    solver = get_solver(args.method)
    print(f"dataset : {args.dataset} -> {tensor}")
    sharded = (
        f", {config.shards} shards via {config.shard_backend}"
        if config.shards is not None
        else ""
    )
    print(f"solver  : {DISPLAY_NAMES[args.method]} (rank {config.rank}, "
          f"backend {config.backend} x{config.n_threads}, {config.dtype}, "
          f"compute {config.compute_backend}{sharded})")
    if not args.out_of_core:
        return _run_decompose(solver, tensor, config)
    # The store must outlive the run: slices are read lazily during stage 1.
    # Staging in the target dtype means the decomposition streams the store
    # without a conversion copy.
    with tempfile.TemporaryDirectory(prefix="repro-ooc-") as staging:
        store = MmapSliceStore.create(
            staging, tensor.slices, dtype=config.numpy_dtype
        )
        print(f"staging : {store}")
        return _run_decompose(solver, IrregularTensor.from_store(store), config)


def _run_decompose(solver, tensor, config: DecompositionConfig) -> int:
    from repro.linalg.array_module import BackendUnavailableError

    try:
        result = solver(tensor, config)
    except BackendUnavailableError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"fitness : {result.fitness(tensor):.4f}")
    print(f"time    : preprocess {format_seconds(result.preprocess_seconds)}"
          f" + iterate {format_seconds(result.iterate_seconds)}"
          f" ({result.n_iterations} sweeps)")
    ratio = tensor.nbytes / max(result.preprocessed_bytes, 1)
    print(f"memory  : preprocessed data {ratio:.1f}x smaller than input")
    sharding = result.stats.get("sharding")
    if sharding:
        print(
            f"shards  : {sharding['shards']} over {sharding['cells']} cells "
            f"(imbalance {sharding['imbalance']:.2f}), allreduce "
            f"{sharding['allreduce_bytes_per_sweep']:.0f} B/sweep"
        )
    return 0


def cmd_publish(args: argparse.Namespace) -> int:
    from repro.decomposition.dpar2 import dpar2
    from repro.serve.store import FactorStore

    try:
        config = DecompositionConfig(
            rank=args.rank,
            max_iterations=args.max_iterations,
            n_threads=args.threads,
            backend=args.backend,
            random_state=args.seed,
            dtype=args.dtype,
            shards=args.shards,
            shard_backend=args.shard_backend,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tensor = load_dataset(args.dataset, random_state=args.seed)
    print(f"dataset : {args.dataset} -> {tensor}")
    result = dpar2(tensor, config)
    print(f"fitness : {result.fitness(tensor):.4f} "
          f"({result.n_iterations} sweeps, "
          f"{format_seconds(result.total_seconds)})")
    store = FactorStore(args.registry)
    extra = {"dataset": args.dataset}
    sharding = result.stats.get("sharding") if isinstance(result.stats, dict) else None
    if isinstance(sharding, dict):
        # Surface fit-time fault recovery in the registry meta so /healthz
        # can report it for the serving version.
        extra["worker_restarts"] = int(sharding.get("worker_restarts", 0))
    version = store.publish(result, config=config, extra=extra)
    print(f"registry: {store}")
    print(f"published version {version}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.linalg.array_module import BackendUnavailableError, get_xp
    from repro.serve.service import ModelHost, ServeApp
    from repro.serve.store import FactorStore

    try:
        # Resolve up front: a missing accelerator library should fail here
        # with the install hint, not on the first model load.
        get_xp(args.compute_backend)
    except BackendUnavailableError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = FactorStore(args.registry)
    if store.latest_version() is None:
        print(
            f"error: registry {args.registry} has no published versions; "
            "run `repro publish <dataset> --registry ...` first",
            file=sys.stderr,
        )
        return 2
    host = ModelHost(
        store,
        lru_size=args.lru_size,
        engine_kwargs={"compute_backend": args.compute_backend},
    )
    app = ServeApp(
        host,
        batch_window=args.batch_window_ms / 1000.0,
        max_batch=args.max_batch,
        poll_interval=args.poll_interval,
        adaptive_batching=not args.fixed_batch_window,
        request_timeout=args.request_timeout if args.request_timeout > 0 else None,
        max_body_bytes=args.max_body_bytes if args.max_body_bytes > 0 else None,
        max_queue=args.max_queue if args.max_queue > 0 else None,
        drain_timeout=args.drain_timeout,
    )
    backend_note = (
        "" if args.compute_backend == "numpy"
        else f" ({args.compute_backend} engine)"
    )
    print(f"serving {store} on http://{args.host}:{args.port}{backend_note}")
    try:
        # SIGTERM/SIGINT trigger a graceful drain inside app.run(): the
        # listener closes, in-flight requests are answered, then run()
        # returns and we exit 0.
        asyncio.run(app.run(args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    import json as _json
    import urllib.error
    import urllib.request

    def _request(method: str, path: str, body: "dict | None" = None):
        data = None if body is None else _json.dumps(body).encode()
        req = urllib.request.Request(
            args.url.rstrip("/") + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        with urllib.request.urlopen(req, timeout=30) as response:
            return _json.loads(response.read())

    pin = {} if args.model_version is None else {"version": args.model_version}
    try:
        if args.what == "health":
            payload = _request("GET", "/healthz")
        elif args.what == "model":
            suffix = "" if args.model_version is None else f"?version={args.model_version}"
            payload = _request("GET", f"/v1/model{suffix}")
        elif args.what == "versions":
            payload = _request("GET", "/v1/versions")
        elif args.what == "reload":
            payload = _request("POST", "/admin/reload", {})
        elif args.what == "similar":
            if args.index is None:
                print("error: similar needs --index", file=sys.stderr)
                return 2
            payload = _request("POST", "/v1/similar", {
                "mode": args.mode, "index": args.index, "k": args.k, **pin,
            })
        elif args.what == "reconstruct":
            if args.slice_index is None:
                print("error: reconstruct needs --slice", file=sys.stderr)
                return 2
            body = {"slice": args.slice_index, **pin}
            if args.rows:
                body["rows"] = args.rows
            payload = _request("POST", "/v1/reconstruct", body)
        else:  # fold-in / anomaly
            if not args.npy:
                print(f"error: {args.what} needs --npy FILE", file=sys.stderr)
                return 2
            import numpy as np

            matrix = np.load(args.npy, allow_pickle=False)
            endpoint = "/v1/fold-in" if args.what == "fold-in" else "/v1/anomaly"
            body = {"slice": matrix.tolist(), "seed": args.seed, **pin}
            if args.what == "fold-in":
                body["neighbors"] = args.k
            payload = _request("POST", endpoint, body)
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode(errors="replace")
        print(f"error: HTTP {exc.code}: {detail}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    print(_json.dumps(payload, indent=2))
    return 0


def cmd_experiment(which: str) -> int:
    import importlib

    module = importlib.import_module(EXPERIMENT_MODULES[which])
    return module.main()


def cmd_bench_info() -> int:
    print("experiment -> regenerate with")
    print("-" * 52)
    for exp_id, module in EXPERIMENT_MODULES.items():
        print(f"{exp_id:8s} python -m {module}")
    print("\ntiming benches: pytest benchmarks/ --benchmark-only")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import trace

    try:
        print(trace.summarize(args.file))
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from repro.obs import trace

        trace.start(trace_path)
    try:
        if args.command == "datasets":
            return cmd_datasets()
        if args.command == "decompose":
            return cmd_decompose(args)
        if args.command == "publish":
            return cmd_publish(args)
        if args.command == "serve":
            return cmd_serve(args)
        if args.command == "query":
            return cmd_query(args)
        if args.command == "experiment":
            return cmd_experiment(args.which)
        if args.command == "trace":
            return cmd_trace(args)
        if args.command == "bench-info":
            return cmd_bench_info()
        raise AssertionError(f"unhandled command {args.command!r}")
    finally:
        if trace_path:
            from repro.obs import trace

            trace.stop()


if __name__ == "__main__":
    sys.exit(main())
