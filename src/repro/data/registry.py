"""Dataset registry — Table II in code.

Each of the paper's eight datasets is represented by a synthetic generator
with the same *kind* of structure (see the module docstrings in
:mod:`repro.data`) at laptop scale.  ``paper_shape`` records the original
(max Ik, J, K) from Table II so reports can show both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.data.audio import generate_audio_tensor
from repro.data.stock import generate_market, standardize_features
from repro.data.synthetic import sparse_irregular_tensor
from repro.data.traffic import generate_traffic_tensor
from repro.data.video import generate_video_tensor
from repro.tensor.irregular import IrregularTensor


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset: its generator and its Table II provenance.

    ``paper=False`` marks extra workloads (e.g. the sparse synthetic) that
    ship alongside the paper's eight datasets but do not appear in
    Table II reports.
    """

    name: str
    summary: str
    paper_shape: tuple[int, int, int]  # (max Ik, J, K) from Table II
    build: Callable[[object], IrregularTensor]
    paper: bool = True


def _fma(random_state) -> IrregularTensor:
    return generate_audio_tensor(
        n_clips=80, min_frames=40, max_frames=100, n_fft=1024,
        random_state=random_state,
    )


def _urban(random_state) -> IrregularTensor:
    return generate_audio_tensor(
        n_clips=90, min_frames=15, max_frames=50, n_fft=1024,
        random_state=random_state,
    )


def _us_stock(random_state) -> IrregularTensor:
    market = generate_market(
        n_stocks=60, max_days=400, min_days=120,
        volume_coupled=True, random_state=random_state,
    )
    return standardize_features(market.tensor)


def _kr_stock(random_state) -> IrregularTensor:
    market = generate_market(
        n_stocks=50, max_days=320, min_days=100,
        volume_coupled=False, random_state=random_state,
    )
    return standardize_features(market.tensor)


def _activity(random_state) -> IrregularTensor:
    return generate_video_tensor(
        n_videos=40, n_features=64, min_frames=30, max_frames=110,
        random_state=random_state,
    )


def _action(random_state) -> IrregularTensor:
    return generate_video_tensor(
        n_videos=50, n_features=64, min_frames=40, max_frames=150,
        random_state=random_state,
    )


def _traffic(random_state) -> IrregularTensor:
    return generate_traffic_tensor(
        n_stations=100, n_timestamps=48, n_days=40, random_state=random_state
    )


def _pems_sf(random_state) -> IrregularTensor:
    return generate_traffic_tensor(
        n_stations=96, n_timestamps=72, n_days=40, random_state=random_state
    )


def _sparse_events(random_state) -> IrregularTensor:
    # EHR/clickstream-style workload: 98%-sparse CSR slices, skewed
    # heights.  Not a Table II dataset — it exercises the sparse stage-1
    # fast path the paper's real irregular tensors would take.
    return sparse_irregular_tensor(
        400, 64, 120, density=0.02, random_state=random_state
    )


#: Name → spec, in Table II's row order.
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("fma", "music spectrograms", (704, 2049, 7997), _fma),
        DatasetSpec("urban", "urban sound spectrograms", (174, 2049, 8455), _urban),
        DatasetSpec("us_stock", "US stock features", (7883, 88, 4742), _us_stock),
        DatasetSpec("kr_stock", "Korea stock features", (5270, 88, 3664), _kr_stock),
        DatasetSpec("activity", "video activity features", (553, 570, 320), _activity),
        DatasetSpec("action", "video action features", (936, 570, 567), _action),
        DatasetSpec("traffic", "traffic volume", (2033, 96, 1084), _traffic),
        DatasetSpec("pems_sf", "freeway occupancy", (963, 144, 440), _pems_sf),
        DatasetSpec(
            "sparse", "sparse event log (CSR)", (400, 64, 120),
            _sparse_events, paper=False,
        ),
    )
}


#: Names of the Table II datasets, in row order — what the paper's
#: table/figure harnesses sweep.  Extra workloads (``paper=False``, e.g.
#: the CSR-native ``sparse`` dataset) are excluded: the baseline solvers
#: those harnesses compare against are dense-only.
PAPER_DATASET_NAMES: tuple[str, ...] = tuple(
    name for name, spec in DATASETS.items() if spec.paper
)


def load_dataset(name: str, random_state=None) -> IrregularTensor:
    """Generate the named dataset (see :data:`DATASETS` for choices)."""
    key = name.lower().replace("-", "_")
    if key not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(sorted(DATASETS))}"
        )
    return DATASETS[key].build(random_state)
