"""Synthetic audio spectrogram tensors (FMA / Urban Sound analogues).

The paper converts each song/sound clip into a log-power spectrogram:
a (time, frequency) matrix; the dataset is the irregular tensor of clips of
different durations with a shared frequency axis (Table II: J = 2,049 —
i.e. an FFT size of 4,096).

This module synthesizes clips from scratch: a small number of harmonic
voices with drifting fundamentals plus filtered noise, then a from-scratch
STFT (Hann window, numpy FFT) and log-power mapping.  The resulting slices
have the strong low-rank structure real music spectrograms show (a few
harmonic templates modulated in time), which is the property DPar2's
compression stage exploits.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.irregular import IrregularTensor
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int


def hann_window(length: int) -> np.ndarray:
    """Periodic Hann window of the given length."""
    check_positive_int(length, "length")
    if length == 1:
        return np.ones(1)
    n = np.arange(length)
    return 0.5 - 0.5 * np.cos(2.0 * np.pi * n / length)


def stft_magnitude(
    signal: np.ndarray,
    n_fft: int = 256,
    hop: int = 128,
) -> np.ndarray:
    """Magnitude STFT: frames on rows, ``n_fft // 2 + 1`` frequency bins.

    Frames are Hann-windowed; the signal is zero-padded at the tail so the
    last partial frame is kept.  A pure-numpy replacement for the
    ``spectrogram`` step of the paper's preprocessing.
    """
    x = np.asarray(signal, dtype=np.float64).ravel()
    check_positive_int(n_fft, "n_fft")
    check_positive_int(hop, "hop")
    if x.size < n_fft:
        x = np.concatenate([x, np.zeros(n_fft - x.size)])
    n_frames = 1 + int(np.ceil((x.size - n_fft) / hop))
    padded = np.concatenate([x, np.zeros(max(0, (n_frames - 1) * hop + n_fft - x.size))])
    window = hann_window(n_fft)
    frames = np.stack(
        [padded[i * hop : i * hop + n_fft] * window for i in range(n_frames)]
    )
    return np.abs(np.fft.rfft(frames, axis=1))


def log_power_spectrogram(
    signal: np.ndarray,
    n_fft: int = 256,
    hop: int = 128,
    floor_db: float = -80.0,
) -> np.ndarray:
    """Log-power spectrogram ``10·log10(|STFT|²)`` clipped at ``floor_db``."""
    magnitude = stft_magnitude(signal, n_fft, hop)
    power = magnitude**2
    reference = power.max()
    if reference <= 0:
        return np.full_like(power, floor_db)
    db = 10.0 * np.log10(np.maximum(power / reference, 10 ** (floor_db / 10.0)))
    return db


def synthesize_clip(
    duration_samples: int,
    sample_rate: int = 8000,
    n_voices: int = 3,
    random_state=None,
) -> np.ndarray:
    """A synthetic music-like clip: harmonic voices + coloured noise.

    Each voice has a slowly drifting fundamental with 4 harmonics of
    geometrically decaying amplitude and a random onset/offset envelope —
    enough temporal/spectral structure to give realistic spectrograms.
    """
    check_positive_int(duration_samples, "duration_samples")
    check_positive_int(n_voices, "n_voices")
    rng = as_generator(random_state)
    t = np.arange(duration_samples) / sample_rate

    signal = np.zeros(duration_samples)
    for _ in range(n_voices):
        base = rng.uniform(80.0, 800.0)
        drift = rng.uniform(-20.0, 20.0)
        frequency = base + drift * t
        phase = 2.0 * np.pi * np.cumsum(frequency) / sample_rate
        onset = rng.uniform(0.0, 0.4)
        offset = rng.uniform(0.6, 1.0)
        envelope = ((t >= onset * t[-1]) & (t <= offset * t[-1])).astype(float)
        for harmonic in range(1, 5):
            amp = rng.uniform(0.5, 1.0) * 0.5**harmonic
            signal += amp * envelope * np.sin(harmonic * phase)
    signal += 0.02 * rng.standard_normal(duration_samples)
    return signal


def generate_audio_tensor(
    n_clips: int = 40,
    min_frames: int = 40,
    max_frames: int = 120,
    n_fft: int = 256,
    random_state=None,
) -> IrregularTensor:
    """Irregular tensor of log-power spectrograms (time × frequency).

    ``J = n_fft // 2 + 1`` frequency bins shared by all clips; per-clip
    frame counts are drawn uniformly in ``[min_frames, max_frames]``.
    """
    check_positive_int(n_clips, "n_clips")
    if min_frames < 1 or min_frames > max_frames:
        raise ValueError(
            f"need 1 <= min_frames <= max_frames, got {min_frames}, {max_frames}"
        )
    rng = as_generator(random_state)
    hop = n_fft // 2
    slices = []
    for _ in range(n_clips):
        frames = int(rng.integers(min_frames, max_frames + 1))
        samples = (frames - 1) * hop + n_fft
        clip = synthesize_clip(samples, random_state=rng)
        spec = log_power_spectrogram(clip, n_fft=n_fft, hop=hop)
        slices.append(spec[:frames])
    return IrregularTensor(slices, copy=False)
