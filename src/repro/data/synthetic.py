"""Synthetic workloads for the scalability studies (Fig. 11).

The paper generates regular ``I×J×K`` tensors with Tensor Toolbox's
``tenrand`` and treats them as irregular tensors with equal slice heights
(Section IV-A, "Synthetic Data"); :func:`scalability_tensor` reproduces
that, and :func:`paper_size_grid` enumerates the five sizes of Fig. 11(a)
with an optional uniform scale-down factor so the sweep fits a laptop.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.ops import random_sparse
from repro.tensor.irregular import IrregularTensor
from repro.tensor.random import random_irregular_tensor
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int

#: The five I×J×K grids of Fig. 11(a), in the paper's order.
PAPER_SIZE_GRID = (
    (1000, 1000, 1000),
    (1000, 1000, 2000),
    (2000, 1000, 2000),
    (2000, 2000, 2000),
    (2000, 2000, 4000),
)

#: Shape used for the rank sweep (Fig. 11(b)) and thread sweep (Fig. 11(c)).
PAPER_RANK_SWEEP_SHAPE = (2000, 2000, 4000)


def scalability_tensor(
    n_rows: int,
    n_columns: int,
    n_slices: int,
    random_state=None,
) -> IrregularTensor:
    """``tenrand(I, J, K)`` split into K equal-height frontal slices."""
    check_positive_int(n_rows, "n_rows")
    check_positive_int(n_columns, "n_columns")
    check_positive_int(n_slices, "n_slices")
    return random_irregular_tensor(
        [n_rows] * n_slices, n_columns, random_state=random_state
    )


def paper_size_grid(scale: float = 1.0) -> list[tuple[int, int, int]]:
    """The Fig. 11(a) size grid, uniformly scaled by ``scale`` per dimension.

    ``scale=1.0`` reproduces the paper's sizes (up to 1.6e10 entries —
    needs the paper's 512 GB machine); the harness defaults to a smaller
    scale with the same 16× spread between the first and last grid point.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    grid = []
    for I, J, K in PAPER_SIZE_GRID:
        grid.append(
            (
                max(1, int(round(I * scale))),
                max(1, int(round(J * scale))),
                max(1, int(round(K * scale))),
            )
        )
    return grid


def irregular_scalability_tensor(
    max_rows: int,
    n_columns: int,
    n_slices: int,
    *,
    min_rows: int | None = None,
    random_state=None,
) -> IrregularTensor:
    """Uniform-random tensor with *skewed* slice heights.

    Used by the partitioning ablation: Algorithm 4 only matters when the
    ``Ik`` are unequal, so this draws them log-uniformly between
    ``min_rows`` (default ``max_rows // 20``) and ``max_rows``.
    """
    check_positive_int(max_rows, "max_rows")
    check_positive_int(n_columns, "n_columns")
    check_positive_int(n_slices, "n_slices")
    if min_rows is None:
        min_rows = max(1, max_rows // 20)
    if min_rows < 1 or min_rows > max_rows:
        raise ValueError(
            f"need 1 <= min_rows <= max_rows, got {min_rows}, {max_rows}"
        )
    rng = as_generator(random_state)
    log_lo, log_hi = np.log(min_rows), np.log(max_rows)
    rows = np.exp(rng.uniform(log_lo, log_hi, size=n_slices)).astype(int)
    rows = np.clip(rows, min_rows, max_rows)
    return random_irregular_tensor(rows, n_columns, random_state=rng)


def sparse_irregular_tensor(
    max_rows: int,
    n_columns: int,
    n_slices: int,
    *,
    density: float = 0.02,
    min_rows: int | None = None,
    dtype=np.float64,
    random_state=None,
) -> IrregularTensor:
    """Sparse irregular tensor: CSR slices at roughly ``density`` fill.

    Models the irregular tensors DPar2 targets in the wild — EHR event
    logs, clickstreams, sensor logs — where a slice is 95–99% zeros.  Row
    counts are drawn log-uniformly between ``min_rows`` (default
    ``max_rows // 20``) and ``max_rows`` like
    :func:`irregular_scalability_tensor`; values are standard normal.
    The slices are held as :class:`~repro.sparse.csr.CsrMatrix`, so the
    decomposition takes the sparse stage-1 fast path and the tensor's
    memory footprint is ``O(nnz)``, never ``O(Σ Ik · J)``.
    """
    check_positive_int(max_rows, "max_rows")
    check_positive_int(n_columns, "n_columns")
    check_positive_int(n_slices, "n_slices")
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    if min_rows is None:
        min_rows = max(1, max_rows // 20)
    if min_rows < 1 or min_rows > max_rows:
        raise ValueError(
            f"need 1 <= min_rows <= max_rows, got {min_rows}, {max_rows}"
        )
    rng = as_generator(random_state)
    log_lo, log_hi = np.log(min_rows), np.log(max_rows)
    rows = np.exp(rng.uniform(log_lo, log_hi, size=n_slices)).astype(int)
    rows = np.clip(rows, min_rows, max_rows)
    return IrregularTensor(
        [
            random_sparse((int(ik), n_columns), density, rng, dtype=dtype)
            for ik in rows
        ],
        copy=False,
        dtype=dtype,
        density_threshold=1.0,
    )
