"""Synthetic traffic tensors (Traffic / PEMS-SF analogues).

The paper's Traffic data is (sensor, frequency, time) and PEMS-SF is
(station, timestamp, day) — both *regular* 3-order tensors that are fed to
PARAFAC2 solvers as a collection of equal-height slices.  Real road traffic
is dominated by daily periodic profiles (rush hours) shared across sensors
with per-sensor scaling — strong low-rank structure plus noise.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.irregular import IrregularTensor
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int


def daily_profile(n_timestamps: int, peaks, widths, random_state=None) -> np.ndarray:
    """A daily occupancy curve: mixture of Gaussian bumps over the day.

    ``peaks``/``widths`` are in fraction-of-day units (e.g. 8.5/24 for a
    morning rush around 08:30).
    """
    check_positive_int(n_timestamps, "n_timestamps")
    peaks = np.asarray(peaks, dtype=np.float64)
    widths = np.asarray(widths, dtype=np.float64)
    if peaks.shape != widths.shape:
        raise ValueError("peaks and widths must have equal shapes")
    rng = as_generator(random_state)
    t = np.linspace(0.0, 1.0, n_timestamps, endpoint=False)
    profile = np.zeros(n_timestamps)
    for peak, width in zip(peaks, widths):
        height = rng.uniform(0.6, 1.0)
        profile += height * np.exp(-0.5 * ((t - peak) / width) ** 2)
    return profile


def generate_traffic_tensor(
    n_stations: int = 96,
    n_timestamps: int = 72,
    n_days: int = 40,
    weekend_period: int = 7,
    noise: float = 0.05,
    random_state=None,
) -> IrregularTensor:
    """Regular (station × timestamp × day) occupancy tensor as slices.

    Each day's slice mixes two latent daily profiles (weekday double rush
    hour vs weekend single midday bump) across stations with per-station
    loadings — the PEMS-SF structure.  Returned as an
    :class:`IrregularTensor` with equal slice heights, exactly how the
    paper feeds regular tensors to PARAFAC2 methods.
    """
    check_positive_int(n_stations, "n_stations")
    check_positive_int(n_timestamps, "n_timestamps")
    check_positive_int(n_days, "n_days")
    check_positive_int(weekend_period, "weekend_period")
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    rng = as_generator(random_state)

    weekday = daily_profile(
        n_timestamps, peaks=[8.5 / 24, 17.5 / 24], widths=[1.5 / 24, 2.0 / 24],
        random_state=rng,
    )
    weekend = daily_profile(
        n_timestamps, peaks=[13.0 / 24], widths=[3.0 / 24], random_state=rng
    )
    station_load = rng.uniform(0.3, 1.0, size=(n_stations, 2))

    slices = []
    for day in range(n_days):
        is_weekend = day % weekend_period in (5, 6)
        mix = np.array([0.15, 0.85]) if is_weekend else np.array([0.9, 0.1])
        base = np.outer(
            station_load @ mix, np.ones(n_timestamps)
        ) * (mix[0] * weekday + mix[1] * weekend)[None, :]
        jitter = 1.0 + 0.1 * rng.standard_normal(n_stations)[:, None]
        slice_day = base * jitter
        if noise > 0:
            slice_day = slice_day + noise * rng.standard_normal(slice_day.shape)
        slices.append(np.clip(slice_day, 0.0, None))
    return IrregularTensor(slices, copy=False)
