"""Technical indicators for the stock datasets.

The paper's stock tensors have 88 features per day: 5 basic features (open,
high, low, close, volume) and 83 technical indicators computed from them
(Section IV-A).  This module implements the classic indicator families the
paper names — OBV, ATR, MACD, STOCH (Section IV-E) — plus the standard kit
(SMA/EMA/WMA, RSI, Bollinger, ROC, CCI, Williams %R, momentum, TRIX, …),
parameterized over window lengths to yield exactly 83 derived series.

All functions take 1-D numpy arrays of equal length and return an array of
the same length; leading positions with insufficient history are filled by
propagating the first defined value backwards (so downstream tensors stay
dense, as the paper's datasets are).
"""

from __future__ import annotations

import numpy as np


def _as_series(values, name: str) -> np.ndarray:
    array = np.asarray(values, dtype=np.float64).ravel()
    if array.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(array)):
        raise ValueError(f"{name} contains NaN or Inf")
    return array


def _check_window(window: int, length: int) -> int:
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    return min(int(window), length)


def _backfill(values: np.ndarray, first_valid: int) -> np.ndarray:
    """Fill positions before ``first_valid`` with the first defined value."""
    if first_valid > 0:
        values = values.copy()
        values[:first_valid] = values[first_valid]
    return values


# --------------------------------------------------------------------- #
# moving averages
# --------------------------------------------------------------------- #

def sma(values, window: int) -> np.ndarray:
    """Simple moving average over ``window`` periods."""
    x = _as_series(values, "values")
    w = _check_window(window, x.size)
    csum = np.concatenate([[0.0], np.cumsum(x)])
    out = np.empty_like(x)
    out[w - 1:] = (csum[w:] - csum[:-w]) / w
    # Warm-up: expanding mean over the available prefix.
    for i in range(w - 1):
        out[i] = csum[i + 1] / (i + 1)
    return out


def ema(values, window: int) -> np.ndarray:
    """Exponential moving average with smoothing ``2/(window+1)``."""
    x = _as_series(values, "values")
    w = _check_window(window, x.size)
    alpha = 2.0 / (w + 1.0)
    out = np.empty_like(x)
    out[0] = x[0]
    for i in range(1, x.size):
        out[i] = alpha * x[i] + (1.0 - alpha) * out[i - 1]
    return out


def wma(values, window: int) -> np.ndarray:
    """Linearly weighted moving average (recent periods weigh more)."""
    x = _as_series(values, "values")
    w = _check_window(window, x.size)
    weights = np.arange(1, w + 1, dtype=np.float64)
    weights /= weights.sum()
    full = np.convolve(x, weights[::-1], mode="valid")
    out = np.empty_like(x)
    out[w - 1:] = full
    for i in range(w - 1):
        prefix_w = np.arange(1, i + 2, dtype=np.float64)
        out[i] = float(x[: i + 1] @ prefix_w) / prefix_w.sum()
    return out


# --------------------------------------------------------------------- #
# the four indicators the paper analyzes in Fig. 12
# --------------------------------------------------------------------- #

def obv(close, volume) -> np.ndarray:
    """On-Balance Volume: cumulative volume signed by the close-to-close move."""
    c = _as_series(close, "close")
    v = _as_series(volume, "volume")
    if c.size != v.size:
        raise ValueError(f"close and volume lengths differ: {c.size} vs {v.size}")
    direction = np.zeros_like(c)
    direction[1:] = np.sign(np.diff(c))
    return np.cumsum(direction * v)


def true_range(high, low, close) -> np.ndarray:
    """True range: max of (H−L, |H−prevC|, |L−prevC|)."""
    h = _as_series(high, "high")
    l = _as_series(low, "low")
    c = _as_series(close, "close")
    if not (h.size == l.size == c.size):
        raise ValueError("high, low, close must have equal lengths")
    prev_close = np.concatenate([[c[0]], c[:-1]])
    return np.maximum.reduce(
        [h - l, np.abs(h - prev_close), np.abs(l - prev_close)]
    )


def atr(high, low, close, window: int = 14) -> np.ndarray:
    """Average True Range (Wilder): EMA-smoothed true range — a volatility gauge."""
    tr = true_range(high, low, close)
    w = _check_window(window, tr.size)
    out = np.empty_like(tr)
    out[0] = tr[0]
    alpha = 1.0 / w  # Wilder smoothing
    for i in range(1, tr.size):
        out[i] = alpha * tr[i] + (1.0 - alpha) * out[i - 1]
    return out


def macd(close, fast: int = 12, slow: int = 26) -> np.ndarray:
    """MACD line (Appel): fast EMA minus slow EMA of the close — a trend gauge."""
    if fast >= slow:
        raise ValueError(f"fast window ({fast}) must be below slow ({slow})")
    c = _as_series(close, "close")
    return ema(c, fast) - ema(c, slow)


def macd_signal(close, fast: int = 12, slow: int = 26, signal: int = 9) -> np.ndarray:
    """Signal line: EMA of the MACD line."""
    return ema(macd(close, fast, slow), signal)


def stochastic_oscillator(high, low, close, window: int = 14) -> np.ndarray:
    """Stochastic %K (Lane): close position within the recent high-low range.

    Momentum gauge in [0, 100]; flat windows (high == low) map to 50.
    """
    h = _as_series(high, "high")
    l = _as_series(low, "low")
    c = _as_series(close, "close")
    w = _check_window(window, c.size)
    out = np.empty_like(c)
    for i in range(c.size):
        lo = max(0, i - w + 1)
        window_high = h[lo : i + 1].max()
        window_low = l[lo : i + 1].min()
        span = window_high - window_low
        out[i] = 50.0 if span == 0 else 100.0 * (c[i] - window_low) / span
    return out


# --------------------------------------------------------------------- #
# the broader standard kit
# --------------------------------------------------------------------- #

def rsi(close, window: int = 14) -> np.ndarray:
    """Relative Strength Index in [0, 100] with Wilder smoothing."""
    c = _as_series(close, "close")
    w = _check_window(window, c.size)
    delta = np.diff(c, prepend=c[0])
    gains = np.clip(delta, 0.0, None)
    losses = np.clip(-delta, 0.0, None)
    avg_gain = np.empty_like(c)
    avg_loss = np.empty_like(c)
    avg_gain[0] = gains[0]
    avg_loss[0] = losses[0]
    alpha = 1.0 / w
    for i in range(1, c.size):
        avg_gain[i] = alpha * gains[i] + (1 - alpha) * avg_gain[i - 1]
        avg_loss[i] = alpha * losses[i] + (1 - alpha) * avg_loss[i - 1]
    denom = avg_gain + avg_loss
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(denom > 0, 100.0 * avg_gain / np.where(denom > 0, denom, 1.0), 50.0)
    return out


def momentum(close, window: int = 10) -> np.ndarray:
    """Price change over ``window`` periods."""
    c = _as_series(close, "close")
    w = _check_window(window, c.size)
    out = np.empty_like(c)
    out[w:] = c[w:] - c[:-w]
    out[:w] = c[:w] - c[0]
    return out


def rate_of_change(close, window: int = 10) -> np.ndarray:
    """Percentage price change over ``window`` periods."""
    c = _as_series(close, "close")
    w = _check_window(window, c.size)
    out = np.empty_like(c)
    base = np.where(c[:-w] != 0, c[:-w], 1.0)
    out[w:] = 100.0 * (c[w:] - c[:-w]) / base
    out[:w] = 0.0
    return out


def bollinger_bands(close, window: int = 20, n_std: float = 2.0):
    """Bollinger (middle, upper, lower) bands: SMA ± n_std rolling stdevs."""
    c = _as_series(close, "close")
    w = _check_window(window, c.size)
    middle = sma(c, w)
    std = rolling_std(c, w)
    return middle, middle + n_std * std, middle - n_std * std


def rolling_std(values, window: int) -> np.ndarray:
    """Rolling population standard deviation with expanding warm-up."""
    x = _as_series(values, "values")
    w = _check_window(window, x.size)
    csum = np.concatenate([[0.0], np.cumsum(x)])
    csum_sq = np.concatenate([[0.0], np.cumsum(x * x)])
    out = np.empty_like(x)
    for i in range(x.size):
        lo = max(0, i - w + 1)
        n = i - lo + 1
        mean = (csum[i + 1] - csum[lo]) / n
        mean_sq = (csum_sq[i + 1] - csum_sq[lo]) / n
        out[i] = np.sqrt(max(mean_sq - mean * mean, 0.0))
    return out


def cci(high, low, close, window: int = 20) -> np.ndarray:
    """Commodity Channel Index: typical-price deviation / mean abs deviation."""
    h = _as_series(high, "high")
    l = _as_series(low, "low")
    c = _as_series(close, "close")
    w = _check_window(window, c.size)
    typical = (h + l + c) / 3.0
    out = np.empty_like(c)
    for i in range(c.size):
        lo = max(0, i - w + 1)
        segment = typical[lo : i + 1]
        mean = segment.mean()
        mad = np.abs(segment - mean).mean()
        out[i] = 0.0 if mad == 0 else (typical[i] - mean) / (0.015 * mad)
    return out


def williams_r(high, low, close, window: int = 14) -> np.ndarray:
    """Williams %R in [−100, 0]: inverse of the stochastic oscillator."""
    return stochastic_oscillator(high, low, close, window) - 100.0


def trix(close, window: int = 15) -> np.ndarray:
    """TRIX: 1-period percent ROC of a triple-smoothed EMA."""
    c = _as_series(close, "close")
    triple = ema(ema(ema(c, window), window), window)
    out = np.zeros_like(c)
    base = np.where(triple[:-1] != 0, triple[:-1], 1.0)
    out[1:] = 100.0 * (triple[1:] - triple[:-1]) / base
    return out


def mfi(high, low, close, volume, window: int = 14) -> np.ndarray:
    """Money Flow Index: volume-weighted RSI of the typical price."""
    h = _as_series(high, "high")
    l = _as_series(low, "low")
    c = _as_series(close, "close")
    v = _as_series(volume, "volume")
    w = _check_window(window, c.size)
    typical = (h + l + c) / 3.0
    flow = typical * v
    direction = np.zeros_like(c)
    direction[1:] = np.sign(np.diff(typical))
    pos = np.where(direction > 0, flow, 0.0)
    neg = np.where(direction < 0, flow, 0.0)
    out = np.empty_like(c)
    for i in range(c.size):
        lo = max(0, i - w + 1)
        p = pos[lo : i + 1].sum()
        n = neg[lo : i + 1].sum()
        out[i] = 50.0 if p + n == 0 else 100.0 * p / (p + n)
    return out


def price_volume_trend(close, volume) -> np.ndarray:
    """PVT: cumulative volume scaled by fractional price change."""
    c = _as_series(close, "close")
    v = _as_series(volume, "volume")
    change = np.zeros_like(c)
    base = np.where(c[:-1] != 0, c[:-1], 1.0)
    change[1:] = (c[1:] - c[:-1]) / base
    return np.cumsum(change * v)


# --------------------------------------------------------------------- #
# the 83-indicator feature block
# --------------------------------------------------------------------- #

#: Window grids chosen so the derived feature count is exactly 83, matching
#: the paper's "5 basic features and 83 technical indicators".
_SMA_WINDOWS = (5, 10, 20, 30, 60, 90, 120)
_EMA_WINDOWS = (5, 10, 20, 30, 60, 90, 120)
_WMA_WINDOWS = (5, 10, 20, 30, 60, 90, 120)
_RSI_WINDOWS = (7, 14, 21, 28)
_ATR_WINDOWS = (7, 14, 21, 28)
_STOCH_WINDOWS = (7, 14, 21, 28)
_MOMENTUM_WINDOWS = (5, 10, 20, 30, 60)
_ROC_WINDOWS = (5, 10, 20, 30, 60)
_CCI_WINDOWS = (10, 20, 30, 40)
_WILLIAMS_WINDOWS = (7, 14, 21, 28)
_TRIX_WINDOWS = (9, 15, 21)
_MFI_WINDOWS = (7, 14, 21, 28)
_BOLLINGER_WINDOWS = (10, 20, 30, 40)
_STD_WINDOWS = (10, 20, 30, 40)
_MACD_PARAMS = ((12, 26), (5, 35), (8, 17))
_MACD_SIGNAL_PARAMS = ((12, 26, 9), (5, 35, 5), (8, 17, 9))
_VOLUME_SMA_WINDOWS = (5, 10, 20, 60)


def indicator_names() -> list[str]:
    """The 83 derived feature names, in column order."""
    names: list[str] = []
    names += [f"sma_{w}" for w in _SMA_WINDOWS]
    names += [f"ema_{w}" for w in _EMA_WINDOWS]
    names += [f"wma_{w}" for w in _WMA_WINDOWS]
    names += [f"rsi_{w}" for w in _RSI_WINDOWS]
    names += [f"atr_{w}" for w in _ATR_WINDOWS]
    names += [f"stoch_{w}" for w in _STOCH_WINDOWS]
    names += [f"momentum_{w}" for w in _MOMENTUM_WINDOWS]
    names += [f"roc_{w}" for w in _ROC_WINDOWS]
    names += [f"cci_{w}" for w in _CCI_WINDOWS]
    names += [f"williams_r_{w}" for w in _WILLIAMS_WINDOWS]
    names += [f"trix_{w}" for w in _TRIX_WINDOWS]
    names += [f"mfi_{w}" for w in _MFI_WINDOWS]
    for w in _BOLLINGER_WINDOWS:
        names += [f"boll_upper_{w}", f"boll_lower_{w}"]
    names += [f"std_{w}" for w in _STD_WINDOWS]
    names += [f"macd_{f}_{s}" for f, s in _MACD_PARAMS]
    names += [f"macd_signal_{f}_{s}_{g}" for f, s, g in _MACD_SIGNAL_PARAMS]
    names += [f"volume_sma_{w}" for w in _VOLUME_SMA_WINDOWS]
    names += ["obv", "pvt", "true_range"]
    return names


#: Names of the 5 basic features that precede the indicators.
BASIC_FEATURE_NAMES = ["open", "high", "low", "close", "volume"]


def compute_indicator_matrix(ohlcv: np.ndarray) -> np.ndarray:
    """All 83 indicators for one stock.

    Parameters
    ----------
    ohlcv:
        ``(T, 5)`` array with columns open, high, low, close, volume.

    Returns
    -------
    ``(T, 83)`` array, columns ordered as :func:`indicator_names`.
    """
    data = np.asarray(ohlcv, dtype=np.float64)
    if data.ndim != 2 or data.shape[1] != 5:
        raise ValueError(f"ohlcv must be (T, 5), got {data.shape}")
    o, h, l, c, v = (data[:, i] for i in range(5))

    columns: list[np.ndarray] = []
    columns += [sma(c, w) for w in _SMA_WINDOWS]
    columns += [ema(c, w) for w in _EMA_WINDOWS]
    columns += [wma(c, w) for w in _WMA_WINDOWS]
    columns += [rsi(c, w) for w in _RSI_WINDOWS]
    columns += [atr(h, l, c, w) for w in _ATR_WINDOWS]
    columns += [stochastic_oscillator(h, l, c, w) for w in _STOCH_WINDOWS]
    columns += [momentum(c, w) for w in _MOMENTUM_WINDOWS]
    columns += [rate_of_change(c, w) for w in _ROC_WINDOWS]
    columns += [cci(h, l, c, w) for w in _CCI_WINDOWS]
    columns += [williams_r(h, l, c, w) for w in _WILLIAMS_WINDOWS]
    columns += [trix(c, w) for w in _TRIX_WINDOWS]
    columns += [mfi(h, l, c, v, w) for w in _MFI_WINDOWS]
    for w in _BOLLINGER_WINDOWS:
        _, upper, lower = bollinger_bands(c, w)
        columns += [upper, lower]
    columns += [rolling_std(c, w) for w in _STD_WINDOWS]
    columns += [macd(c, f, s) for f, s in _MACD_PARAMS]
    columns += [macd_signal(c, f, s, g) for f, s, g in _MACD_SIGNAL_PARAMS]
    columns += [sma(v, w) for w in _VOLUME_SMA_WINDOWS]
    columns += [obv(c, v), price_volume_trend(c, v), true_range(h, l, c)]

    matrix = np.column_stack(columns)
    expected = len(indicator_names())
    if matrix.shape[1] != expected:
        raise AssertionError(
            f"indicator count drifted: built {matrix.shape[1]}, expected {expected}"
        )
    return matrix


def compute_feature_matrix(ohlcv: np.ndarray) -> np.ndarray:
    """The full 88-feature stock matrix: 5 basic columns + 83 indicators."""
    data = np.asarray(ohlcv, dtype=np.float64)
    return np.column_stack([data, compute_indicator_matrix(data)])


def feature_names() -> list[str]:
    """All 88 feature names (basic + indicators), in column order."""
    return BASIC_FEATURE_NAMES + indicator_names()
