"""Synthetic equivalents of the paper's eight real-world datasets.

The paper evaluates on FMA, Urban Sound, US/Korea Stock, Activity, Action,
Traffic, and PEMS-SF (Table II).  Those corpora are not redistributable, so
this package generates synthetic datasets with matching *structure* — the
properties the algorithms actually react to: slice shapes, the irregularity
profile (Fig. 8), density, and approximate low-rank spectral decay.

* :mod:`repro.data.indicators` — 83 parameterized technical indicators, the
  feature set of the stock datasets.
* :mod:`repro.data.stock` — OHLCV market simulator with sector factors and
  long-tailed listing periods.
* :mod:`repro.data.audio` — harmonic-tone synthesizer + from-scratch STFT
  producing log-power spectrograms (FMA / Urban analogues).
* :mod:`repro.data.video` — smooth latent-walk feature matrices (Activity /
  Action analogues).
* :mod:`repro.data.traffic` — periodic sensor tensors (Traffic / PEMS-SF).
* :mod:`repro.data.registry` — Table II in code: named dataset constructors
  with paper-shaped (scaled) dimensions.
"""

from repro.data.loaders import (
    load_tensor_csv_dir,
    load_tensor_npz,
    save_tensor_csv_dir,
    save_tensor_npz,
)
from repro.data.registry import DATASETS, DatasetSpec, load_dataset

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "load_tensor_csv_dir",
    "load_tensor_npz",
    "save_tensor_csv_dir",
    "save_tensor_npz",
]
