"""Loading and saving irregular tensors.

Real deployments feed PARAFAC2 from files.  Two formats are supported:

* a single ``.npz`` archive (compact, lossless, the library's native form);
* a directory of per-slice CSV files (interoperable: one file per stock /
  song / video, rows = time, columns = features), with an optional header.
"""

from __future__ import annotations

import os

import numpy as np

from repro.tensor.irregular import IrregularTensor

_FORMAT_VERSION = 1


def save_tensor_npz(path, tensor: IrregularTensor) -> None:
    """Write an irregular tensor as one compressed ``.npz`` archive."""
    arrays = {
        "format_version": np.array(_FORMAT_VERSION),
        "kind": np.array("irregular_tensor"),
        "n_slices": np.array(tensor.n_slices),
    }
    for k, Xk in enumerate(tensor):
        arrays[f"slice_{k}"] = Xk
    np.savez_compressed(path, **arrays)


def load_tensor_npz(path) -> IrregularTensor:
    """Read an archive written by :func:`save_tensor_npz`."""
    with np.load(path, allow_pickle=False) as data:
        if "kind" not in data or str(data["kind"]) != "irregular_tensor":
            raise ValueError(f"{path} is not an irregular-tensor archive")
        n_slices = int(data["n_slices"])
        return IrregularTensor([data[f"slice_{k}"] for k in range(n_slices)])


def save_tensor_csv_dir(
    directory,
    tensor: IrregularTensor,
    *,
    names=None,
    header=None,
    fmt: str = "%.10g",
) -> list[str]:
    """Write each slice as ``<directory>/<name>.csv``.

    Parameters
    ----------
    directory:
        Created if absent.
    names:
        Per-slice file stems (default ``slice_0000`` …); must be unique.
    header:
        Optional list of column names written as the first line.
    fmt:
        numpy ``savetxt`` float format.

    Returns
    -------
    The list of file paths written, in slice order.
    """
    if names is None:
        names = [f"slice_{k:04d}" for k in range(tensor.n_slices)]
    names = [str(n) for n in names]
    if len(names) != tensor.n_slices:
        raise ValueError(
            f"{len(names)} names for {tensor.n_slices} slices"
        )
    if len(set(names)) != len(names):
        raise ValueError("slice names must be unique")
    if header is not None and len(header) != tensor.n_columns:
        raise ValueError(
            f"header has {len(header)} entries for {tensor.n_columns} columns"
        )
    os.makedirs(directory, exist_ok=True)
    header_line = ",".join(header) if header is not None else ""
    paths = []
    for name, Xk in zip(names, tensor):
        path = os.path.join(directory, f"{name}.csv")
        np.savetxt(
            path, Xk, delimiter=",", fmt=fmt,
            header=header_line, comments="",
        )
        paths.append(path)
    return paths


def load_tensor_csv_dir(directory, *, has_header: bool = False) -> tuple[IrregularTensor, list[str]]:
    """Read every ``*.csv`` in a directory as one slice each.

    Files are taken in sorted-name order so the slice order is stable.

    Returns
    -------
    (tensor, names):
        The tensor and the file stems, aligned by position.
    """
    if not os.path.isdir(directory):
        raise FileNotFoundError(f"{directory} is not a directory")
    files = sorted(
        f for f in os.listdir(directory) if f.lower().endswith(".csv")
    )
    if not files:
        raise ValueError(f"no .csv files found in {directory}")
    slices = []
    names = []
    for filename in files:
        path = os.path.join(directory, filename)
        data = np.loadtxt(
            path, delimiter=",", skiprows=1 if has_header else 0, ndmin=2
        )
        slices.append(data)
        names.append(os.path.splitext(filename)[0])
    return IrregularTensor(slices), names
