"""Synthetic video-feature tensors (Activity / Action analogues).

The paper's Activity and Action datasets are per-video (frame, feature)
matrices extracted by an actionlet pipeline (Table II: J = 570 features).
Real motion features evolve smoothly within a video and cluster by action
class; the generator reproduces both properties with a latent smooth walk
through a small number of per-class prototype states.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.irregular import IrregularTensor
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int


def smooth_walk(
    n_frames: int,
    n_latent: int,
    smoothness: float = 0.9,
    random_state=None,
) -> np.ndarray:
    """AR(1) latent trajectory ``z_t = s·z_{t-1} + √(1−s²)·ε_t``.

    Stationary unit-variance walk; higher ``smoothness`` means slower
    feature evolution between frames.
    """
    check_positive_int(n_frames, "n_frames")
    check_positive_int(n_latent, "n_latent")
    if not 0.0 <= smoothness < 1.0:
        raise ValueError(f"smoothness must be in [0, 1), got {smoothness}")
    rng = as_generator(random_state)
    noise_scale = np.sqrt(1.0 - smoothness**2)
    walk = np.empty((n_frames, n_latent))
    walk[0] = rng.standard_normal(n_latent)
    for t in range(1, n_frames):
        walk[t] = smoothness * walk[t - 1] + noise_scale * rng.standard_normal(n_latent)
    return walk


def generate_video_tensor(
    n_videos: int = 50,
    n_features: int = 64,
    min_frames: int = 30,
    max_frames: int = 150,
    n_classes: int = 5,
    n_latent: int = 8,
    noise: float = 0.05,
    random_state=None,
) -> IrregularTensor:
    """Irregular tensor of (frame × feature) matrices for motion videos.

    Each class owns a loading matrix mapping the latent walk to feature
    space plus a class-mean offset; videos draw a class, a duration, and a
    smooth latent trajectory.  The result has block low-rank structure with
    irregular frame counts — the Activity/Action shape from Table II.
    """
    check_positive_int(n_videos, "n_videos")
    check_positive_int(n_features, "n_features")
    check_positive_int(n_classes, "n_classes")
    check_positive_int(n_latent, "n_latent")
    if min_frames < 1 or min_frames > max_frames:
        raise ValueError(
            f"need 1 <= min_frames <= max_frames, got {min_frames}, {max_frames}"
        )
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    rng = as_generator(random_state)

    loadings = rng.standard_normal((n_classes, n_latent, n_features))
    class_means = rng.standard_normal((n_classes, n_features))

    slices = []
    for _ in range(n_videos):
        cls = int(rng.integers(0, n_classes))
        frames = int(rng.integers(min_frames, max_frames + 1))
        walk = smooth_walk(frames, n_latent, random_state=rng)
        features = walk @ loadings[cls] + class_means[cls]
        if noise > 0:
            features = features + noise * rng.standard_normal(features.shape)
        slices.append(features)
    return IrregularTensor(slices, copy=False)
