"""Synthetic stock-market generator (US Stock / Korea Stock analogues).

Each stock is a ``(listing_days, 88)`` matrix — 5 basic OHLCV features and
83 technical indicators (:mod:`repro.data.indicators`) — and the market is
the irregular tensor of those matrices, exactly the shape of the paper's
stock datasets (Table II).

Structure the generator controls, because the algorithms react to it:

* **Irregularity profile**: listing periods follow the long-tailed sorted
  curve of Fig. 8 (many short-listed stocks, few long-listed ones).
* **Cross-stock correlation**: log-returns mix a market factor and one of a
  few *sector* factors with idiosyncratic noise, so slices share latent
  structure (what makes PARAFAC2 meaningful, and what Table III's
  similarity analysis detects).
* **Market personality**: the US-vs-Korea contrast of Fig. 12 is emulated
  by two parameter sets — the "US-like" market couples volume flow with
  price trends (OBV/ATR correlate with prices) while the "KR-like" market
  draws volume independently of returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.indicators import compute_feature_matrix, feature_names
from repro.tensor.irregular import IrregularTensor
from repro.util.rng import as_generator
from repro.util.validation import check_positive_int

#: Sector labels used for the synthetic universe (Table III's column).
SECTORS = (
    "Technology",
    "Financial Services",
    "Consumer Cyclical",
    "Communication Services",
    "Healthcare",
    "Energy",
)


@dataclass
class StockMarket:
    """A generated market: the irregular tensor plus per-stock metadata."""

    tensor: IrregularTensor
    tickers: list[str]
    sectors: list[str]
    listing_lengths: list[int] = field(default_factory=list)

    @property
    def feature_names(self) -> list[str]:
        return feature_names()

    def index_of(self, ticker: str) -> int:
        try:
            return self.tickers.index(ticker)
        except ValueError as exc:
            raise KeyError(f"unknown ticker {ticker!r}") from exc


def listing_length_profile(
    n_stocks: int,
    max_days: int,
    min_days: int,
    random_state=None,
) -> np.ndarray:
    """Long-tailed listing periods mimicking Fig. 8's sorted-length curve.

    Lengths are drawn from a Beta(1, 3) over ``[min_days, max_days]`` — a
    small fraction of stocks listed for (near) the whole window, most far
    shorter — then clipped to the bounds.
    """
    check_positive_int(n_stocks, "n_stocks")
    if min_days < 1 or min_days > max_days:
        raise ValueError(
            f"need 1 <= min_days <= max_days, got {min_days}, {max_days}"
        )
    rng = as_generator(random_state)
    raw = rng.beta(1.0, 3.0, size=n_stocks)
    lengths = min_days + np.round(raw * (max_days - min_days)).astype(int)
    # Ensure at least one stock spans the full window (the "index" members).
    lengths[rng.integers(0, n_stocks)] = max_days
    return np.clip(lengths, min_days, max_days)


def generate_market(
    n_stocks: int = 60,
    max_days: int = 400,
    min_days: int = 120,
    *,
    volume_coupled: bool = True,
    n_market_factors: int = 2,
    sector_ids=None,
    random_state=None,
) -> StockMarket:
    """Generate a synthetic market as an irregular tensor of 88-feature slices.

    Parameters
    ----------
    n_stocks:
        Number of stocks ``K``.
    max_days / min_days:
        Bounds on the listing period (slice row counts ``Ik``).
    volume_coupled:
        True for the "US-like" regime — trading volume responds to price
        moves, so OBV/ATR correlate positively with price features
        (Fig. 12(a)); False for the "KR-like" regime where volume is drawn
        independently (Fig. 12(b)).
    n_market_factors:
        Number of global return factors shared by all stocks.
    sector_ids:
        Optional explicit sector index per stock (into :data:`SECTORS`);
        drawn uniformly at random when omitted.
    random_state:
        Seed or generator.

    Notes
    -----
    All stocks' return series are generated over a common calendar of
    ``max_days`` days and each stock keeps its trailing ``Ik`` days, so
    co-listed stocks share the factor history — the property the Table III
    similarity search relies on.
    """
    check_positive_int(n_stocks, "n_stocks")
    rng = as_generator(random_state)
    lengths = listing_length_profile(n_stocks, max_days, min_days, rng)

    n_sectors = len(SECTORS)
    if sector_ids is not None:
        sector_ids = [int(s) for s in sector_ids]
        if len(sector_ids) != n_stocks:
            raise ValueError(
                f"sector_ids has {len(sector_ids)} entries for {n_stocks} stocks"
            )
        if any(not 0 <= s < n_sectors for s in sector_ids):
            raise ValueError(f"sector ids must be in [0, {n_sectors})")
    market_factors = 0.01 * rng.standard_normal((max_days, n_market_factors))
    sector_factors = 0.012 * rng.standard_normal((max_days, n_sectors))

    slices: list[np.ndarray] = []
    tickers: list[str] = []
    sectors: list[str] = []
    for idx in range(n_stocks):
        if sector_ids is None:
            sector_id = int(rng.integers(0, n_sectors))
        else:
            sector_id = sector_ids[idx]
        beta_market = rng.uniform(0.5, 1.5, size=n_market_factors)
        beta_sector = rng.uniform(0.6, 1.4)
        idio = 0.01 * rng.standard_normal(max_days)
        drift = rng.uniform(-2e-4, 6e-4)
        returns = (
            market_factors @ beta_market
            + beta_sector * sector_factors[:, sector_id]
            + idio
            + drift
        )

        T = int(lengths[idx])
        window = returns[max_days - T :]
        close = float(rng.uniform(20.0, 300.0)) * np.exp(np.cumsum(window))

        base_volume = float(rng.uniform(1e5, 5e6))
        if volume_coupled:
            # US-like regime (Fig. 12(a)): both the intraday range (→ ATR)
            # and the trading volume (→ OBV) surge with price moves, tying
            # the two indicators to the price features.
            intraday = 0.004 + 0.8 * np.abs(window) + 0.5 * np.clip(window, 0, None)
            surge = 1.0 + 8.0 * np.abs(window) + 4.0 * np.clip(window, 0, None)
            volume = base_volume * surge * rng.lognormal(0.0, 0.15, T)
        else:
            # KR-like regime (Fig. 12(b)): the intraday range follows an
            # independent mean-reverting volatility process and volume is
            # drawn i.i.d. — ATR and OBV decouple from the price features.
            log_vol = np.empty(T)
            log_vol[0] = rng.standard_normal()
            for t in range(1, T):
                log_vol[t] = 0.95 * log_vol[t - 1] + 0.3 * rng.standard_normal()
            intraday = 0.01 * np.exp(0.8 * log_vol)
            # Heavy-tailed i.i.d. volume: OBV becomes dominated by a few
            # huge random days and decouples from the price trend.
            volume = base_volume * rng.lognormal(0.0, 2.0, T)
        high = close * (1.0 + intraday * rng.uniform(0.5, 1.0, T))
        low = close * (1.0 - intraday * rng.uniform(0.5, 1.0, T))
        open_ = low + (high - low) * rng.random(T)

        ohlcv = np.column_stack([open_, high, low, close, volume])
        slices.append(compute_feature_matrix(ohlcv))
        tickers.append(f"STK{idx:04d}")
        sectors.append(SECTORS[sector_id])

    return StockMarket(
        tensor=IrregularTensor(slices, copy=False),
        tickers=tickers,
        sectors=sectors,
        listing_lengths=[int(t) for t in lengths],
    )


def standardize_features(
    tensor: IrregularTensor, *, per_slice: bool = True
) -> IrregularTensor:
    """Z-score every feature column, per slice by default.

    Raw stock features mix scales (prices ~1e2, volumes ~1e6, oscillators
    ~1e1); decompositions of the raw tensor would only model volume.
    Per-slice standardization additionally removes per-stock price levels so
    the latent factors capture temporal *patterns* — required for the
    Fig. 12 feature-correlation analysis to be about co-movement rather
    than scale.  Set ``per_slice=False`` for a single global z-score.
    """
    if per_slice:
        normalized = []
        for Xk in tensor.slices:
            mean = Xk.mean(axis=0)
            std = Xk.std(axis=0)
            std = np.where(std > 0, std, 1.0)
            normalized.append((Xk - mean) / std)
        return IrregularTensor(normalized, copy=False)
    stacked = np.concatenate(list(tensor.slices), axis=0)
    mean = stacked.mean(axis=0)
    std = stacked.std(axis=0)
    std = np.where(std > 0, std, 1.0)
    return IrregularTensor(
        [(Xk - mean) / std for Xk in tensor.slices], copy=False
    )


def named_universe(
    tickers_with_sectors: dict[str, str],
    max_days: int = 320,
    *,
    random_state=None,
) -> StockMarket:
    """A market whose stocks carry caller-chosen names and sectors.

    Used by the Table III experiment to build a recognizable universe (a
    "Microsoft"-like target among technology peers).  All stocks span the
    full window so pairwise ``Uk`` distances are defined for every pair,
    mirroring the paper's same-range restriction.
    """
    if not tickers_with_sectors:
        raise ValueError("need at least one ticker")
    rng = as_generator(random_state)
    sector_lookup = {name: idx for idx, name in enumerate(SECTORS)}
    try:
        sector_ids = [sector_lookup[s] for s in tickers_with_sectors.values()]
    except KeyError as exc:
        raise ValueError(
            f"unknown sector {exc.args[0]!r}; choose from {SECTORS}"
        ) from exc
    market = generate_market(
        n_stocks=len(tickers_with_sectors),
        max_days=max_days,
        min_days=max_days,
        volume_coupled=True,
        sector_ids=sector_ids,
        random_state=rng,
    )
    market.tickers = list(tickers_with_sectors.keys())
    market.sectors = list(tickers_with_sectors.values())
    return market
