"""Pluggable execution backends: serial, thread, and process workers.

Every slice-parallel stage in the library dispatches through an
:class:`ExecutionBackend`, selected by name (``DecompositionConfig.backend``
or the CLI's ``--backend`` flag):

``serial``
    A plain loop — the baseline every equivalence test compares against,
    and the fastest choice for small problems.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  numpy's BLAS/LAPACK
    kernels release the GIL, so threads speed up the SVD-heavy stages while
    sharing slice memory for free.  This is the paper's own model (6-thread
    OpenMP-style slice parallelism) and the default.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor` fed through
    ``multiprocessing.shared_memory``: slice data is parked in named
    segments (or referenced in place when it is already memory-mapped) and
    workers operate on zero-copy views — no pickling of the bulk data.
    Escapes the GIL entirely, for the Python-bound portions of the
    pipeline, at the cost of worker startup and result transfer.

All backends preserve input order, run the work single-shot when it cannot
benefit from workers, and honour Algorithm 4's greedy partitioning through
:meth:`ExecutionBackend.map_partitioned` — so results are identical (to the
bit, given per-item RNGs) no matter the backend or worker count.

Work submitted to the process backend must be *picklable*: module-level
functions or :func:`functools.partial` of them, not closures.
"""

from __future__ import annotations

import abc
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import resource_tracker
from typing import Callable, ClassVar, Sequence

from repro.parallel.partition import greedy_partition
from repro.parallel.shm import ArrayShipment, AttachedArrays
from repro.util.validation import check_positive_int

#: Registry names, in the order they should be offered to users.
BACKEND_NAMES = ("serial", "thread", "process")


def _contiguous_chunks(n_items: int, n_parts: int) -> list[list[int]]:
    """Split ``range(n_items)`` into at most ``n_parts`` contiguous runs."""
    n_parts = min(n_parts, n_items)
    bounds = [round(part * n_items / n_parts) for part in range(n_parts + 1)]
    return [list(range(lo, hi)) for lo, hi in zip(bounds[:-1], bounds[1:])]


class ExecutionBackend(abc.ABC):
    """Order-preserving map over work items, with pluggable workers.

    Parameters
    ----------
    n_workers:
        Worker count ``T``.  Every backend degenerates to an inline loop
        when ``n_workers == 1`` or there is at most one item, so the
        single-worker timings carry no dispatch overhead (important for the
        Fig. 11(c) baselines).
    """

    name: ClassVar[str]
    #: True when work runs in the calling process (serial/thread) — such
    #: backends can hand whole stages to batched in-process kernels (e.g.
    #: stacked stage-1 randomized SVDs) without shipping data anywhere.
    #: Process-style backends keep the per-item path so slices can travel
    #: through shared memory / file descriptors instead of being stacked in
    #: the parent.
    in_process: ClassVar[bool] = True

    def __init__(self, n_workers: int = 1) -> None:
        self.n_workers = check_positive_int(n_workers, "n_workers")

    # ------------------------------------------------------------------ #
    # public mapping API
    # ------------------------------------------------------------------ #

    def map(self, func: Callable, items: Sequence) -> list:
        """Apply ``func`` to every item, preserving order.

        Items are dealt to workers in contiguous chunks (the "uniform
        allocation" of Section III-F — right when per-item cost is even).
        """
        items = list(items)
        if self._inline(len(items)):
            return [func(item) for item in items]
        return self._run_groups(func, items, _contiguous_chunks(len(items), self.n_workers))

    def map_partitioned(self, func: Callable, items: Sequence, weights: Sequence[float]) -> list:
        """Apply ``func`` with Algorithm-4 load balancing over ``weights``.

        Items are grouped by :func:`greedy_partition`; each worker processes
        its whole group sequentially (the paper's per-thread slice sets
        ``Ti``).  Results come back in input order.
        """
        items = list(items)
        if len(items) != len(weights):
            raise ValueError(
                f"items and weights must align: {len(items)} vs {len(weights)}"
            )
        if self._inline(len(items)):
            return [func(item) for item in items]
        groups = [g for g in greedy_partition(weights, self.n_workers) if g]
        return self._run_groups(func, items, groups)

    def _inline(self, n_items: int) -> bool:
        return self.n_workers == 1 or n_items <= 1

    @abc.abstractmethod
    def _run_groups(self, func: Callable, items: list, groups: list[list[int]]) -> list:
        """Run ``func`` over pre-grouped item indices; return in item order."""

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release worker resources (idempotent; no-op for pool-free backends)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_workers={self.n_workers})"


class SerialBackend(ExecutionBackend):
    """Everything on the calling thread, whatever ``n_workers`` says."""

    name = "serial"

    def _inline(self, n_items: int) -> bool:
        return True

    def _run_groups(self, func, items, groups):  # pragma: no cover - _inline
        return [func(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """GIL-sharing worker threads; zero-copy by construction."""

    name = "thread"

    def map(self, func, items):
        items = list(items)
        if self._inline(len(items)):
            return [func(item) for item in items]
        # Per-item scheduling: lets the pool balance uneven items even
        # without cost estimates (chunking would pin them to one thread).
        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            return list(pool.map(func, items))

    def _run_groups(self, func, items, groups):
        results: list = [None] * len(items)

        def run_group(indices: list[int]) -> None:
            for index in indices:
                results[index] = func(items[index])

        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            for future in [pool.submit(run_group, group) for group in groups]:
                future.result()
        return results


def _process_group_worker(func: Callable, payload: list) -> list:
    """Worker-side kernel: resolve shipped arrays, apply ``func`` per item.

    ``payload`` is ``[(index, packed_item), ...]``; the return value carries
    the indices back so the parent can restore input order regardless of
    completion order.
    """
    holder = AttachedArrays()
    try:
        out = []
        item = None
        for index, packed in payload:
            item = holder.resolve(packed)
            out.append((index, func(item)))
        # Results are pickled after this function returns — make sure none
        # of them still view a segment we are about to unmap.
        out = holder.copy_if_shared(out)
        del item
    finally:
        holder.release()
    return out


class ProcessBackend(ExecutionBackend):
    """Worker processes with shared-memory slice transfer.

    The pool is created lazily on first use and reused across calls (DPar2
    runs one ``map`` per compression plus one per ALS sweep), so the fork
    cost is paid once per backend instance.  Call :meth:`close` — or use the
    backend as a context manager — to reap the workers.
    """

    name = "process"
    in_process = False

    def __init__(self, n_workers: int = 1) -> None:
        super().__init__(n_workers)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Start the shared-memory resource tracker *before* forking the
            # workers.  Workers forked earlier would lazily spawn private
            # trackers on their first attach, and those would try to clean
            # up (and warn about) segments the parent already unlinked.
            try:
                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - platform without tracker
                pass
            self._pool = ProcessPoolExecutor(max_workers=self.n_workers)
        return self._pool

    def _run_groups(self, func, items, groups):
        pool = self._ensure_pool()
        results: list = [None] * len(items)
        with ArrayShipment() as shipment:
            futures = [
                pool.submit(
                    _process_group_worker,
                    func,
                    [(index, shipment.pack(items[index])) for index in group],
                )
                for group in groups
            ]
            # The shipment's segments must stay linked until every worker
            # has read them, hence collection inside the ``with`` block.
            for future in futures:
                for index, value in future.result():
                    results[index] = value
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass


def in_process_backend(engine: ExecutionBackend) -> ExecutionBackend:
    """Coerce ``engine`` to one that runs in the calling process.

    Device compute backends (torch/CuPy) must keep their arrays in the
    process that owns the device context — shipping them through worker
    processes is meaningless, exactly like memory-mapped slices must not
    be stacked in the parent.  ``DecompositionConfig`` already rejects the
    ``process`` + device combination at construction; this helper guards
    the direct-call surface (``compress_tensor(..., backend="process",
    compute_backend="torch")``), downgrading to a serial engine with a
    warning instead of failing deep inside a kernel.
    """
    if engine.in_process:
        return engine
    import warnings

    warnings.warn(
        f"execution backend {engine.name!r} cannot drive a device compute "
        "backend; falling back to in-process (serial) execution for the "
        "device-compute stages",
        RuntimeWarning,
        stacklevel=2,
    )
    return SerialBackend(engine.n_workers)


#: Name → backend class.  Extend by appending here (e.g. a future
#: distributed backend) — ``DecompositionConfig`` validates against it.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def get_backend(backend: "str | ExecutionBackend", n_workers: int = 1) -> ExecutionBackend:
    """Resolve a backend spec into a live :class:`ExecutionBackend`.

    Parameters
    ----------
    backend:
        A registry name (case-insensitive) or an existing instance, which
        is returned unchanged — its own ``n_workers`` wins, and the caller
        who constructed it stays responsible for closing it.
    n_workers:
        Worker count for a newly constructed backend.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if not isinstance(backend, str):
        raise TypeError(
            f"backend must be a name or ExecutionBackend, got {type(backend).__name__}"
        )
    key = backend.strip().lower()
    if key not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; available: {', '.join(BACKEND_NAMES)}"
        )
    return BACKENDS[key](n_workers)
