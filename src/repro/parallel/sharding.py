"""Shard-coordinator transport: planning, worker runners, byte accounting.

The sharded DPar2 solver (:mod:`repro.decomposition.sharded`) splits the K
slices of an irregular tensor across N workers and exchanges only small
Gram statistics each sweep.  This module owns the *mechanics* of that —
deliberately free of any decomposition math, so the same machinery can
carry other shardable solvers later:

* :func:`plan_shards` — two-level Algorithm-4 balancing.  Slices are first
  grouped into a fixed set of reduction *cells* by
  :func:`~repro.parallel.partition.greedy_partition` over row counts, then
  whole cells are balanced across shards the same way.  Cells are the unit
  of floating-point accumulation downstream, and their membership depends
  only on the weights and the cell count — never on the shard count —
  which is what makes sharded results shard-count-invariant.
* :class:`SerialShardRunner` / :class:`ThreadShardRunner` /
  :class:`ProcessShardRunner` — the three transports, one per
  ``shard_backend`` name.  All expose the same ``start`` / ``call`` /
  ``close`` surface and produce byte-identical results; the process runner
  ships its init payload through the shared-memory / memmap / CSR
  machinery of :mod:`repro.parallel.shm` so bulk slice data never transits
  pickle.
* byte accounting — every runner counts the ndarray bytes broadcast to
  and returned from shards (:func:`payload_nbytes`), so the coordinator
  can report the measured allreduce payload per sweep.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from multiprocessing import Pipe, Process, connection, resource_tracker
from typing import Callable, Sequence

import numpy as np

from repro.parallel.partition import greedy_partition, partition_imbalance
from repro.parallel.shm import ArrayShipment, AttachedArrays

__all__ = [
    "ProcessShardRunner",
    "SerialShardRunner",
    "ShardPlan",
    "ThreadShardRunner",
    "get_shard_runner",
    "payload_nbytes",
    "plan_shards",
]


# --------------------------------------------------------------------- #
# planning
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShardPlan:
    """A fixed cell layout and its assignment to shards.

    ``cells[c]`` holds the slice indices of cell ``c`` (sorted ascending);
    ``shard_cells[s]`` the cell ids owned by shard ``s`` (sorted
    ascending).  Cell membership is a function of the weights and the cell
    count only; re-planning the same weights onto a different shard count
    reassigns whole cells but never splits or reorders them.
    """

    cells: tuple[tuple[int, ...], ...]
    shard_cells: tuple[tuple[int, ...], ...]
    imbalance: float
    cell_imbalance: float

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def n_shards(self) -> int:
        return len(self.shard_cells)

    def shard_slices(self, shard: int) -> list[int]:
        """All slice indices owned by ``shard`` (cell order, then index)."""
        return [k for cell in self.shard_cells[shard] for k in self.cells[cell]]

    def describe(self) -> dict:
        """Diagnostics for :class:`~repro.decomposition.result.Parafac2Result` stats."""
        return {
            "shards": self.n_shards,
            "cells": self.n_cells,
            "cell_sizes": [len(cell) for cell in self.cells],
            "shard_cells": [list(cells) for cells in self.shard_cells],
            "imbalance": self.imbalance,
            "cell_imbalance": self.cell_imbalance,
        }


def plan_shards(
    weights: Sequence[float], n_shards: int, n_cells: int | None = None
) -> ShardPlan:
    """Two-level greedy balancing: slices → cells, cells → shards.

    ``n_cells`` defaults to ``n_shards`` and is clamped to the item count;
    empty cells (possible when ``n_cells`` exceeds the number of nonzero
    groups) are dropped, and ``n_shards`` is clamped to the resulting cell
    count — a shard with no cells would only idle.  The reported
    ``imbalance`` is the slice-weight imbalance of the final shard
    assignment (what actually bounds the parallel sweep time);
    ``cell_imbalance`` measures how evenly the cells themselves came out,
    i.e. how much granularity the second level had to work with.
    """
    weights = [float(w) for w in weights]
    if not weights:
        raise ValueError("cannot plan shards over zero slices")
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if n_cells is None:
        n_cells = n_shards
    if n_cells <= 0:
        raise ValueError(f"n_cells must be positive, got {n_cells}")
    n_cells = min(n_cells, len(weights))

    cells = [
        tuple(sorted(group))
        for group in greedy_partition(weights, n_cells)
        if group
    ]
    cell_weights = [sum(weights[k] for k in cell) for cell in cells]
    n_shards = min(n_shards, len(cells))
    shard_cells = [
        tuple(sorted(group))
        for group in greedy_partition(cell_weights, n_shards)
    ]

    slice_groups = [
        [k for cell in cells_of_shard for k in cells[cell]]
        for cells_of_shard in shard_cells
    ]
    return ShardPlan(
        cells=tuple(cells),
        shard_cells=tuple(shard_cells),
        imbalance=partition_imbalance(weights, slice_groups),
        cell_imbalance=partition_imbalance(
            cell_weights, [[c] for c in range(len(cells))]
        ),
    )


# --------------------------------------------------------------------- #
# byte accounting
# --------------------------------------------------------------------- #


def payload_nbytes(obj) -> int:
    """Total ndarray bytes reachable in a message payload.

    Counts only bulk array data — the pickle framing of tuples/dicts and
    scalars is noise next to it, and the point of the measurement is to
    show the per-sweep exchange stays O(R²) per shard regardless of K.
    """
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(value) for value in obj)
    if isinstance(obj, dict):
        return sum(payload_nbytes(value) for value in obj.values())
    return 0


# --------------------------------------------------------------------- #
# runners
# --------------------------------------------------------------------- #


class ShardRunner:
    """Common surface of the three shard transports.

    ``factory`` is a picklable module-level callable mapping one init
    payload to a live shard-state object; ``payloads`` holds one payload
    per shard.  :meth:`start` builds every state and returns the per-shard
    results of its ``startup()`` method (shard order); :meth:`call`
    broadcasts one method invocation to every shard and returns the
    results in shard order.  ``bytes_sent`` / ``bytes_received``
    accumulate the ndarray payload of every ``call`` (startup and
    shutdown excluded — they are one-time data shipment, not the per-sweep
    allreduce being measured).
    """

    def __init__(self, factory: Callable, payloads: Sequence) -> None:
        if not payloads:
            raise ValueError("at least one shard payload is required")
        self._factory = factory
        self._payloads = list(payloads)
        self.n_shards = len(self._payloads)
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def bytes_transferred(self) -> int:
        """Sent + received call bytes, for per-sweep deltas."""
        return self.bytes_sent + self.bytes_received

    def start(self) -> list:
        raise NotImplementedError

    def call(self, method: str, *args) -> list:
        """Broadcast ``method(*args)`` to every shard; results in order."""
        return self.call_each(method, [args] * self.n_shards)

    def call_each(self, method: str, args_per_shard: Sequence[tuple]) -> list:
        """Invoke ``method`` with per-shard arguments; results in order."""
        if len(args_per_shard) != self.n_shards:
            raise ValueError(
                f"need {self.n_shards} argument tuples, got {len(args_per_shard)}"
            )
        self.bytes_sent += sum(payload_nbytes(args) for args in args_per_shard)
        results = self._dispatch(method, list(args_per_shard))
        self.bytes_received += payload_nbytes(results)
        return results

    def _dispatch(self, method: str, args_per_shard: list) -> list:
        raise NotImplementedError

    def close(self) -> None:
        """Release shard resources (idempotent)."""

    def __enter__(self) -> "ShardRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialShardRunner(ShardRunner):
    """All shards in the calling thread — debugging and overhead baseline."""

    name = "serial"

    def __init__(self, factory: Callable, payloads: Sequence) -> None:
        super().__init__(factory, payloads)
        self._states: list | None = None

    def start(self) -> list:
        self._states = [self._factory(payload) for payload in self._payloads]
        self._payloads = [None] * self.n_shards  # raw data now shard-owned
        return [state.startup() for state in self._states]

    def _dispatch(self, method, args_per_shard):
        return [
            getattr(state, method)(*args)
            for state, args in zip(self._states, args_per_shard)
        ]

    def close(self) -> None:
        self._states = None


class ThreadShardRunner(ShardRunner):
    """One worker thread per shard; BLAS/LAPACK release the GIL."""

    name = "thread"

    def __init__(self, factory: Callable, payloads: Sequence) -> None:
        super().__init__(factory, payloads)
        self._states: list | None = None
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(max_workers=self.n_shards)
        return self._pool

    def start(self) -> list:
        pool = self._ensure_pool()
        self._states = list(pool.map(self._factory, self._payloads))
        self._payloads = [None] * self.n_shards
        return list(pool.map(lambda state: state.startup(), self._states))

    def _dispatch(self, method, args_per_shard):
        pool = self._ensure_pool()
        return list(
            pool.map(
                lambda pair: getattr(pair[0], method)(*pair[1]),
                zip(self._states, args_per_shard),
            )
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._states = None


def _shard_worker_main(conn: connection.Connection, factory: Callable, packed) -> None:
    """Worker process loop: resolve shipped arrays, answer method calls.

    The init payload's bulk arrays arrive as shm/memmap/CSR refs and are
    resolved into zero-copy views held for the worker's lifetime (the
    parent may unlink the segments once startup is acknowledged — the
    mapping keeps them alive here).  Results travel back by pickle, copied
    out of any shared segment first.
    """
    holder = AttachedArrays()
    state = None
    try:
        try:
            state = factory(holder.resolve(packed))
            conn.send(("ok", holder.copy_if_shared(state.startup())))
        except BaseException:
            conn.send(("err", traceback.format_exc()))
            return
        while True:
            message = conn.recv()
            if message is None:
                return
            method, args = message
            try:
                result = getattr(state, method)(*args)
            except BaseException:
                conn.send(("err", traceback.format_exc()))
            else:
                conn.send(("ok", holder.copy_if_shared(result)))
    except EOFError:  # parent went away; nothing left to answer
        pass
    finally:
        holder.release()
        conn.close()


class ProcessShardRunner(ShardRunner):
    """One worker process per shard, fed through shared-memory shipment.

    Bulk init data (slices or precomputed factors) moves through
    :class:`~repro.parallel.shm.ArrayShipment`: in-RAM arrays are parked
    in named segments, memmap-backed arrays travel as path descriptors,
    CSR slices as their three component buffers.  Per-call messages are
    small (O(R²) Grams) and go over a duplex pipe via pickle.
    """

    name = "process"

    def __init__(self, factory: Callable, payloads: Sequence) -> None:
        super().__init__(factory, payloads)
        self._processes: list[Process] = []
        self._conns: list[connection.Connection] = []

    def start(self) -> list:
        # The tracker must exist before forking, for the same reason as
        # ProcessBackend: workers forked earlier would spawn private
        # trackers that fight the parent over segment cleanup.
        try:
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - platform without tracker
            pass
        with ArrayShipment() as shipment:
            for payload in self._payloads:
                parent_conn, child_conn = Pipe(duplex=True)
                process = Process(
                    target=_shard_worker_main,
                    args=(child_conn, self._factory, shipment.pack(payload)),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._processes.append(process)
                self._conns.append(parent_conn)
            self._payloads = [None] * self.n_shards
            # Collect startup acks while the segments are still linked —
            # a worker maps them during resolve, so after its ack the
            # parent copy can go (the mapping keeps the memory alive).
            return [self._recv(conn) for conn in self._conns]

    def _recv(self, conn: connection.Connection):
        try:
            status, value = conn.recv()
        except EOFError:
            raise RuntimeError(
                "shard worker died before answering; see its stderr"
            ) from None
        if status == "err":
            raise RuntimeError(f"shard worker failed:\n{value}")
        return value

    def _dispatch(self, method, args_per_shard):
        for conn, args in zip(self._conns, args_per_shard):
            conn.send((method, tuple(args)))
        return [self._recv(conn) for conn in self._conns]

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._conns.clear()
        self._processes.clear()

    def __del__(self) -> None:  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:
            pass


#: Name → runner class, mirroring ``repro.parallel.backends.BACKENDS``.
SHARD_RUNNERS: dict[str, type[ShardRunner]] = {
    SerialShardRunner.name: SerialShardRunner,
    ThreadShardRunner.name: ThreadShardRunner,
    ProcessShardRunner.name: ProcessShardRunner,
}


def get_shard_runner(
    backend: str, factory: Callable, payloads: Sequence
) -> ShardRunner:
    """Construct the named shard transport over one payload per shard."""
    key = backend.strip().lower()
    if key not in SHARD_RUNNERS:
        raise ValueError(
            f"unknown shard backend {backend!r}; "
            f"available: {', '.join(SHARD_RUNNERS)}"
        )
    return SHARD_RUNNERS[key](factory, payloads)
